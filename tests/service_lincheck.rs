//! Lincheck conformance for the service frontend: every per-client result
//! returned by `psnap-serve` must correspond to a legal linearizable
//! operation on the backing object — in particular, a **coalesced** scan
//! (one backing scan fanned out to several requesters) must still be a legal
//! partial scan for every requester, and a coalesced (last-write-wins)
//! ingestion chunk must still explain every submitted update.
//!
//! Small adversarial scenarios go through the exhaustive WGL checker; stress
//! scenarios through the scalable monotone checks — the same discipline the
//! in-process runners use, now applied to client-observed histories.

use std::sync::Arc;
use std::time::Duration;

use partial_snapshot::lincheck::{check_history, check_monotone_history};
use partial_snapshot::serve::Coalescing;
use partial_snapshot::shard::{ShardConfig, ShardedSnapshot};
use partial_snapshot::sim::{run_scenario_via_service, Scenario, ServiceDriverConfig};
use partial_snapshot::snapshot::CasPartialSnapshot;

fn driver(coalescing: Coalescing) -> ServiceDriverConfig {
    ServiceDriverConfig {
        coalescing,
        ..ServiceDriverConfig::default()
    }
}

#[test]
fn coalesced_small_histories_are_linearizable_over_cas() {
    // Drain-everything coalescing (window 0): requests pending while a
    // backing scan runs are merged into the next union scan.
    for seed in 0..25 {
        let scenario = Scenario::random_small(seed);
        let snapshot = Arc::new(CasPartialSnapshot::new(scenario.components, 2, 0u64));
        let history = run_scenario_via_service(
            snapshot,
            &scenario,
            &driver(Coalescing::Window(Duration::ZERO)),
        );
        assert_eq!(history.len(), scenario.total_ops());
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: coalesced service history not linearizable"
        );
    }
}

#[test]
fn windowed_coalescing_histories_are_linearizable() {
    // A real accumulation window maximizes merging: many clients' scans
    // share one backing scan, the strongest version of the conformance
    // claim.
    for seed in 0..10 {
        let scenario = Scenario::random_small(seed ^ 0xA11CE);
        let snapshot = Arc::new(CasPartialSnapshot::new(scenario.components, 2, 0u64));
        let history = run_scenario_via_service(
            snapshot,
            &scenario,
            &driver(Coalescing::Window(Duration::from_micros(300))),
        );
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: windowed service history not linearizable"
        );
    }
}

#[test]
fn uncoalesced_baseline_histories_are_linearizable() {
    for seed in 0..10 {
        let scenario = Scenario::random_small(seed ^ 0xBA5E);
        let snapshot = Arc::new(CasPartialSnapshot::new(scenario.components, 2, 0u64));
        let history = run_scenario_via_service(snapshot, &scenario, &driver(Coalescing::Disabled));
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: baseline service history not linearizable"
        );
    }
}

#[test]
fn coalesced_histories_over_the_sharded_store_are_linearizable() {
    // The service's union scan exercises the sharded store's cross-shard
    // machinery (the scenarios' scans deliberately span shards), while the
    // drainer's chunks exercise its two-phase cross-shard batch path.
    for seed in 0..12 {
        let scenario = Scenario::random_cross_shard(seed, 2);
        let snapshot = Arc::new(ShardedSnapshot::with_factory(
            scenario.components,
            2,
            0u64,
            ShardConfig::contiguous(2),
            |_, m, n, init| CasPartialSnapshot::new(m, n, init),
        ));
        let history = run_scenario_via_service(
            snapshot,
            &scenario,
            &driver(Coalescing::Window(Duration::ZERO)),
        );
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: sharded service history not linearizable"
        );
    }
}

#[test]
fn service_stress_histories_pass_monotone_checks() {
    // Larger mixed workloads (plain and batched updaters) through the
    // service, checked with the scalable necessary conditions.
    let plain = Scenario::stress(16, 4, 3, 80, 50, 5, 0x5E7);
    let snapshot = Arc::new(CasPartialSnapshot::new(16, 2, 0u64));
    let history = run_scenario_via_service(
        snapshot,
        &plain,
        &driver(Coalescing::Window(Duration::ZERO)),
    );
    assert_eq!(history.len(), plain.total_ops());
    history.validate_well_formed().unwrap();
    assert_eq!(check_monotone_history(&history), Ok(()));

    let batched = Scenario::stress_batched(16, 4, 2, 60, 40, 5, 3, 0xBA7);
    let snapshot = Arc::new(CasPartialSnapshot::new(16, 2, 0u64));
    let history = run_scenario_via_service(
        snapshot,
        &batched,
        &driver(Coalescing::Window(Duration::from_micros(100))),
    );
    assert_eq!(history.len(), batched.total_ops());
    history.validate_well_formed().unwrap();
    assert_eq!(check_monotone_history(&history), Ok(()));
}
