//! Lincheck conformance for the service frontend: every per-client result
//! returned by `psnap-serve` must correspond to a legal linearizable
//! operation on the backing object — in particular, a **coalesced** scan
//! (one backing scan fanned out to several requesters) must still be a legal
//! partial scan for every requester, and a coalesced (last-write-wins)
//! ingestion chunk must still explain every submitted update.
//!
//! Small adversarial scenarios go through the exhaustive WGL checker; stress
//! scenarios through the scalable monotone checks — the same discipline the
//! in-process runners use, now applied to client-observed histories.

use std::sync::Arc;
use std::time::Duration;

use partial_snapshot::lincheck::{check_history, check_monotone_history};
use partial_snapshot::serve::{Coalescing, Freshness};
use partial_snapshot::shard::{MvShardedSnapshot, ShardConfig, ShardedSnapshot};
use partial_snapshot::sim::{run_scenario_via_service, Scenario, ServiceDriverConfig};
use partial_snapshot::snapshot::{CasPartialSnapshot, MvSnapshot};

fn driver(coalescing: Coalescing) -> ServiceDriverConfig {
    ServiceDriverConfig {
        coalescing,
        ..ServiceDriverConfig::default()
    }
}

#[test]
fn coalesced_small_histories_are_linearizable_over_cas() {
    // Drain-everything coalescing (window 0): requests pending while a
    // backing scan runs are merged into the next union scan.
    for seed in 0..25 {
        let scenario = Scenario::random_small(seed);
        let snapshot = Arc::new(CasPartialSnapshot::new(scenario.components, 2, 0u64));
        let history = run_scenario_via_service(
            snapshot,
            &scenario,
            &driver(Coalescing::Window(Duration::ZERO)),
        );
        assert_eq!(history.len(), scenario.total_ops());
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: coalesced service history not linearizable"
        );
    }
}

#[test]
fn windowed_coalescing_histories_are_linearizable() {
    // A real accumulation window maximizes merging: many clients' scans
    // share one backing scan, the strongest version of the conformance
    // claim.
    for seed in 0..10 {
        let scenario = Scenario::random_small(seed ^ 0xA11CE);
        let snapshot = Arc::new(CasPartialSnapshot::new(scenario.components, 2, 0u64));
        let history = run_scenario_via_service(
            snapshot,
            &scenario,
            &driver(Coalescing::Window(Duration::from_micros(300))),
        );
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: windowed service history not linearizable"
        );
    }
}

#[test]
fn uncoalesced_baseline_histories_are_linearizable() {
    for seed in 0..10 {
        let scenario = Scenario::random_small(seed ^ 0xBA5E);
        let snapshot = Arc::new(CasPartialSnapshot::new(scenario.components, 2, 0u64));
        let history = run_scenario_via_service(snapshot, &scenario, &driver(Coalescing::Disabled));
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: baseline service history not linearizable"
        );
    }
}

#[test]
fn coalesced_histories_over_the_sharded_store_are_linearizable() {
    // The service's union scan exercises the sharded store's cross-shard
    // machinery (the scenarios' scans deliberately span shards), while the
    // drainer's chunks exercise its two-phase cross-shard batch path.
    for seed in 0..12 {
        let scenario = Scenario::random_cross_shard(seed, 2);
        let snapshot = Arc::new(ShardedSnapshot::with_factory(
            scenario.components,
            2,
            0u64,
            ShardConfig::contiguous(2),
            |_, m, n, init| CasPartialSnapshot::new(m, n, init),
        ));
        let history = run_scenario_via_service(
            snapshot,
            &scenario,
            &driver(Coalescing::Window(Duration::ZERO)),
        );
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: sharded service history not linearizable"
        );
    }
}

#[test]
fn mv_backed_stale_histories_are_linearizable() {
    // Scanners request `AtMostStale(0)`: the zero bound makes the cache tier
    // unusable (any cached cut is strictly older than the bound), so on a
    // multiversioned backend every one of these scans is answered by the mv
    // fast path — `scan_stale`'s announce→tick→read_at cut at its announced
    // timestamp — with **no** backing union scans. That cut linearizes
    // inside the request's service time, so the exhaustive WGL checker
    // applies to the client-observed history unchanged: this is the
    // conformance proof that coalesced `AtMostStale` answers are legal
    // snapshots at their announced timestamps.
    for seed in 0..12 {
        let scenario = Scenario::random_small(seed ^ 0x57A1E);
        let snapshot = Arc::new(MvSnapshot::new(scenario.components, 2, 0u64));
        let history = run_scenario_via_service(
            Arc::clone(&snapshot),
            &scenario,
            &ServiceDriverConfig {
                coalescing: Coalescing::Window(Duration::from_micros(100)),
                scanner_freshness: Freshness::AtMostStale(Duration::ZERO),
                ..ServiceDriverConfig::default()
            },
        );
        assert_eq!(history.len(), scenario.total_ops());
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: mv-backed stale service history not linearizable"
        );
    }
}

#[test]
fn mv_sharded_stale_histories_are_linearizable_with_parallel_unions() {
    // Cross-shard scenarios over the multiversioned sharded store with a
    // two-pid scan-server pool: stale requests ride the sharded
    // `scan_stale` (announce every involved shard, one shared-camera tick),
    // and the Fresh updater-driven unions that remain run as parallel
    // shard-disjoint jobs. Both paths must yield linearizable
    // client-observed histories.
    for seed in 0..10 {
        let scenario = Scenario::random_cross_shard(seed ^ 0x3A12D, 2);
        let snapshot = Arc::new(MvShardedSnapshot::new(
            scenario.components,
            3, // drainer + two scan-server pids
            0u64,
            ShardConfig::multiversioned(2),
        ));
        let history = run_scenario_via_service(
            Arc::clone(&snapshot),
            &scenario,
            &ServiceDriverConfig {
                coalescing: Coalescing::Window(Duration::from_micros(100)),
                scanner_freshness: Freshness::AtMostStale(Duration::ZERO),
                scan_pids: 2,
                ..ServiceDriverConfig::default()
            },
        );
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: mv-sharded stale service history not linearizable"
        );
    }
}

#[test]
fn parallel_union_histories_are_linearizable_over_sharded_cas() {
    // Fresh scans only, two scan-server pids over the epoch-validated
    // sharded store: shard-disjoint unions run concurrently on distinct
    // pids and must still linearize against the coalesced write stream.
    for seed in 0..10 {
        let scenario = Scenario::random_cross_shard(seed ^ 0x9A8, 2);
        let snapshot = Arc::new(ShardedSnapshot::with_factory(
            scenario.components,
            3,
            0u64,
            ShardConfig::contiguous(2),
            |_, m, n, init| CasPartialSnapshot::new(m, n, init),
        ));
        let history = run_scenario_via_service(
            snapshot,
            &scenario,
            &ServiceDriverConfig {
                coalescing: Coalescing::Window(Duration::ZERO),
                scan_pids: 2,
                ..ServiceDriverConfig::default()
            },
        );
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: parallel-union service history not linearizable"
        );
    }
}

#[test]
fn adaptive_coalescing_histories_are_linearizable() {
    // The adaptive controller only changes *when* the union scan runs,
    // never what it reads — histories under it must check out exactly like
    // the fixed-window ones.
    for seed in 0..10 {
        let scenario = Scenario::random_small(seed ^ 0xADA);
        let snapshot = Arc::new(CasPartialSnapshot::new(scenario.components, 2, 0u64));
        let history =
            run_scenario_via_service(snapshot, &scenario, &driver(Coalescing::adaptive()));
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: adaptive service history not linearizable"
        );
    }
}

#[test]
fn service_stress_histories_pass_monotone_checks() {
    // Larger mixed workloads (plain and batched updaters) through the
    // service, checked with the scalable necessary conditions.
    let plain = Scenario::stress(16, 4, 3, 80, 50, 5, 0x5E7);
    let snapshot = Arc::new(CasPartialSnapshot::new(16, 2, 0u64));
    let history = run_scenario_via_service(
        snapshot,
        &plain,
        &driver(Coalescing::Window(Duration::ZERO)),
    );
    assert_eq!(history.len(), plain.total_ops());
    history.validate_well_formed().unwrap();
    assert_eq!(check_monotone_history(&history), Ok(()));

    let batched = Scenario::stress_batched(16, 4, 2, 60, 40, 5, 3, 0xBA7);
    let snapshot = Arc::new(CasPartialSnapshot::new(16, 2, 0u64));
    let history = run_scenario_via_service(
        snapshot,
        &batched,
        &driver(Coalescing::Window(Duration::from_micros(100))),
    );
    assert_eq!(history.len(), batched.total_ops());
    history.validate_well_formed().unwrap();
    assert_eq!(check_monotone_history(&history), Ok(()));
}
