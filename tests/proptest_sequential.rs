//! Property-based conformance tests: arbitrary sequential operation sequences
//! applied to every implementation must reproduce the sequential
//! specification exactly, and arbitrary *per-process* programs executed
//! concurrently must produce linearizable histories.

use std::sync::Arc;

use partial_snapshot::lincheck::{check_history, OpResult, Operation, SnapshotSpec};
use partial_snapshot::shmem::ProcessId;
use partial_snapshot::sim::{run_scenario, Role, Scenario};
use partial_snapshot::snapshot::{
    AfekFullSnapshot, CasPartialSnapshot, PartialSnapshot, RegisterPartialSnapshot,
};
use proptest::prelude::*;

const M: usize = 6;

#[derive(Clone, Debug)]
enum SeqOp {
    Update { component: usize, value: u64 },
    Scan { components: Vec<usize> },
}

fn op_strategy() -> impl Strategy<Value = SeqOp> {
    prop_oneof![
        ((0..M), (1u64..1_000_000))
            .prop_map(|(component, value)| SeqOp::Update { component, value }),
        proptest::collection::vec(0..M, 1..=M).prop_map(|components| SeqOp::Scan { components }),
    ]
}

fn check_sequential<S: PartialSnapshot<u64>>(snapshot: &S, ops: &[SeqOp]) {
    let spec = SnapshotSpec::new(M, 0);
    let mut model = spec.initial_state();
    for op in ops {
        match op {
            SeqOp::Update { component, value } => {
                snapshot.update(ProcessId(0), *component, *value);
                spec.apply(
                    &mut model,
                    &Operation::Update {
                        component: *component,
                        value: *value,
                    },
                );
            }
            SeqOp::Scan { components } => {
                let got = snapshot.scan(ProcessId(1), components);
                let expected = spec.apply(
                    &mut model,
                    &Operation::Scan {
                        components: components.clone(),
                    },
                );
                assert_eq!(OpResult::Values(got), expected);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cas_snapshot_conforms_to_spec(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let snapshot = CasPartialSnapshot::new(M, 2, 0u64);
        check_sequential(&snapshot, &ops);
    }

    #[test]
    fn register_snapshot_conforms_to_spec(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let snapshot = RegisterPartialSnapshot::new(M, 2, 0u64);
        check_sequential(&snapshot, &ops);
    }

    #[test]
    fn afek_snapshot_conforms_to_spec(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let snapshot = AfekFullSnapshot::new(M, 2, 0u64);
        check_sequential(&snapshot, &ops);
    }
}

/// Strategy for a small concurrent scenario: 1–2 updaters with disjoint
/// components and 1–2 scanners with explicit scan lists.
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let scan_list = proptest::collection::vec(
        proptest::collection::btree_set(0..4usize, 1..=3)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
        1..=3,
    );
    (
        1..=2usize,
        1..=2usize,
        proptest::collection::vec(scan_list, 2),
        1..=3usize,
    )
        .prop_map(|(updaters, scanners, scan_lists, updates)| {
            let mut roles = Vec::new();
            for u in 0..updaters {
                roles.push(Role::Updater {
                    components: (0..4).filter(|c| c % updaters == u).collect(),
                    ops: updates,
                });
            }
            for s in 0..scanners {
                roles.push(Role::Scanner {
                    scans: scan_lists[s % scan_lists.len()].clone(),
                });
            }
            Scenario {
                components: 4,
                initial: 0,
                roles,
                chaos: None,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every concurrent execution of an arbitrary small program against the
    /// paper's main algorithm is linearizable (verified exhaustively).
    #[test]
    fn cas_snapshot_concurrent_programs_linearize(scenario in scenario_strategy()) {
        prop_assume!(scenario.total_ops() <= 14);
        let snapshot = Arc::new(CasPartialSnapshot::new(
            scenario.components,
            scenario.processes(),
            0u64,
        ));
        let history = run_scenario(&snapshot, &scenario);
        prop_assert!(check_history(&history).is_linearizable());
    }

    /// Same property for the register-only algorithm of Figure 1.
    #[test]
    fn register_snapshot_concurrent_programs_linearize(scenario in scenario_strategy()) {
        prop_assume!(scenario.total_ops() <= 14);
        let snapshot = Arc::new(RegisterPartialSnapshot::new(
            scenario.components,
            scenario.processes(),
            0u64,
        ));
        let history = run_scenario(&snapshot, &scenario);
        prop_assert!(check_history(&history).is_linearizable());
    }
}
