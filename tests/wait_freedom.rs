//! Wait-freedom as a measurable property: the paper's theorems bound the
//! number of base-object steps of each operation, so the tests drive the
//! algorithms under sustained contention and schedule perturbation and assert
//! the step bounds directly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use partial_snapshot::activeset::{ActiveSet, CasActiveSet};
use partial_snapshot::shmem::{chaos, ProcessId, StepScope};
use partial_snapshot::snapshot::{CasPartialSnapshot, PartialSnapshot, RegisterPartialSnapshot};

/// Theorem 3: a partial scan of `r` components finishes in `O(r²)` steps
/// no matter what concurrent updates do. The concrete budget for this
/// implementation is `(2r + 3)·r` reads plus a constant for announcement and
/// join/leave.
#[test]
fn figure3_scan_step_bound_holds_under_adversarial_updates() {
    let m = 32usize;
    let r = 8usize;
    let snapshot = Arc::new(CasPartialSnapshot::new(m, 8, 0u64));
    let stop = Arc::new(AtomicBool::new(false));
    // Six updaters hammer exactly the components being scanned, with chaos
    // enabled so their writes land at awkward moments.
    let updaters: Vec<_> = (0..6usize)
        .map(|t| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _chaos = chaos::enable(t as u64, chaos::ChaosConfig::light());
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    snapshot.update(ProcessId(t), (i % 8) as usize, i + 1);
                    i += 1;
                }
            })
        })
        .collect();

    let comps: Vec<usize> = (0..r).collect();
    let budget = ((2 * r + 3) * r + 16) as u64;
    let mut worst = 0u64;
    for _ in 0..3000 {
        let scope = StepScope::start();
        let values = snapshot.scan(ProcessId(7), &comps);
        let steps = scope.finish().total();
        assert_eq!(values.len(), r);
        worst = worst.max(steps);
        assert!(
            steps <= budget,
            "scan took {steps} steps, exceeding the Theorem 3 budget of {budget}"
        );
    }
    stop.store(true, Ordering::Relaxed);
    for u in updaters {
        u.join().unwrap();
    }
    assert!(worst > 0);
}

/// Theorem 1 (with the collect active set): a Figure 1 scan finishes within
/// `2n + 4` collects regardless of update behaviour, i.e. within
/// `(2n + 5)·r + O(1)` steps.
#[test]
fn figure1_scan_step_bound_holds_under_adversarial_updates() {
    let m = 16usize;
    let r = 4usize;
    let n = 8usize;
    let snapshot = Arc::new(RegisterPartialSnapshot::new(m, n, 0u64));
    let stop = Arc::new(AtomicBool::new(false));
    let updaters: Vec<_> = (0..4usize)
        .map(|t| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    snapshot.update(ProcessId(t), (i % 4) as usize, i + 1);
                    i += 1;
                }
            })
        })
        .collect();

    let comps: Vec<usize> = (0..r).collect();
    let budget = ((2 * n + 5) * r + n + 16) as u64;
    for _ in 0..3000 {
        let scope = StepScope::start();
        let values = snapshot.scan(ProcessId(7), &comps);
        let steps = scope.finish().total();
        assert_eq!(values.len(), r);
        assert!(
            steps <= budget,
            "scan took {steps} steps, exceeding the Theorem 1 budget of {budget}"
        );
    }
    stop.store(true, Ordering::Relaxed);
    for u in updaters {
        u.join().unwrap();
    }
}

/// Theorem 2: `join` and `leave` of the Figure 2 active set are O(1) — in this
/// implementation exactly 2 and 1 base-object steps — no matter how much
/// concurrent churn there is.
#[test]
fn figure2_join_and_leave_are_constant_time_under_churn() {
    let set = Arc::new(CasActiveSet::new());
    let stop = Arc::new(AtomicBool::new(false));
    let churners: Vec<_> = (1..=6usize)
        .map(|pid| {
            let set = Arc::clone(&set);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let t = set.join(ProcessId(pid));
                    let _ = set.get_set();
                    set.leave(ProcessId(pid), t);
                }
            })
        })
        .collect();

    for _ in 0..5000 {
        let scope = StepScope::start();
        let ticket = set.join(ProcessId(0));
        assert_eq!(scope.finish().total(), 2, "join is one fetch&increment plus one write");
        let scope = StepScope::start();
        set.leave(ProcessId(0), ticket);
        assert_eq!(scope.finish().total(), 1, "leave is one write");
    }
    stop.store(true, Ordering::Relaxed);
    for c in churners {
        c.join().unwrap();
    }
}

/// Update operations of Figure 3 are bounded by the announced work of the
/// scanners that are active while they run: with scanners of width r, an
/// update never exceeds the O(Cs²·rmax²) envelope (checked here with a very
/// generous constant), and with no scanners it is constant.
#[test]
fn figure3_update_cost_tracks_active_scanners() {
    let m = 64usize;
    let snapshot = Arc::new(CasPartialSnapshot::new(m, 8, 0u64));

    // Quiescent: no scanners announced, update cost is a small constant.
    let scope = StepScope::start();
    snapshot.update(ProcessId(0), 10, 1);
    assert!(scope.finish().total() <= 8);

    // Four scanners continuously scanning 4 components each.
    let stop = Arc::new(AtomicBool::new(false));
    let r = 4usize;
    let scanners: Vec<_> = (1..=4usize)
        .map(|pid| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let comps: Vec<usize> = (pid * 4..pid * 4 + 4).collect();
                while !stop.load(Ordering::Relaxed) {
                    let _ = snapshot.scan(ProcessId(pid), &comps);
                }
            })
        })
        .collect();

    // Cs = 4 scanners, rmax = 4: the embedded scan reads at most Cs·rmax = 16
    // announced components, for at most 2·16+2 collects, plus the getSet and
    // announcement reads. The getSet itself is only *amortized* bounded
    // (Theorem 2), so the envelope is checked on the mean over many updates,
    // with a generous hard ceiling per operation to catch runaway loops.
    let cs_rmax = (4 * r) as u64;
    let amortized_budget = (2 * cs_rmax + 3) * cs_rmax + 64;
    let hard_ceiling = amortized_budget * 50;
    let mut total_steps = 0u64;
    const UPDATES: u64 = 2000;
    for i in 0..UPDATES {
        let scope = StepScope::start();
        snapshot.update(ProcessId(0), (i % 8) as usize, i + 2);
        let steps = scope.finish().total();
        total_steps += steps;
        assert!(
            steps <= hard_ceiling,
            "update took {steps} steps, exceeding the hard ceiling {hard_ceiling}"
        );
    }
    let mean = total_steps / UPDATES;
    assert!(
        mean <= amortized_budget,
        "mean update cost {mean} exceeds the amortized Cs²·rmax² envelope {amortized_budget}"
    );
    stop.store(true, Ordering::Relaxed);
    for s in scanners {
        s.join().unwrap();
    }
}

/// Chaos-heavy smoke test: with aggressive perturbation on every thread, all
/// operations still terminate and return plausible values (no deadlock, no
/// livelock, no panic).
#[test]
fn everything_terminates_under_aggressive_chaos() {
    let snapshot = Arc::new(CasPartialSnapshot::new(16, 6, 0u64));
    let handles: Vec<_> = (0..6usize)
        .map(|pid| {
            let snapshot = Arc::clone(&snapshot);
            std::thread::spawn(move || {
                let _chaos = chaos::enable(pid as u64 * 31, chaos::ChaosConfig::aggressive());
                if pid < 3 {
                    for i in 0..300u64 {
                        snapshot.update(ProcessId(pid), (i % 16) as usize, i * 6 + pid as u64 + 1);
                    }
                } else {
                    for i in 0..300usize {
                        let comps = [i % 16, (i * 5) % 16, (i * 11) % 16];
                        let values = snapshot.scan(ProcessId(pid), &comps);
                        assert_eq!(values.len(), 3);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
