//! Wait-freedom as a measurable property: the paper's theorems bound the
//! number of base-object steps of each operation, so the tests drive the
//! algorithms under sustained contention and schedule perturbation and assert
//! the step bounds directly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use partial_snapshot::activeset::{ActiveSet, CasActiveSet};
use partial_snapshot::bench::ImplKind;
use partial_snapshot::shard::{MvShardedSnapshot, ShardConfig, ShardedSnapshot};
use partial_snapshot::shmem::{chaos, ProcessId, StepScope};
use partial_snapshot::snapshot::{
    CasPartialSnapshot, MvSnapshot, PartialSnapshot, RegisterPartialSnapshot,
};

/// Theorem 3: a partial scan of `r` components finishes in `O(r²)` steps
/// no matter what concurrent updates do. The concrete budget for this
/// implementation is `(2r + 3)·r` reads plus a constant for announcement and
/// join/leave.
#[test]
fn figure3_scan_step_bound_holds_under_adversarial_updates() {
    let m = 32usize;
    let r = 8usize;
    let snapshot = Arc::new(CasPartialSnapshot::new(m, 8, 0u64));
    let stop = Arc::new(AtomicBool::new(false));
    // Six updaters hammer exactly the components being scanned, with chaos
    // enabled so their writes land at awkward moments.
    let updaters: Vec<_> = (0..6usize)
        .map(|t| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _chaos = chaos::enable(t as u64, chaos::ChaosConfig::light());
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    snapshot.update(ProcessId(t), (i % 8) as usize, i + 1);
                    i += 1;
                }
            })
        })
        .collect();

    let comps: Vec<usize> = (0..r).collect();
    let budget = ((2 * r + 3) * r + 16) as u64;
    let mut worst = 0u64;
    for _ in 0..3000 {
        let scope = StepScope::start();
        let values = snapshot.scan(ProcessId(7), &comps);
        let steps = scope.finish().total();
        assert_eq!(values.len(), r);
        worst = worst.max(steps);
        assert!(
            steps <= budget,
            "scan took {steps} steps, exceeding the Theorem 3 budget of {budget}"
        );
    }
    stop.store(true, Ordering::Relaxed);
    for u in updaters {
        u.join().unwrap();
    }
    assert!(worst > 0);
}

/// Theorem 1 (with the collect active set): a Figure 1 scan finishes within
/// `2n + 4` collects regardless of update behaviour, i.e. within
/// `(2n + 5)·r + O(1)` steps.
#[test]
fn figure1_scan_step_bound_holds_under_adversarial_updates() {
    let m = 16usize;
    let r = 4usize;
    let n = 8usize;
    let snapshot = Arc::new(RegisterPartialSnapshot::new(m, n, 0u64));
    let stop = Arc::new(AtomicBool::new(false));
    let updaters: Vec<_> = (0..4usize)
        .map(|t| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    snapshot.update(ProcessId(t), (i % 4) as usize, i + 1);
                    i += 1;
                }
            })
        })
        .collect();

    let comps: Vec<usize> = (0..r).collect();
    let budget = ((2 * n + 5) * r + n + 16) as u64;
    for _ in 0..3000 {
        let scope = StepScope::start();
        let values = snapshot.scan(ProcessId(7), &comps);
        let steps = scope.finish().total();
        assert_eq!(values.len(), r);
        assert!(
            steps <= budget,
            "scan took {steps} steps, exceeding the Theorem 1 budget of {budget}"
        );
    }
    stop.store(true, Ordering::Relaxed);
    for u in updaters {
        u.join().unwrap();
    }
}

/// Theorem 2: `join` and `leave` of the Figure 2 active set are O(1) — in this
/// implementation exactly 2 and 1 base-object steps — no matter how much
/// concurrent churn there is.
#[test]
fn figure2_join_and_leave_are_constant_time_under_churn() {
    let set = Arc::new(CasActiveSet::new());
    let stop = Arc::new(AtomicBool::new(false));
    let churners: Vec<_> = (1..=6usize)
        .map(|pid| {
            let set = Arc::clone(&set);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let t = set.join(ProcessId(pid));
                    let _ = set.get_set();
                    set.leave(ProcessId(pid), t);
                }
            })
        })
        .collect();

    for _ in 0..5000 {
        let scope = StepScope::start();
        let ticket = set.join(ProcessId(0));
        assert_eq!(
            scope.finish().total(),
            2,
            "join is one fetch&increment plus one write"
        );
        let scope = StepScope::start();
        set.leave(ProcessId(0), ticket);
        assert_eq!(scope.finish().total(), 1, "leave is one write");
    }
    stop.store(true, Ordering::Relaxed);
    for c in churners {
        c.join().unwrap();
    }
}

/// Update operations of Figure 3 are bounded by the announced work of the
/// scanners that are active while they run: with scanners of width r, an
/// update never exceeds the O(Cs²·rmax²) envelope (checked here with a very
/// generous constant), and with no scanners it is constant.
#[test]
fn figure3_update_cost_tracks_active_scanners() {
    let m = 64usize;
    let snapshot = Arc::new(CasPartialSnapshot::new(m, 8, 0u64));

    // Quiescent: no scanners announced, update cost is a small constant.
    let scope = StepScope::start();
    snapshot.update(ProcessId(0), 10, 1);
    assert!(scope.finish().total() <= 8);

    // Four scanners continuously scanning 4 components each.
    let stop = Arc::new(AtomicBool::new(false));
    let r = 4usize;
    let scanners: Vec<_> = (1..=4usize)
        .map(|pid| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let comps: Vec<usize> = (pid * 4..pid * 4 + 4).collect();
                while !stop.load(Ordering::Relaxed) {
                    let _ = snapshot.scan(ProcessId(pid), &comps);
                }
            })
        })
        .collect();

    // Cs = 4 scanners, rmax = 4: the embedded scan reads at most Cs·rmax = 16
    // announced components, for at most 2·16+2 collects, plus the getSet and
    // announcement reads. The getSet itself is only *amortized* bounded
    // (Theorem 2), so the envelope is checked on the mean over many updates,
    // with a generous hard ceiling per operation to catch runaway loops.
    let cs_rmax = (4 * r) as u64;
    let amortized_budget = (2 * cs_rmax + 3) * cs_rmax + 64;
    let hard_ceiling = amortized_budget * 50;
    let mut total_steps = 0u64;
    const UPDATES: u64 = 2000;
    for i in 0..UPDATES {
        let scope = StepScope::start();
        snapshot.update(ProcessId(0), (i % 8) as usize, i + 2);
        let steps = scope.finish().total();
        total_steps += steps;
        assert!(
            steps <= hard_ceiling,
            "update took {steps} steps, exceeding the hard ceiling {hard_ceiling}"
        );
    }
    let mean = total_steps / UPDATES;
    assert!(
        mean <= amortized_budget,
        "mean update cost {mean} exceeds the amortized Cs²·rmax² envelope {amortized_budget}"
    );
    stop.store(true, Ordering::Relaxed);
    for s in scanners {
        s.join().unwrap();
    }
}

/// The sharded store's deterministic step bounds. The *optimistic* machinery
/// is step-bounded per round, so bounds that do not depend on how the host
/// schedules threads are: (a) quiescent cross-shard scans finish in one
/// validated round; (b) single-shard scans cost an inner scan and nothing
/// more; (c) updates cost the inner update plus four constant coordination
/// ops. The coordinated fallback's drain *waits on straggler updates* — a
/// scheduling-dependent quantity the object honestly reports by returning
/// `is_wait_free() == false` for multi-shard placements — so under live
/// contention the test asserts termination and result shape, not a step
/// number (a step budget there would measure the scheduler, not the
/// algorithm).
#[test]
fn sharded_step_bounds_hold_where_they_are_deterministic() {
    let m = 32usize;
    let shards = 4usize;
    let snapshot = Arc::new(ShardedSnapshot::with_factory(
        m,
        8,
        0u64,
        ShardConfig::contiguous(shards).with_retries(3),
        |_, sm, sn, init| CasPartialSnapshot::new(sm, sn, init),
    ));

    // (a) Quiescent cross-shard scan: one reshard-flag read at attempt
    // entry, then one optimistic round = per involved shard, 4 epoch reads
    // plus a quiescent inner sub-scan of r' = 1 (announce + join/leave +
    // two 1-read collects ≈ 8 steps).
    let comps: Vec<usize> = (0..shards).map(|s| s * (m / shards)).collect();
    let r = comps.len() as u64;
    let quiescent_budget = 1 + r * (4 + 8) + 8;
    for _ in 0..200 {
        let scope = StepScope::start();
        let values = snapshot.scan(ProcessId(7), &comps);
        let steps = scope.finish().total();
        assert_eq!(values.len(), comps.len());
        assert!(
            steps <= quiescent_budget,
            "quiescent cross-shard scan took {steps} steps, budget {quiescent_budget}"
        );
    }

    // (b) Single-shard scan: the reshard-flag entry read, the inner scan,
    // and four batch-window validation reads (update epochs are never read
    // — plain update churn cannot make a single-shard scan retry).
    let local: Vec<usize> = (0..4).collect(); // all on shard 0
    let scope = StepScope::start();
    let _ = snapshot.scan(ProcessId(7), &local);
    let steps = scope.finish().total();
    assert!(
        steps <= 1 + 4 + 2 * 4 + 4 + 4,
        "single-shard scan of 4 components took {steps} steps"
    );

    // (c) Update: inner update + 2 flag reads (latch entry, plus the
    // raise-then-recheck against a draining resharder) + 3 counter RMWs.
    // The first update after the scans above pays their amortized
    // active-set cost once (its getSet walks the scans' vacated slots and
    // installs the skip interval — Theorem 2's accounting); warm up with
    // one update so the measured one shows the steady-state constant.
    snapshot.update(ProcessId(6), 17, 1);
    let scope = StepScope::start();
    snapshot.update(ProcessId(6), 17, 2);
    let steps = scope.finish().total();
    assert!(
        steps <= 8 + 5,
        "quiescent sharded update took {steps} steps"
    );
}

/// Under adversarial updates hammering exactly the scanned components, every
/// cross-shard scan still terminates with a right-sized, consistent answer
/// and the retry/fallback machinery actually engages. (No step assertion
/// here — the coordinated drain waits on updater progress, which is the
/// scheduler's to decide; see `sharded_step_bounds_hold_where_they_are_deterministic`.)
#[test]
fn sharded_scans_terminate_under_adversarial_updates() {
    let m = 32usize;
    let shards = 4usize;
    let snapshot = Arc::new(ShardedSnapshot::with_factory(
        m,
        8,
        0u64,
        ShardConfig::contiguous(shards).with_retries(1),
        |_, sm, sn, init| CasPartialSnapshot::new(sm, sn, init),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    // Updater `t` exclusively owns component `t * 8` — exactly the component
    // the scanner reads on shard `t` — and writes strictly increasing values
    // (single-writer monotone discipline, so scans must never go backwards).
    let updaters: Vec<_> = (0..4usize)
        .map(|t| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _chaos = chaos::enable(t as u64, chaos::ChaosConfig::light());
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    snapshot.update(ProcessId(t), t * 8, i + 1);
                    i += 1;
                }
            })
        })
        .collect();
    let comps: Vec<usize> = (0..shards).map(|s| s * (m / shards)).collect();
    let mut last = vec![0u64; comps.len()];
    for _ in 0..2000 {
        let values = snapshot.scan(ProcessId(7), &comps);
        assert_eq!(values.len(), comps.len());
        // Single-writer monotone discipline per component: values never go
        // backwards across scans.
        for (v, l) in values.iter().zip(last.iter_mut()) {
            assert!(*v >= *l, "component value went backwards: {v} < {l}");
            *l = *v;
        }
    }
    stop.store(true, Ordering::Relaxed);
    for u in updaters {
        u.join().unwrap();
    }
    let stats = snapshot.coordination_stats();
    assert!(stats.cross_shard_scans() > 0, "{stats:?}");
    assert_eq!(
        stats.cross_shard_scans(),
        2000,
        "the three scan counters partition the scans"
    );
}

/// Batched updates and the scan validation they impose: scans racing a live
/// stream of `update_many` batches keep terminating with consistent answers,
/// and once the stream ends a scan's step count returns to the single-update
/// budget plus the four gate-validation reads (the gate adds a constant, not
/// a new asymptotic term). Wait-freedom proper is a property of the
/// single-update interface — batches buy atomicity by blocking scans for the
/// duration of each write phase, the same trade the sharded store's
/// coordinated path makes.
#[test]
fn scans_terminate_and_stay_bounded_around_batched_updates() {
    let m = 16usize;
    let r = 4usize;
    let snapshot = Arc::new(CasPartialSnapshot::new(m, 4, 0u64));
    let stop = Arc::new(AtomicBool::new(false));
    let batcher = {
        let snapshot = Arc::clone(&snapshot);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let _chaos = chaos::enable(3, chaos::ChaosConfig::light());
            let mut v = 1u64;
            while !stop.load(Ordering::Relaxed) {
                let writes: Vec<(usize, u64)> = (0..4).map(|i| (i * 4, v)).collect();
                snapshot.update_many(ProcessId(0), &writes);
                v += 1;
            }
        })
    };
    let comps: Vec<usize> = (0..r).map(|i| i * 4).collect();
    for _ in 0..2000 {
        let values = snapshot.scan(ProcessId(1), &comps);
        assert_eq!(values.len(), r);
        // The batch writes one value everywhere: equality is the atomicity
        // invariant.
        assert!(
            values.windows(2).all(|w| w[0] == w[1]),
            "torn batch observed: {values:?}"
        );
    }
    stop.store(true, Ordering::Relaxed);
    batcher.join().unwrap();
    // Quiescent again: the scan budget is the classic cost plus 4 gate reads.
    let scope = StepScope::start();
    let _ = snapshot.scan(ProcessId(1), &comps);
    let steps = scope.finish().total();
    assert!(
        steps <= (4 + 2 * r as u64 + 4) + 4,
        "post-batch quiescent scan took {steps} steps"
    );
}

// ---------------------------------------------------------------------------
// The wait-freedom proof harness: parked writers at every seam.
//
// A wait-free scan must finish in a bounded number of *its own* steps no
// matter what other processes do — including doing nothing at all from the
// worst possible instant. The harness below attacks every seam a writer can
// stall in:
//
//   * **mid-version-install / mid-batch, forever**: the deterministic seam.
//     `begin_parked_update_many` installs a batch's versions on every
//     involved register/shard and then simply never publishes the commit
//     timestamp, which is indistinguishable from a writer crashed between
//     its last install and its finalize. The multiversioned scans must
//     complete within their *declared* step budget
//     (`MvSnapshot::scan_step_budget`) and return the pre-batch cut. The
//     coordinated sharded store provably fails this scenario: its fallback
//     drain loops until the straggler's `writers` mark drops, so a
//     forever-parked updater holds every cross-shard scan forever (the
//     reason multi-shard `ShardedSnapshot` reports `is_wait_free() ==
//     false` — asserted below rather than demonstrated, since the
//     demonstration would hang the test).
//   * **mid-write under chaos, on every `ImplKind`**: randomized parking at
//     every base-object boundary, including *inside pinned epochs*
//     (`pinned_park_probability` — the mid-epoch-bump seam, which stalls
//     reclamation globally). Every implementation must keep terminating;
//     the step-certifiable wait-free kinds (`Mv`, `MvSharded`) must
//     additionally stay within their budget on every single scan. The
//     retry-based kinds are exempt from the budget by design and are
//     documented as such where they are skipped: their scans wait out
//     writers (Lock, the batch gate, the coordinated fallback) or pay
//     contention-dependent retries (DoubleCollect, epoch validation), so a
//     step budget there would measure the scheduler, not the algorithm.
// ---------------------------------------------------------------------------

/// The deterministic parked-writer seam on the unsharded multiversioned
/// object: a batch parked mid-commit is invisible, free, and bounded.
#[test]
fn mv_scans_meet_their_budget_with_a_writer_parked_forever() {
    let snap = MvSnapshot::new(16, 3, 0u64);
    snap.update_many(ProcessId(0), &[(0, 7), (5, 7), (10, 7), (15, 7)]);
    let parked = snap.begin_parked_update_many(ProcessId(0), &[(0, 8), (5, 8), (10, 8), (15, 8)]);
    let comps = [0usize, 5, 10, 15];
    // Chains: the parked pending version + the committed one (+ the kept
    // initial at most); one concurrent scanner (this thread).
    let budget = MvSnapshot::<u64>::scan_step_budget(comps.len(), 3, 1);
    for _ in 0..200 {
        let scope = StepScope::start();
        let values = snap.scan(ProcessId(1), &comps);
        let steps = scope.finish().total();
        assert_eq!(values, vec![7, 7, 7, 7], "parked batch must be invisible");
        assert!(
            steps <= budget,
            "scan took {steps} steps against a forever-parked writer, budget {budget}"
        );
    }
    parked.commit();
    assert_eq!(snap.scan(ProcessId(1), &comps), vec![8, 8, 8, 8]);
}

/// The same seam across shards: a cross-shard batch parked mid-commit on
/// *every* involved shard — exactly where the coordinated fallback would
/// wait forever — leaves multiversioned cross-shard scans bounded.
#[test]
fn mv_sharded_scans_meet_their_budget_with_a_writer_parked_on_every_shard() {
    let shards = 4usize;
    let snap = MvShardedSnapshot::new(16, 3, 0u64, ShardConfig::multiversioned(shards));
    let comps: Vec<usize> = (0..shards).map(|s| s * (16 / shards)).collect();
    let writes: Vec<(usize, u64)> = comps.iter().map(|&c| (c, 7)).collect();
    snap.update_many(ProcessId(0), &writes);
    let parked_writes: Vec<(usize, u64)> = comps.iter().map(|&c| (c, 8)).collect();
    let parked = snap.begin_parked_update_many(ProcessId(0), &parked_writes);
    // Per-shard announce + clear (2 writes each, the announce also reads the
    // camera) on top of the flat per-component budget.
    let budget = MvSnapshot::<u64>::scan_step_budget(comps.len(), 3, 1) + 3 * shards as u64;
    for _ in 0..200 {
        let scope = StepScope::start();
        let values = snap.scan(ProcessId(1), &comps);
        let steps = scope.finish().total();
        assert_eq!(
            values,
            vec![7; shards],
            "batch parked mid-commit must be invisible on every shard"
        );
        assert!(
            steps <= budget,
            "cross-shard scan took {steps} steps against a writer parked on every \
             involved shard, budget {budget}"
        );
    }
    parked.commit();
    assert_eq!(snap.scan(ProcessId(1), &comps), vec![8; shards]);
    // The property the coordinated path provably lacks: its fallback drain
    // waits on exactly this parked writer, which is why it must report
    // itself blocking while the multiversioned path reports wait-free.
    let coordinated = ShardedSnapshot::with_factory(
        16,
        3,
        0u64,
        ShardConfig::contiguous(shards),
        |_, m, n, init| CasPartialSnapshot::new(m, n, init),
    );
    assert!(!coordinated.is_wait_free());
    assert!(snap.is_wait_free());
}

/// Chaos-parked updaters mid-write on **every** registered implementation:
/// single updates, cross-component batches and pinned-epoch parking
/// (`pinned_park_probability` — the mid-epoch-bump seam) all run against
/// every kind. Every kind must keep answering scans; the step-certifiable
/// multiversioned kinds must stay within their declared budget on every
/// scan, while the retry-based kinds are exempt from the budget (their
/// scans wait out writers or pay contention-dependent retries — see the
/// harness header) and are held to termination and per-component
/// monotonicity only.
#[test]
fn parked_writer_chaos_scenario_runs_on_every_impl_kind() {
    let m = 16usize;
    for kind in ImplKind::ALL {
        let snap = kind.build(m, 5, 0);
        let stop = Arc::new(AtomicBool::new(false));
        let park_heavy = chaos::ChaosConfig {
            perturb_probability: 0.4,
            sleep_probability: 0.5,
            max_sleep_us: 200,
            max_spin: 64,
            // The mid-epoch-bump seam: park *while pinned*, stalling epoch
            // advance (and therefore version/record reclamation) globally.
            pinned_park_probability: 0.2,
            max_pinned_park_us: 200,
        };
        // Two single-updaters owning the scanned components, parked at
        // every base-object boundary — mid-install, mid-helping, mid-epoch.
        let updaters: Vec<_> = (0..2usize)
            .map(|t| {
                let snap = Arc::clone(&snap);
                let stop = Arc::clone(&stop);
                let cfg = park_heavy.clone();
                std::thread::spawn(move || {
                    let _chaos = chaos::enable(0x9A7 ^ ((t as u64) << 5), cfg);
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        snap.update(ProcessId(t), t * 8, i + 1);
                        i += 1;
                    }
                })
            })
            .collect();
        // One batcher spanning the whole component range: parked mid-batch.
        let batcher = {
            let snap = Arc::clone(&snap);
            let stop = Arc::clone(&stop);
            let cfg = park_heavy.clone();
            std::thread::spawn(move || {
                let _chaos = chaos::enable(0xBA7C4ED, cfg);
                let mut v = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    snap.update_many(ProcessId(2), &[(4, v), (12, v)]);
                    v += 1;
                }
            })
        };
        // And a single-updater *sharing component 4 with the batcher* — the
        // single-vs-batch same-register race (chain-buried batch versions)
        // that disjoint-ownership scenarios never produce.
        let contender = {
            let snap = Arc::clone(&snap);
            let stop = Arc::clone(&stop);
            let cfg = park_heavy.clone();
            std::thread::spawn(move || {
                let _chaos = chaos::enable(0xC047E4D, cfg);
                let mut i = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    snap.update(ProcessId(3), 4, i << 32);
                    i += 1;
                }
            })
        };
        let comps = [0usize, 4, 8, 12];
        let step_certifiable = matches!(kind, ImplKind::Mv | ImplKind::MvSharded { .. });
        // Generous but *constant* budget: chains transiently hold a few
        // unpruned versions per in-flight writer on top of the kept ones,
        // and the sharded variant adds its per-shard announce/clear writes.
        let budget = MvSnapshot::<u64>::scan_step_budget(comps.len(), 16, 2) + 3 * 4;
        let mut last = vec![0u64; comps.len()];
        let mut worst = 0u64;
        for _ in 0..300 {
            let scope = StepScope::start();
            let values = snap.scan(ProcessId(4), &comps);
            let steps = scope.finish().total();
            worst = worst.max(steps);
            assert_eq!(values.len(), comps.len(), "{}", kind.label());
            // Single-writer monotone discipline on components 0 and 8.
            for &(j, c) in &[(0usize, 0usize), (2, 8)] {
                let _ = c;
                assert!(
                    values[j] >= last[j],
                    "{}: component went backwards",
                    kind.label()
                );
                last[j] = values[j];
            }
            if step_certifiable {
                assert!(
                    steps <= budget,
                    "{}: scan took {steps} steps under parked-writer chaos, budget {budget}",
                    kind.label()
                );
            }
            // Retry-based kinds: exempt from the budget by design — their
            // scans block on or retry against the parked writers — so they
            // are held to termination (reaching this line) only.
        }
        if step_certifiable {
            // Sanity: the budget assertion above really measured something.
            assert!(worst > 0, "{}", kind.label());
        }
        stop.store(true, Ordering::Relaxed);
        for u in updaters {
            u.join().unwrap();
        }
        batcher.join().unwrap();
        contender.join().unwrap();
    }
}

/// Chaos-heavy smoke test: with aggressive perturbation on every thread, all
/// operations still terminate and return plausible values (no deadlock, no
/// livelock, no panic).
#[test]
fn everything_terminates_under_aggressive_chaos() {
    let snapshot = Arc::new(CasPartialSnapshot::new(16, 6, 0u64));
    let handles: Vec<_> = (0..6usize)
        .map(|pid| {
            let snapshot = Arc::clone(&snapshot);
            std::thread::spawn(move || {
                let _chaos = chaos::enable(pid as u64 * 31, chaos::ChaosConfig::aggressive());
                if pid < 3 {
                    for i in 0..300u64 {
                        snapshot.update(ProcessId(pid), (i % 16) as usize, i * 6 + pid as u64 + 1);
                    }
                } else {
                    for i in 0..300usize {
                        let comps = [i % 16, (i * 5) % 16, (i * 11) % 16];
                        let values = snapshot.scan(ProcessId(pid), &comps);
                        assert_eq!(values.len(), 3);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
