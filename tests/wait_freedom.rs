//! Wait-freedom as a measurable property: the paper's theorems bound the
//! number of base-object steps of each operation, so the tests drive the
//! algorithms under sustained contention and schedule perturbation and assert
//! the step bounds directly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use partial_snapshot::activeset::{ActiveSet, CasActiveSet};
use partial_snapshot::shard::{ShardConfig, ShardedSnapshot};
use partial_snapshot::shmem::{chaos, ProcessId, StepScope};
use partial_snapshot::snapshot::{CasPartialSnapshot, PartialSnapshot, RegisterPartialSnapshot};

/// Theorem 3: a partial scan of `r` components finishes in `O(r²)` steps
/// no matter what concurrent updates do. The concrete budget for this
/// implementation is `(2r + 3)·r` reads plus a constant for announcement and
/// join/leave.
#[test]
fn figure3_scan_step_bound_holds_under_adversarial_updates() {
    let m = 32usize;
    let r = 8usize;
    let snapshot = Arc::new(CasPartialSnapshot::new(m, 8, 0u64));
    let stop = Arc::new(AtomicBool::new(false));
    // Six updaters hammer exactly the components being scanned, with chaos
    // enabled so their writes land at awkward moments.
    let updaters: Vec<_> = (0..6usize)
        .map(|t| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _chaos = chaos::enable(t as u64, chaos::ChaosConfig::light());
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    snapshot.update(ProcessId(t), (i % 8) as usize, i + 1);
                    i += 1;
                }
            })
        })
        .collect();

    let comps: Vec<usize> = (0..r).collect();
    let budget = ((2 * r + 3) * r + 16) as u64;
    let mut worst = 0u64;
    for _ in 0..3000 {
        let scope = StepScope::start();
        let values = snapshot.scan(ProcessId(7), &comps);
        let steps = scope.finish().total();
        assert_eq!(values.len(), r);
        worst = worst.max(steps);
        assert!(
            steps <= budget,
            "scan took {steps} steps, exceeding the Theorem 3 budget of {budget}"
        );
    }
    stop.store(true, Ordering::Relaxed);
    for u in updaters {
        u.join().unwrap();
    }
    assert!(worst > 0);
}

/// Theorem 1 (with the collect active set): a Figure 1 scan finishes within
/// `2n + 4` collects regardless of update behaviour, i.e. within
/// `(2n + 5)·r + O(1)` steps.
#[test]
fn figure1_scan_step_bound_holds_under_adversarial_updates() {
    let m = 16usize;
    let r = 4usize;
    let n = 8usize;
    let snapshot = Arc::new(RegisterPartialSnapshot::new(m, n, 0u64));
    let stop = Arc::new(AtomicBool::new(false));
    let updaters: Vec<_> = (0..4usize)
        .map(|t| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    snapshot.update(ProcessId(t), (i % 4) as usize, i + 1);
                    i += 1;
                }
            })
        })
        .collect();

    let comps: Vec<usize> = (0..r).collect();
    let budget = ((2 * n + 5) * r + n + 16) as u64;
    for _ in 0..3000 {
        let scope = StepScope::start();
        let values = snapshot.scan(ProcessId(7), &comps);
        let steps = scope.finish().total();
        assert_eq!(values.len(), r);
        assert!(
            steps <= budget,
            "scan took {steps} steps, exceeding the Theorem 1 budget of {budget}"
        );
    }
    stop.store(true, Ordering::Relaxed);
    for u in updaters {
        u.join().unwrap();
    }
}

/// Theorem 2: `join` and `leave` of the Figure 2 active set are O(1) — in this
/// implementation exactly 2 and 1 base-object steps — no matter how much
/// concurrent churn there is.
#[test]
fn figure2_join_and_leave_are_constant_time_under_churn() {
    let set = Arc::new(CasActiveSet::new());
    let stop = Arc::new(AtomicBool::new(false));
    let churners: Vec<_> = (1..=6usize)
        .map(|pid| {
            let set = Arc::clone(&set);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let t = set.join(ProcessId(pid));
                    let _ = set.get_set();
                    set.leave(ProcessId(pid), t);
                }
            })
        })
        .collect();

    for _ in 0..5000 {
        let scope = StepScope::start();
        let ticket = set.join(ProcessId(0));
        assert_eq!(
            scope.finish().total(),
            2,
            "join is one fetch&increment plus one write"
        );
        let scope = StepScope::start();
        set.leave(ProcessId(0), ticket);
        assert_eq!(scope.finish().total(), 1, "leave is one write");
    }
    stop.store(true, Ordering::Relaxed);
    for c in churners {
        c.join().unwrap();
    }
}

/// Update operations of Figure 3 are bounded by the announced work of the
/// scanners that are active while they run: with scanners of width r, an
/// update never exceeds the O(Cs²·rmax²) envelope (checked here with a very
/// generous constant), and with no scanners it is constant.
#[test]
fn figure3_update_cost_tracks_active_scanners() {
    let m = 64usize;
    let snapshot = Arc::new(CasPartialSnapshot::new(m, 8, 0u64));

    // Quiescent: no scanners announced, update cost is a small constant.
    let scope = StepScope::start();
    snapshot.update(ProcessId(0), 10, 1);
    assert!(scope.finish().total() <= 8);

    // Four scanners continuously scanning 4 components each.
    let stop = Arc::new(AtomicBool::new(false));
    let r = 4usize;
    let scanners: Vec<_> = (1..=4usize)
        .map(|pid| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let comps: Vec<usize> = (pid * 4..pid * 4 + 4).collect();
                while !stop.load(Ordering::Relaxed) {
                    let _ = snapshot.scan(ProcessId(pid), &comps);
                }
            })
        })
        .collect();

    // Cs = 4 scanners, rmax = 4: the embedded scan reads at most Cs·rmax = 16
    // announced components, for at most 2·16+2 collects, plus the getSet and
    // announcement reads. The getSet itself is only *amortized* bounded
    // (Theorem 2), so the envelope is checked on the mean over many updates,
    // with a generous hard ceiling per operation to catch runaway loops.
    let cs_rmax = (4 * r) as u64;
    let amortized_budget = (2 * cs_rmax + 3) * cs_rmax + 64;
    let hard_ceiling = amortized_budget * 50;
    let mut total_steps = 0u64;
    const UPDATES: u64 = 2000;
    for i in 0..UPDATES {
        let scope = StepScope::start();
        snapshot.update(ProcessId(0), (i % 8) as usize, i + 2);
        let steps = scope.finish().total();
        total_steps += steps;
        assert!(
            steps <= hard_ceiling,
            "update took {steps} steps, exceeding the hard ceiling {hard_ceiling}"
        );
    }
    let mean = total_steps / UPDATES;
    assert!(
        mean <= amortized_budget,
        "mean update cost {mean} exceeds the amortized Cs²·rmax² envelope {amortized_budget}"
    );
    stop.store(true, Ordering::Relaxed);
    for s in scanners {
        s.join().unwrap();
    }
}

/// The sharded store's deterministic step bounds. The *optimistic* machinery
/// is step-bounded per round, so bounds that do not depend on how the host
/// schedules threads are: (a) quiescent cross-shard scans finish in one
/// validated round; (b) single-shard scans cost an inner scan and nothing
/// more; (c) updates cost the inner update plus four constant coordination
/// ops. The coordinated fallback's drain *waits on straggler updates* — a
/// scheduling-dependent quantity the object honestly reports by returning
/// `is_wait_free() == false` for multi-shard placements — so under live
/// contention the test asserts termination and result shape, not a step
/// number (a step budget there would measure the scheduler, not the
/// algorithm).
#[test]
fn sharded_step_bounds_hold_where_they_are_deterministic() {
    let m = 32usize;
    let shards = 4usize;
    let snapshot = Arc::new(ShardedSnapshot::with_factory(
        m,
        8,
        0u64,
        ShardConfig::contiguous(shards).with_retries(3),
        |_, sm, sn, init| CasPartialSnapshot::new(sm, sn, init),
    ));

    // (a) Quiescent cross-shard scan: one optimistic round = per involved
    // shard, 4 epoch reads plus a quiescent inner sub-scan of r' = 1
    // (announce + join/leave + two 1-read collects ≈ 8 steps).
    let comps: Vec<usize> = (0..shards).map(|s| s * (m / shards)).collect();
    let r = comps.len() as u64;
    let quiescent_budget = r * (4 + 8) + 8;
    for _ in 0..200 {
        let scope = StepScope::start();
        let values = snapshot.scan(ProcessId(7), &comps);
        let steps = scope.finish().total();
        assert_eq!(values.len(), comps.len());
        assert!(
            steps <= quiescent_budget,
            "quiescent cross-shard scan took {steps} steps, budget {quiescent_budget}"
        );
    }

    // (b) Single-shard scan: the inner scan plus four batch-window
    // validation reads (update epochs are never read — plain update churn
    // cannot make a single-shard scan retry).
    let local: Vec<usize> = (0..4).collect(); // all on shard 0
    let scope = StepScope::start();
    let _ = snapshot.scan(ProcessId(7), &local);
    let steps = scope.finish().total();
    assert!(
        steps <= 4 + 2 * 4 + 4 + 4,
        "single-shard scan of 4 components took {steps} steps"
    );

    // (c) Update: inner update + 1 flag read + 3 counter RMWs. The first
    // update after the scans above pays their amortized active-set cost once
    // (its getSet walks the scans' vacated slots and installs the skip
    // interval — Theorem 2's accounting); warm up with one update so the
    // measured one shows the steady-state constant.
    snapshot.update(ProcessId(6), 17, 1);
    let scope = StepScope::start();
    snapshot.update(ProcessId(6), 17, 2);
    let steps = scope.finish().total();
    assert!(
        steps <= 8 + 4,
        "quiescent sharded update took {steps} steps"
    );
}

/// Under adversarial updates hammering exactly the scanned components, every
/// cross-shard scan still terminates with a right-sized, consistent answer
/// and the retry/fallback machinery actually engages. (No step assertion
/// here — the coordinated drain waits on updater progress, which is the
/// scheduler's to decide; see `sharded_step_bounds_hold_where_they_are_deterministic`.)
#[test]
fn sharded_scans_terminate_under_adversarial_updates() {
    let m = 32usize;
    let shards = 4usize;
    let snapshot = Arc::new(ShardedSnapshot::with_factory(
        m,
        8,
        0u64,
        ShardConfig::contiguous(shards).with_retries(1),
        |_, sm, sn, init| CasPartialSnapshot::new(sm, sn, init),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    // Updater `t` exclusively owns component `t * 8` — exactly the component
    // the scanner reads on shard `t` — and writes strictly increasing values
    // (single-writer monotone discipline, so scans must never go backwards).
    let updaters: Vec<_> = (0..4usize)
        .map(|t| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _chaos = chaos::enable(t as u64, chaos::ChaosConfig::light());
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    snapshot.update(ProcessId(t), t * 8, i + 1);
                    i += 1;
                }
            })
        })
        .collect();
    let comps: Vec<usize> = (0..shards).map(|s| s * (m / shards)).collect();
    let mut last = vec![0u64; comps.len()];
    for _ in 0..2000 {
        let values = snapshot.scan(ProcessId(7), &comps);
        assert_eq!(values.len(), comps.len());
        // Single-writer monotone discipline per component: values never go
        // backwards across scans.
        for (v, l) in values.iter().zip(last.iter_mut()) {
            assert!(*v >= *l, "component value went backwards: {v} < {l}");
            *l = *v;
        }
    }
    stop.store(true, Ordering::Relaxed);
    for u in updaters {
        u.join().unwrap();
    }
    let stats = snapshot.coordination_stats();
    assert!(stats.cross_shard_scans() > 0, "{stats:?}");
    assert_eq!(
        stats.cross_shard_scans(),
        2000,
        "the three scan counters partition the scans"
    );
}

/// Batched updates and the scan validation they impose: scans racing a live
/// stream of `update_many` batches keep terminating with consistent answers,
/// and once the stream ends a scan's step count returns to the single-update
/// budget plus the four gate-validation reads (the gate adds a constant, not
/// a new asymptotic term). Wait-freedom proper is a property of the
/// single-update interface — batches buy atomicity by blocking scans for the
/// duration of each write phase, the same trade the sharded store's
/// coordinated path makes.
#[test]
fn scans_terminate_and_stay_bounded_around_batched_updates() {
    let m = 16usize;
    let r = 4usize;
    let snapshot = Arc::new(CasPartialSnapshot::new(m, 4, 0u64));
    let stop = Arc::new(AtomicBool::new(false));
    let batcher = {
        let snapshot = Arc::clone(&snapshot);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let _chaos = chaos::enable(3, chaos::ChaosConfig::light());
            let mut v = 1u64;
            while !stop.load(Ordering::Relaxed) {
                let writes: Vec<(usize, u64)> = (0..4).map(|i| (i * 4, v)).collect();
                snapshot.update_many(ProcessId(0), &writes);
                v += 1;
            }
        })
    };
    let comps: Vec<usize> = (0..r).map(|i| i * 4).collect();
    for _ in 0..2000 {
        let values = snapshot.scan(ProcessId(1), &comps);
        assert_eq!(values.len(), r);
        // The batch writes one value everywhere: equality is the atomicity
        // invariant.
        assert!(
            values.windows(2).all(|w| w[0] == w[1]),
            "torn batch observed: {values:?}"
        );
    }
    stop.store(true, Ordering::Relaxed);
    batcher.join().unwrap();
    // Quiescent again: the scan budget is the classic cost plus 4 gate reads.
    let scope = StepScope::start();
    let _ = snapshot.scan(ProcessId(1), &comps);
    let steps = scope.finish().total();
    assert!(
        steps <= (4 + 2 * r as u64 + 4) + 4,
        "post-batch quiescent scan took {steps} steps"
    );
}

/// Chaos-heavy smoke test: with aggressive perturbation on every thread, all
/// operations still terminate and return plausible values (no deadlock, no
/// livelock, no panic).
#[test]
fn everything_terminates_under_aggressive_chaos() {
    let snapshot = Arc::new(CasPartialSnapshot::new(16, 6, 0u64));
    let handles: Vec<_> = (0..6usize)
        .map(|pid| {
            let snapshot = Arc::clone(&snapshot);
            std::thread::spawn(move || {
                let _chaos = chaos::enable(pid as u64 * 31, chaos::ChaosConfig::aggressive());
                if pid < 3 {
                    for i in 0..300u64 {
                        snapshot.update(ProcessId(pid), (i % 16) as usize, i * 6 + pid as u64 + 1);
                    }
                } else {
                    for i in 0..300usize {
                        let comps = [i % 16, (i * 5) % 16, (i * 11) % 16];
                        let values = snapshot.scan(ProcessId(pid), &comps);
                        assert_eq!(values.len(), 3);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
