//! Lincheck conformance for the wire transport: scenario traffic pushed
//! through a socket-backed `psnap-wire` server must produce histories
//! indistinguishable — to the checkers — from in-process service traffic.
//! The transport adds frame encode/decode, per-connection queues, and real
//! socket scheduling, but it must not reorder a client's operations,
//! invent acknowledgements, or lose them.
//!
//! Small adversarial scenarios go through the exhaustive WGL checker over
//! both socket families; a stress scenario goes through the scalable
//! monotone checks — the same discipline as `service_lincheck`, one layer
//! further out.

use std::sync::Arc;
use std::time::Duration;

use partial_snapshot::lincheck::{check_history, check_monotone_history};
use partial_snapshot::serve::Coalescing;
use partial_snapshot::shard::{MvShardedSnapshot, ShardConfig};
use partial_snapshot::sim::{run_scenario_via_wire, Scenario, ServiceDriverConfig, WireTransport};
use partial_snapshot::snapshot::CasPartialSnapshot;

fn driver(coalescing: Coalescing) -> ServiceDriverConfig {
    ServiceDriverConfig {
        coalescing,
        ..ServiceDriverConfig::default()
    }
}

#[test]
fn wire_small_histories_are_linearizable_over_tcp() {
    for seed in 0..10 {
        let scenario = Scenario::random_small(seed);
        let snapshot = Arc::new(CasPartialSnapshot::new(scenario.components, 2, 0u64));
        let history = run_scenario_via_wire(
            snapshot,
            &scenario,
            &driver(Coalescing::Window(Duration::ZERO)),
            WireTransport::Tcp,
        );
        assert_eq!(history.len(), scenario.total_ops());
        history.validate_well_formed().unwrap();
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: tcp wire history not linearizable"
        );
    }
}

#[test]
fn wire_small_histories_are_linearizable_over_unix_sockets() {
    for seed in 0..10 {
        let scenario = Scenario::random_small(seed ^ 0xA5);
        let snapshot = Arc::new(CasPartialSnapshot::new(scenario.components, 2, 0u64));
        let history = run_scenario_via_wire(
            snapshot,
            &scenario,
            &driver(Coalescing::Window(Duration::from_micros(100))),
            WireTransport::Unix,
        );
        assert_eq!(history.len(), scenario.total_ops());
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: unix wire history not linearizable"
        );
    }
}

#[test]
fn wire_stress_history_passes_monotone_checks_over_sharded_backing() {
    let scenario = Scenario::stress(12, 3, 2, 50, 30, 4, 0xBEEF);
    let snapshot = Arc::new(MvShardedSnapshot::new(
        12,
        4,
        0u64,
        ShardConfig::multiversioned(2),
    ));
    let history = run_scenario_via_wire(
        snapshot,
        &scenario,
        &driver(Coalescing::Window(Duration::from_micros(200))),
        WireTransport::Tcp,
    );
    assert_eq!(history.len(), scenario.total_ops());
    history.validate_well_formed().unwrap();
    assert_eq!(check_monotone_history(&history), Ok(()));
}
