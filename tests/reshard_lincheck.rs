//! Linearizability across **live resharding**: adversarial schedules run
//! while a resharder migrates the partition map under the traffic, and the
//! recorded histories face the same checkers as every static layout —
//! exhaustive Wing–Gong for small schedules, the scalable monotone checks
//! for stress schedules. A reshard records nothing in the history, so any
//! torn cut or lost write it causes is charged to the operation that
//! observed it and fails the check.

use std::sync::Arc;

use partial_snapshot::lincheck::{check_history, check_monotone_history};
use partial_snapshot::shard::{MvShardedSnapshot, ShardConfig, ShardedSnapshot};
use partial_snapshot::sim::{run_scenario, Role, Scenario};
use partial_snapshot::snapshot::{CasPartialSnapshot, PartialSnapshot, ReshardOp};

/// A reshard schedule that is guaranteed to make progress on any two-shard
/// layout: the merge is always accepted (two allocated ids, distinct), after
/// which shard 0 owns every component (≥ 2 in any cross-shard scenario) so
/// the split is accepted too, and the final merge folds the appended shard
/// back. Every history therefore really spans at least two generations.
fn two_shard_reshard_storm() -> Vec<ReshardOp> {
    vec![
        ReshardOp::Merge { from: 1, into: 0 },
        ReshardOp::Split { shard: 0 },
        ReshardOp::Merge { from: 2, into: 0 },
        ReshardOp::Split { shard: 0 },
    ]
}

fn with_resharder(mut scenario: Scenario, ops: Vec<ReshardOp>) -> Scenario {
    scenario.roles.push(Role::Resharder { ops });
    scenario
}

#[test]
fn mv_sharded_small_schedules_stay_linearizable_across_live_reshards() {
    for seed in 0..25u64 {
        let scenario = with_resharder(
            Scenario::random_cross_shard(seed, 2),
            two_shard_reshard_storm(),
        );
        let snapshot = Arc::new(MvShardedSnapshot::new(
            scenario.components,
            scenario.processes(),
            0u64,
            ShardConfig::multiversioned(2),
        ));
        let history = run_scenario(&snapshot, &scenario);
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: mv history spanning a live reshard is not linearizable"
        );
        assert!(
            snapshot.reshards() >= 2,
            "seed {seed}: the reshard storm must actually migrate (got {})",
            snapshot.reshards()
        );
    }
}

#[test]
fn drain_and_rebuild_small_schedules_stay_linearizable_across_reshards() {
    for seed in 0..25u64 {
        let scenario = with_resharder(
            Scenario::random_cross_shard(seed, 2),
            two_shard_reshard_storm(),
        );
        let snapshot = Arc::new(ShardedSnapshot::with_factory(
            scenario.components,
            scenario.processes(),
            0u64,
            ShardConfig::contiguous(2),
            |_, m, n, init| CasPartialSnapshot::new(m, n, init),
        ));
        let history = run_scenario(&snapshot, &scenario);
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: drain-and-rebuild history is not linearizable"
        );
        assert!(
            snapshot.reshards() >= 2,
            "seed {seed}: the reshard storm must actually rebuild (got {})",
            snapshot.reshards()
        );
    }
}

#[test]
fn mv_sharded_stress_history_is_monotone_across_a_reshard_storm() {
    let mut scenario = Scenario::stress(24, 3, 3, 200, 120, 6, 42);
    // A longer storm over a three-shard layout; ids that have gone invalid
    // or empty by the time an op fires are refused harmlessly, the rest
    // keep the layout churning under the full stress workload.
    scenario.roles.push(Role::Resharder {
        ops: vec![
            ReshardOp::Split { shard: 0 },
            ReshardOp::Split { shard: 1 },
            ReshardOp::Merge { from: 3, into: 0 },
            ReshardOp::Split { shard: 2 },
            ReshardOp::Merge { from: 4, into: 1 },
            ReshardOp::Split { shard: 0 },
            ReshardOp::Merge { from: 5, into: 2 },
        ],
    });
    let snapshot = Arc::new(MvShardedSnapshot::new(
        24,
        scenario.processes(),
        0u64,
        ShardConfig::multiversioned(3),
    ));
    let history = run_scenario(&snapshot, &scenario);
    assert_eq!(history.len(), scenario.total_ops());
    history.validate_well_formed().unwrap();
    assert_eq!(check_monotone_history(&history), Ok(()));
    assert!(snapshot.reshards() >= 1);
    assert!(snapshot.generation() >= 1);
}
