//! Atomicity of `update_many` under adversarial schedules.
//!
//! The batched-update contract is all-or-nothing: a concurrent scan must
//! never observe a strict subset of a batch. These tests attack the contract
//! from three sides: exhaustive WGL checking of small cross-shard batch
//! schedules, a targeted seam test that parks an updater *mid-batch* (chaos
//! sleeps fire after every base-object step, so the updater provably stalls
//! between the per-component writes of one batch) while scans race, and
//! sequential conformance of the duplicate-component last-write-wins rule
//! across every registered implementation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use partial_snapshot::bench::ImplKind;
use partial_snapshot::lincheck::check_history;
use partial_snapshot::shard::{ShardConfig, ShardedSnapshot};
use partial_snapshot::shmem::{chaos, ProcessId};
use partial_snapshot::sim::{run_scenario, Role, Scenario, ScenarioChaos};
use partial_snapshot::snapshot::{CasPartialSnapshot, PartialSnapshot};

/// A small scenario whose only updater issues batches that deliberately span
/// every shard of a `shards`-way contiguous partition, racing two scanners
/// that read across shards. Checked exhaustively.
fn cross_shard_batch_scenario(shards: usize, seed: u64) -> Scenario {
    let components = shards * 2;
    // The updater owns the even components — one per shard under the
    // contiguous split of 2-component shards.
    let owned: Vec<usize> = (0..components).step_by(2).collect();
    let spanning: Vec<usize> = owned.clone();
    Scenario {
        components,
        initial: 0,
        roles: vec![
            Role::BatchUpdater {
                components: owned,
                ops: 3,
                batch: shards,
            },
            Role::Updater {
                components: vec![1],
                ops: 2,
            },
            Role::Scanner {
                scans: vec![spanning.clone(), vec![0, 1], spanning],
            },
        ],
        chaos: Some(ScenarioChaos {
            seed,
            config: chaos::ChaosConfig::aggressive(),
        }),
    }
}

/// Cross-shard batches racing optimistic scans are linearizable — checked
/// exhaustively across shard counts, retry budgets (0 forces the coordinated
/// path) and chaos seeds.
#[test]
fn cross_shard_batches_racing_scans_are_linearizable() {
    for shards in [2usize, 3] {
        for retries in [8usize, 0] {
            for seed in 0..20u64 {
                let scenario = cross_shard_batch_scenario(shards, seed);
                scenario.validate().unwrap();
                let snapshot = Arc::new(ShardedSnapshot::with_factory(
                    scenario.components,
                    scenario.processes(),
                    0u64,
                    ShardConfig::contiguous(shards).with_retries(retries),
                    |_, m, n, init| CasPartialSnapshot::new(m, n, init),
                ));
                let history = run_scenario(&snapshot, &scenario);
                assert!(
                    check_history(&history).is_linearizable(),
                    "shards={shards} retries={retries} seed={seed}: \
                     cross-shard batch produced a non-linearizable history"
                );
            }
        }
    }
}

/// Every registered implementation passes the exhaustive check on small
/// schedules that mix batched and single updaters (the generator emits
/// `BatchUpdater` roles for a third of the updaters).
#[test]
fn every_impl_kind_linearizes_batched_small_schedules() {
    for kind in ImplKind::ALL {
        let seeds = if kind.build(4, 2, 0).is_wait_free() {
            0..10u64
        } else {
            0..5u64
        };
        for seed in seeds {
            let scenario = Scenario::random_small(seed);
            let snapshot = kind.build(scenario.components, scenario.processes(), 0);
            let history = run_scenario(&snapshot, &scenario);
            assert!(
                check_history(&history).is_linearizable(),
                "{}: seed {seed} non-linearizable",
                kind.label()
            );
        }
    }
}

/// The targeted seam test: chaos parks the updater after every base-object
/// step — including *between the two per-shard sub-batches* of a cross-shard
/// `update_many` — so optimistic scans repeatedly catch the object mid-batch.
/// The batch writes the same value to one component of each shard; a scan
/// returning unequal values would be a torn batch.
#[test]
fn parked_mid_batch_updater_never_exposes_a_partial_batch() {
    let snap = Arc::new(ShardedSnapshot::with_factory(
        8,
        3,
        0u64,
        // One optimistic retry, so both the retry path and the coordinated
        // fallback run against the parked updater.
        ShardConfig::contiguous(4).with_retries(1),
        |_, m, n, init| CasPartialSnapshot::new(m, n, init),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let updater = {
        let snap = Arc::clone(&snap);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Park long and often at every step boundary: the window between
            // the batch's shard-0 write and its shard-3 write stays open for
            // hundreds of microseconds at a time.
            let _chaos = chaos::enable(
                0xBA7C4,
                chaos::ChaosConfig {
                    perturb_probability: 0.5,
                    sleep_probability: 0.5,
                    max_sleep_us: 300,
                    max_spin: 64,
                    ..chaos::ChaosConfig::default()
                },
            );
            let mut v = 1u64;
            while !stop.load(Ordering::Relaxed) {
                // Components 0 and 6 live on shards 0 and 3.
                snap.update_many(ProcessId(0), &[(0, v), (6, v)]);
                v += 1;
            }
        })
    };
    let scanners: Vec<_> = (1..3usize)
        .map(|pid| {
            let snap = Arc::clone(&snap);
            std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..1500 {
                    let got = snap.scan(ProcessId(pid), &[0, 6]);
                    assert_eq!(got[0], got[1], "scan observed a partial batch: {got:?}");
                    assert!(got[0] >= last, "batch values went backwards");
                    last = got[0];
                }
            })
        })
        .collect();
    for s in scanners {
        s.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    updater.join().unwrap();
    let stats = snap.coordination_stats();
    assert!(
        stats.cross_shard_scans() >= 3000,
        "every scan is cross-shard: {stats:?}"
    );
}

/// The same seam attack against the unsharded collect-based objects: the
/// chaos-parked updater stalls between the per-register writes of one batch,
/// and the scans' batch-gate validation must hide the partial state.
#[test]
fn parked_mid_batch_updater_is_atomic_on_unsharded_objects() {
    for kind in [ImplKind::Cas, ImplKind::Register, ImplKind::DoubleCollect] {
        let snap = kind.build(8, 2, 0);
        let stop = Arc::new(AtomicBool::new(false));
        let updater = {
            let snap = Arc::clone(&snap);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _chaos = chaos::enable(
                    0x5EAB ^ kind.label().len() as u64,
                    chaos::ChaosConfig {
                        perturb_probability: 0.4,
                        sleep_probability: 0.4,
                        max_sleep_us: 200,
                        max_spin: 64,
                        ..chaos::ChaosConfig::default()
                    },
                );
                let mut v = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    snap.update_many(ProcessId(0), &[(0, v), (7, v)]);
                    v += 1;
                }
            })
        };
        let mut last = 0u64;
        for _ in 0..1000 {
            let got = snap.scan(ProcessId(1), &[0, 7]);
            assert_eq!(
                got[0],
                got[1],
                "{}: scan observed a partial batch: {got:?}",
                kind.label()
            );
            assert!(got[0] >= last);
            last = got[0];
        }
        stop.store(true, Ordering::Relaxed);
        updater.join().unwrap();
    }
}

/// Regression: *single-shard* scans must also see cross-shard batches
/// atomically. The locality fast path skips cross-shard epoch validation, so
/// without the dedicated batch-window check a scan of shard 0 could observe
/// a batch's shard-0 write while its shard-3 write is still pending — and a
/// strictly later scan of shard 3 would then read pre-batch state, an order
/// no linearization explains (scan A places the batch before itself, scan B
/// after).
#[test]
fn single_shard_scans_observe_cross_shard_batches_atomically() {
    let snap = Arc::new(ShardedSnapshot::with_factory(
        8,
        2,
        0u64,
        ShardConfig::contiguous(4),
        |_, m, n, init| CasPartialSnapshot::new(m, n, init),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let updater = {
        let snap = Arc::clone(&snap);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let _chaos = chaos::enable(0x51B5, chaos::ChaosConfig::aggressive());
            let mut v = 1u64;
            while !stop.load(Ordering::Relaxed) {
                // Components 0 and 6 live on shards 0 and 3.
                snap.update_many(ProcessId(0), &[(0, v), (6, v)]);
                v += 1;
            }
        })
    };
    // Alternate one-component scans across the two shards: if a scan returns
    // batch k's value, every strictly later scan (of either component) must
    // return at least k — the batches it proves complete are complete for
    // both components.
    let mut last = 0u64;
    for i in 0..4000 {
        let component = if i % 2 == 0 { 0 } else { 6 };
        let got = snap.scan(ProcessId(1), &[component])[0];
        assert!(
            got >= last,
            "single-shard scan of component {component} saw batch {got} after a \
             previous scan proved batch {last} complete — torn cross-shard batch"
        );
        last = got;
    }
    stop.store(true, Ordering::Relaxed);
    updater.join().unwrap();
}

/// Sequential conformance of the duplicate rule: for every implementation a
/// batch with repeated components behaves exactly like its last-write-wins
/// reduction, empty batches are no-ops, and a one-element batch equals a
/// single update.
#[test]
fn duplicate_components_resolve_last_write_wins_everywhere() {
    for kind in ImplKind::ALL {
        let snap = kind.build(8, 2, 0);
        snap.update_many(ProcessId(0), &[(2, 5), (4, 1), (2, 9), (4, 2), (2, 7)]);
        assert_eq!(
            snap.scan(ProcessId(1), &[2, 4]),
            vec![7, 2],
            "{}",
            kind.label()
        );
        snap.update_many(ProcessId(0), &[]);
        snap.update_many(ProcessId(0), &[(5, 55)]);
        assert_eq!(
            snap.scan(ProcessId(1), &[2, 4, 5]),
            vec![7, 2, 55],
            "{}",
            kind.label()
        );
    }
}

/// Out-of-range batch components and process ids are rejected up front, with
/// no partial application.
#[test]
fn batch_argument_validation_matches_update() {
    let snap = ImplKind::Cas.build(4, 2, 0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        snap.update_many(ProcessId(0), &[(1, 10), (4, 40)]);
    }));
    assert!(result.is_err(), "component 4 must be rejected");
    // Validation happens before any write: component 1 is untouched.
    assert_eq!(snap.scan(ProcessId(1), &[1]), vec![0]);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        snap.update_many(ProcessId(2), &[(1, 10)]);
    }));
    assert!(result.is_err(), "process id 2 must be rejected");
}
