//! Atomicity of `update_many` under adversarial schedules.
//!
//! The batched-update contract is all-or-nothing: a concurrent scan must
//! never observe a strict subset of a batch. These tests attack the contract
//! from four sides: exhaustive WGL checking of small cross-shard batch
//! schedules (on the coordinated two-phase path *and* the multiversioned
//! single-published-timestamp path), a targeted seam test that parks an
//! updater *mid-batch* (chaos sleeps fire after every base-object step, so
//! the updater provably stalls between the per-component writes of one
//! batch) while scans race, a deterministic version-boundary seam where a
//! scan's announced timestamp races a parked batch commit, and sequential
//! conformance of the duplicate-component last-write-wins rule across every
//! registered implementation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use partial_snapshot::bench::ImplKind;
use partial_snapshot::lincheck::check_history;
use partial_snapshot::shard::{MvShardedSnapshot, ShardConfig, ShardedSnapshot};
use partial_snapshot::shmem::{chaos, ProcessId};
use partial_snapshot::sim::{run_scenario, Role, Scenario, ScenarioChaos};
use partial_snapshot::snapshot::{CasPartialSnapshot, MvSnapshot, PartialSnapshot};

/// A small scenario whose only updater issues batches that deliberately span
/// every shard of a `shards`-way contiguous partition, racing two scanners
/// that read across shards. Checked exhaustively.
fn cross_shard_batch_scenario(shards: usize, seed: u64) -> Scenario {
    let components = shards * 2;
    // The updater owns the even components — one per shard under the
    // contiguous split of 2-component shards.
    let owned: Vec<usize> = (0..components).step_by(2).collect();
    let spanning: Vec<usize> = owned.clone();
    Scenario {
        components,
        initial: 0,
        roles: vec![
            Role::BatchUpdater {
                components: owned,
                ops: 3,
                batch: shards,
            },
            Role::Updater {
                components: vec![1],
                ops: 2,
            },
            Role::Scanner {
                scans: vec![spanning.clone(), vec![0, 1], spanning],
            },
        ],
        chaos: Some(ScenarioChaos {
            seed,
            config: chaos::ChaosConfig::aggressive(),
        }),
    }
}

/// Cross-shard batches racing optimistic scans are linearizable — checked
/// exhaustively across shard counts, retry budgets (0 forces the coordinated
/// path) and chaos seeds.
#[test]
fn cross_shard_batches_racing_scans_are_linearizable() {
    for shards in [2usize, 3] {
        for retries in [8usize, 0] {
            for seed in 0..20u64 {
                let scenario = cross_shard_batch_scenario(shards, seed);
                scenario.validate().unwrap();
                let snapshot = Arc::new(ShardedSnapshot::with_factory(
                    scenario.components,
                    scenario.processes(),
                    0u64,
                    ShardConfig::contiguous(shards).with_retries(retries),
                    |_, m, n, init| CasPartialSnapshot::new(m, n, init),
                ));
                let history = run_scenario(&snapshot, &scenario);
                assert!(
                    check_history(&history).is_linearizable(),
                    "shards={shards} retries={retries} seed={seed}: \
                     cross-shard batch produced a non-linearizable history"
                );
            }
        }
    }
}

/// The multiversioned seam: WGL-check histories where a scan's announced
/// timestamp races a cross-shard `update_many` commit. The batch commits by
/// publishing one timestamp, and a scan whose timestamp the commit raced
/// must land wholly before or wholly after it — a torn batch at the version
/// boundary would make the history non-linearizable. Checked exhaustively
/// across shard counts and chaos seeds, with the same scenarios the
/// coordinated path is checked under (including the all-shard-scan ×
/// full-width-batch shapes `Scenario::random_cross_shard` now generates).
#[test]
fn mv_scans_racing_cross_shard_batch_commits_are_linearizable() {
    for shards in [2usize, 3] {
        for seed in 0..20u64 {
            let scenario = cross_shard_batch_scenario(shards, seed);
            scenario.validate().unwrap();
            let snapshot = Arc::new(MvShardedSnapshot::new(
                scenario.components,
                scenario.processes(),
                0u64,
                ShardConfig::multiversioned(shards),
            ));
            let history = run_scenario(&snapshot, &scenario);
            assert!(
                check_history(&history).is_linearizable(),
                "shards={shards} seed={seed}: a scan raced a multiversioned \
                 cross-shard batch commit into a non-linearizable history"
            );
        }
        // The union-plan shapes: every scan spans ≥ 2 shards, a third of
        // the seeds spanning *all* of them against a full-width batch.
        for seed in 0..20u64 {
            let scenario = Scenario::random_cross_shard(seed, shards);
            let snapshot = Arc::new(MvShardedSnapshot::new(
                scenario.components,
                scenario.processes(),
                0u64,
                ShardConfig::multiversioned(shards),
            ));
            let history = run_scenario(&snapshot, &scenario);
            assert!(
                check_history(&history).is_linearizable(),
                "shards={shards} seed={seed}: random cross-shard scenario \
                 non-linearizable on the multiversioned path"
            );
        }
    }
}

/// The version-boundary seam, pinned down deterministically: a scan
/// announces its timestamp, a cross-shard batch then installs *and parks*
/// (versions present on every shard, commit timestamp unpublished), and the
/// scan reads. The floor protocol must exclude the whole batch — on every
/// shard — because the commit, whenever it lands, is forced above the
/// scan's timestamp; a second scan after the commit must see the whole
/// batch. No interleaving of announce and commit may tear.
#[test]
fn announced_timestamp_racing_a_batch_commit_never_sees_a_torn_batch() {
    let snap = MvSnapshot::new(8, 3, 0u64);
    snap.update_many(ProcessId(0), &[(0, 1), (7, 1)]);
    // Scan announces and draws its timestamp first…
    snap.announce_scan(ProcessId(1));
    let s = snap.camera().tick();
    // …then the batch installs on both registers and parks mid-commit.
    let parked = snap.begin_parked_update_many(ProcessId(0), &[(0, 2), (7, 2)]);
    let before_commit = snap.scan_at(ProcessId(1), &[0, 7], s);
    assert_eq!(before_commit, vec![1, 1], "parked batch leaked into scan");
    // The commit races the still-announced scan: publishing the timestamp
    // now must land it *after* `s` (the scan's floor), so re-reading at the
    // same timestamp returns the same cut — no torn batch at the boundary.
    parked.commit();
    let after_commit = snap.scan_at(ProcessId(1), &[0, 7], s);
    assert_eq!(
        after_commit, before_commit,
        "the announced timestamp changed its answer across the batch commit"
    );
    snap.clear_announcement(ProcessId(1));
    // A scan that starts after the commit sees the whole batch.
    assert_eq!(snap.scan(ProcessId(2), &[0, 7]), vec![2, 2]);
}

/// Regression for the multiversioned torn-batch bug: a single update racing
/// a parked batch **on a shared component** buries the batch's version under
/// a chain-newer one with a smaller timestamp. Selection is by timestamp —
/// not chain position — so once the batch commits (above the single and
/// above every scan that stepped over it), it wins *both* registers: the
/// history linearizes as single → scan → batch → scan. With first-from-head
/// selection the batch stayed half-visible forever (new on component 1,
/// shadowed on component 0), which no serialization explains.
#[test]
fn late_committed_batch_beats_an_interleaved_single_on_the_shared_component() {
    let snap = MvSnapshot::new(2, 4, 0u64);
    let parked = snap.begin_parked_update_many(ProcessId(0), &[(0, 10), (1, 10)]);
    // The single lands *above* the parked batch's version on component 0
    // and commits first, with the smaller timestamp.
    snap.update(ProcessId(1), 0, 5);
    assert_eq!(
        snap.scan(ProcessId(2), &[0, 1]),
        vec![5, 0],
        "parked batch must be invisible on both components"
    );
    parked.commit();
    assert_eq!(
        snap.scan(ProcessId(2), &[0, 1]),
        vec![10, 10],
        "the late-committed batch must win both components or neither"
    );
    // Same shape across shards: components 0 and 6 live on shards 0 and 3.
    let sharded = MvShardedSnapshot::new(8, 4, 0u64, ShardConfig::multiversioned(4));
    let parked = sharded.begin_parked_update_many(ProcessId(0), &[(0, 10), (6, 10)]);
    sharded.update(ProcessId(1), 0, 5);
    assert_eq!(sharded.scan(ProcessId(2), &[0, 6]), vec![5, 0]);
    parked.commit();
    assert_eq!(sharded.scan(ProcessId(2), &[0, 6]), vec![10, 10]);
}

/// Concurrent companion: a single updater and a batcher hammer a **shared**
/// component while the batch also writes a private one. Batch values come
/// from a distinct range, so atomicity is directly observable: whenever a
/// scan resolves the shared component to a batch value, it must be exactly
/// the batch it sees on the private component — a mismatch would be a batch
/// half-overwritten at a version boundary.
#[test]
fn concurrent_singles_and_batches_on_a_shared_component_never_tear() {
    const BATCH_BASE: u64 = 1 << 32;
    for sharded in [false, true] {
        let snap: Arc<dyn PartialSnapshot<u64>> = if sharded {
            Arc::new(MvShardedSnapshot::new(
                8,
                3,
                0u64,
                ShardConfig::multiversioned(4),
            ))
        } else {
            Arc::new(MvSnapshot::new(8, 3, 0u64))
        };
        let stop = Arc::new(AtomicBool::new(false));
        let single = {
            let snap = Arc::clone(&snap);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    snap.update(ProcessId(0), 0, v); // shared with the batcher
                    v += 1;
                }
            })
        };
        let batcher = {
            let snap = Arc::clone(&snap);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    snap.update_many(ProcessId(1), &[(0, BATCH_BASE + k), (6, BATCH_BASE + k)]);
                    k += 1;
                }
            })
        };
        let mut last_batch = 0u64;
        for _ in 0..3000 {
            let got = snap.scan(ProcessId(2), &[0, 6]);
            let (shared, private) = (got[0], got[1]);
            if shared >= BATCH_BASE {
                assert_eq!(
                    shared, private,
                    "sharded={sharded}: the shared component resolved to batch \
                     {shared:#x} while the private one shows {private:#x} — torn batch"
                );
            }
            if private >= BATCH_BASE {
                assert!(private >= last_batch, "batches went backwards");
                last_batch = private;
            }
        }
        stop.store(true, Ordering::Relaxed);
        single.join().unwrap();
        batcher.join().unwrap();
    }
}

/// WGL coverage for the ownership shape the scenario generators cannot
/// express (their monotone single-writer discipline forbids it): a single
/// updater and a batcher writing the **same component** concurrently, racing
/// scans, with per-thread chaos. Histories are recorded by hand (unique
/// values per operation, logical-clock intervals) and checked exhaustively —
/// this is the interleaving class where the multiversioned torn-batch bug
/// lived, on every implementation that claims batch atomicity.
#[test]
fn shared_component_single_vs_batch_histories_are_linearizable() {
    use partial_snapshot::lincheck::{History, LogicalClock, OpRecord, OpResult, Operation};
    let kinds = [
        ImplKind::Cas,
        ImplKind::SHARDED_CAS_2,
        ImplKind::Mv,
        ImplKind::MvSharded {
            shards: 2,
            partition: partial_snapshot::shard::Partition::Contiguous,
        },
    ];
    for kind in kinds {
        for seed in 0..12u64 {
            let snap = kind.build(4, 3, 0);
            let clock = LogicalClock::new();
            let barrier = Arc::new(std::sync::Barrier::new(3));
            let mut logs: Vec<Vec<OpRecord>> = Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                // Process 0: three single updates to component 0.
                {
                    let snap = Arc::clone(&snap);
                    let clock = clock.clone();
                    let barrier = Arc::clone(&barrier);
                    handles.push(scope.spawn(move || {
                        let _chaos = chaos::enable(seed * 3, chaos::ChaosConfig::aggressive());
                        barrier.wait();
                        (0..3u64)
                            .map(|k| {
                                let value = 100 + k;
                                let invoked_at = clock.now();
                                snap.update(ProcessId(0), 0, value);
                                let returned_at = clock.now();
                                OpRecord {
                                    pid: ProcessId(0),
                                    op: Operation::Update {
                                        component: 0,
                                        value,
                                    },
                                    result: OpResult::Ack,
                                    invoked_at,
                                    returned_at,
                                }
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                // Process 1: three batches over components {0, 2} — the
                // shared component plus one of its own (cross-shard under
                // the 2-way contiguous split).
                {
                    let snap = Arc::clone(&snap);
                    let clock = clock.clone();
                    let barrier = Arc::clone(&barrier);
                    handles.push(scope.spawn(move || {
                        let _chaos = chaos::enable(seed * 3 + 1, chaos::ChaosConfig::aggressive());
                        barrier.wait();
                        (0..3u64)
                            .map(|k| {
                                let value = 200 + k;
                                let writes = vec![(0usize, value), (2usize, value)];
                                let invoked_at = clock.now();
                                snap.update_many(ProcessId(1), &writes);
                                let returned_at = clock.now();
                                OpRecord {
                                    pid: ProcessId(1),
                                    op: Operation::BatchUpdate { writes },
                                    result: OpResult::Ack,
                                    invoked_at,
                                    returned_at,
                                }
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                // Process 2: four scans of the contested pair.
                {
                    let snap = Arc::clone(&snap);
                    let clock = clock.clone();
                    let barrier = Arc::clone(&barrier);
                    handles.push(scope.spawn(move || {
                        let _chaos = chaos::enable(seed * 3 + 2, chaos::ChaosConfig::aggressive());
                        barrier.wait();
                        (0..4)
                            .map(|_| {
                                let components = vec![0usize, 2];
                                let invoked_at = clock.now();
                                let values = snap.scan(ProcessId(2), &components);
                                let returned_at = clock.now();
                                OpRecord {
                                    pid: ProcessId(2),
                                    op: Operation::Scan { components },
                                    result: OpResult::Values(values),
                                    invoked_at,
                                    returned_at,
                                }
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                for h in handles {
                    logs.push(h.join().expect("worker panicked"));
                }
            });
            let history = History::from_logs(4, 0, logs);
            assert!(
                check_history(&history).is_linearizable(),
                "{} seed {seed}: single-vs-batch race on a shared component \
                 produced a non-linearizable history",
                kind.label()
            );
        }
    }
}

/// Every registered implementation passes the exhaustive check on small
/// schedules that mix batched and single updaters (the generator emits
/// `BatchUpdater` roles for a third of the updaters).
#[test]
fn every_impl_kind_linearizes_batched_small_schedules() {
    for kind in ImplKind::ALL {
        let seeds = if kind.build(4, 2, 0).is_wait_free() {
            0..10u64
        } else {
            0..5u64
        };
        for seed in seeds {
            let scenario = Scenario::random_small(seed);
            let snapshot = kind.build(scenario.components, scenario.processes(), 0);
            let history = run_scenario(&snapshot, &scenario);
            assert!(
                check_history(&history).is_linearizable(),
                "{}: seed {seed} non-linearizable",
                kind.label()
            );
        }
    }
}

/// The targeted seam test: chaos parks the updater after every base-object
/// step — including *between the two per-shard sub-batches* of a cross-shard
/// `update_many` — so optimistic scans repeatedly catch the object mid-batch.
/// The batch writes the same value to one component of each shard; a scan
/// returning unequal values would be a torn batch.
#[test]
fn parked_mid_batch_updater_never_exposes_a_partial_batch() {
    let snap = Arc::new(ShardedSnapshot::with_factory(
        8,
        3,
        0u64,
        // One optimistic retry, so both the retry path and the coordinated
        // fallback run against the parked updater.
        ShardConfig::contiguous(4).with_retries(1),
        |_, m, n, init| CasPartialSnapshot::new(m, n, init),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let updater = {
        let snap = Arc::clone(&snap);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Park long and often at every step boundary: the window between
            // the batch's shard-0 write and its shard-3 write stays open for
            // hundreds of microseconds at a time.
            let _chaos = chaos::enable(
                0xBA7C4,
                chaos::ChaosConfig {
                    perturb_probability: 0.5,
                    sleep_probability: 0.5,
                    max_sleep_us: 300,
                    max_spin: 64,
                    ..chaos::ChaosConfig::default()
                },
            );
            let mut v = 1u64;
            while !stop.load(Ordering::Relaxed) {
                // Components 0 and 6 live on shards 0 and 3.
                snap.update_many(ProcessId(0), &[(0, v), (6, v)]);
                v += 1;
            }
        })
    };
    let scanners: Vec<_> = (1..3usize)
        .map(|pid| {
            let snap = Arc::clone(&snap);
            std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..1500 {
                    let got = snap.scan(ProcessId(pid), &[0, 6]);
                    assert_eq!(got[0], got[1], "scan observed a partial batch: {got:?}");
                    assert!(got[0] >= last, "batch values went backwards");
                    last = got[0];
                }
            })
        })
        .collect();
    for s in scanners {
        s.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    updater.join().unwrap();
    let stats = snap.coordination_stats();
    assert!(
        stats.cross_shard_scans() >= 3000,
        "every scan is cross-shard: {stats:?}"
    );
}

/// The same seam attack against the unsharded collect-based objects: the
/// chaos-parked updater stalls between the per-register writes of one batch,
/// and the scans' batch-gate validation must hide the partial state.
#[test]
fn parked_mid_batch_updater_is_atomic_on_unsharded_objects() {
    for kind in [ImplKind::Cas, ImplKind::Register, ImplKind::DoubleCollect] {
        let snap = kind.build(8, 2, 0);
        let stop = Arc::new(AtomicBool::new(false));
        let updater = {
            let snap = Arc::clone(&snap);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _chaos = chaos::enable(
                    0x5EAB ^ kind.label().len() as u64,
                    chaos::ChaosConfig {
                        perturb_probability: 0.4,
                        sleep_probability: 0.4,
                        max_sleep_us: 200,
                        max_spin: 64,
                        ..chaos::ChaosConfig::default()
                    },
                );
                let mut v = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    snap.update_many(ProcessId(0), &[(0, v), (7, v)]);
                    v += 1;
                }
            })
        };
        let mut last = 0u64;
        for _ in 0..1000 {
            let got = snap.scan(ProcessId(1), &[0, 7]);
            assert_eq!(
                got[0],
                got[1],
                "{}: scan observed a partial batch: {got:?}",
                kind.label()
            );
            assert!(got[0] >= last);
            last = got[0];
        }
        stop.store(true, Ordering::Relaxed);
        updater.join().unwrap();
    }
}

/// Regression: *single-shard* scans must also see cross-shard batches
/// atomically. The locality fast path skips cross-shard epoch validation, so
/// without the dedicated batch-window check a scan of shard 0 could observe
/// a batch's shard-0 write while its shard-3 write is still pending — and a
/// strictly later scan of shard 3 would then read pre-batch state, an order
/// no linearization explains (scan A places the batch before itself, scan B
/// after).
#[test]
fn single_shard_scans_observe_cross_shard_batches_atomically() {
    let snap = Arc::new(ShardedSnapshot::with_factory(
        8,
        2,
        0u64,
        ShardConfig::contiguous(4),
        |_, m, n, init| CasPartialSnapshot::new(m, n, init),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let updater = {
        let snap = Arc::clone(&snap);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let _chaos = chaos::enable(0x51B5, chaos::ChaosConfig::aggressive());
            let mut v = 1u64;
            while !stop.load(Ordering::Relaxed) {
                // Components 0 and 6 live on shards 0 and 3.
                snap.update_many(ProcessId(0), &[(0, v), (6, v)]);
                v += 1;
            }
        })
    };
    // Alternate one-component scans across the two shards: if a scan returns
    // batch k's value, every strictly later scan (of either component) must
    // return at least k — the batches it proves complete are complete for
    // both components.
    let mut last = 0u64;
    for i in 0..4000 {
        let component = if i % 2 == 0 { 0 } else { 6 };
        let got = snap.scan(ProcessId(1), &[component])[0];
        assert!(
            got >= last,
            "single-shard scan of component {component} saw batch {got} after a \
             previous scan proved batch {last} complete — torn cross-shard batch"
        );
        last = got;
    }
    stop.store(true, Ordering::Relaxed);
    updater.join().unwrap();
}

/// Sequential conformance of the duplicate rule: for every implementation a
/// batch with repeated components behaves exactly like its last-write-wins
/// reduction, empty batches are no-ops, and a one-element batch equals a
/// single update.
#[test]
fn duplicate_components_resolve_last_write_wins_everywhere() {
    for kind in ImplKind::ALL {
        let snap = kind.build(8, 2, 0);
        snap.update_many(ProcessId(0), &[(2, 5), (4, 1), (2, 9), (4, 2), (2, 7)]);
        assert_eq!(
            snap.scan(ProcessId(1), &[2, 4]),
            vec![7, 2],
            "{}",
            kind.label()
        );
        snap.update_many(ProcessId(0), &[]);
        snap.update_many(ProcessId(0), &[(5, 55)]);
        assert_eq!(
            snap.scan(ProcessId(1), &[2, 4, 5]),
            vec![7, 2, 55],
            "{}",
            kind.label()
        );
    }
}

/// Out-of-range batch components and process ids are rejected up front, with
/// no partial application.
#[test]
fn batch_argument_validation_matches_update() {
    let snap = ImplKind::Cas.build(4, 2, 0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        snap.update_many(ProcessId(0), &[(1, 10), (4, 40)]);
    }));
    assert!(result.is_err(), "component 4 must be rejected");
    // Validation happens before any write: component 1 is untouched.
    assert_eq!(snap.scan(ProcessId(1), &[1]), vec![0]);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        snap.update_many(ProcessId(2), &[(1, 10)]);
    }));
    assert!(result.is_err(), "process id 2 must be rejected");
}
