//! End-to-end linearizability tests: every snapshot implementation is driven
//! through adversarial concurrent schedules and the recorded histories are
//! checked mechanically — exhaustively (Wing–Gong) for small schedules,
//! with the scalable necessary-condition checks for large stress schedules.

use std::sync::Arc;

use partial_snapshot::bench::ImplKind;
use partial_snapshot::lincheck::{check_history, check_monotone_history};
use partial_snapshot::shard::{ShardConfig, ShardedSnapshot};
use partial_snapshot::sim::{
    fuzz_batched_stress_schedules, fuzz_small_schedules, fuzz_stress_schedules, run_scenario,
    Scenario,
};
use partial_snapshot::snapshot::{
    AfekFullSnapshot, CasPartialSnapshot, DoubleCollectSnapshot, LockSnapshot, PartialSnapshot,
    RegisterPartialSnapshot,
};

const SMALL_SEEDS: std::ops::Range<u64> = 0..40;

#[test]
fn cas_snapshot_small_schedules_are_linearizable() {
    let outcome = fuzz_small_schedules(
        |s| Arc::new(CasPartialSnapshot::new(s.components, s.processes(), 0u64)),
        SMALL_SEEDS,
    );
    assert!(outcome.passed(), "{outcome:?}");
}

#[test]
fn register_snapshot_small_schedules_are_linearizable() {
    let outcome = fuzz_small_schedules(
        |s| {
            Arc::new(RegisterPartialSnapshot::new(
                s.components,
                s.processes(),
                0u64,
            ))
        },
        SMALL_SEEDS,
    );
    assert!(outcome.passed(), "{outcome:?}");
}

#[test]
fn afek_full_snapshot_small_schedules_are_linearizable() {
    let outcome = fuzz_small_schedules(
        |s| Arc::new(AfekFullSnapshot::new(s.components, s.processes(), 0u64)),
        SMALL_SEEDS,
    );
    assert!(outcome.passed(), "{outcome:?}");
}

#[test]
fn double_collect_snapshot_small_schedules_are_linearizable() {
    let outcome = fuzz_small_schedules(
        |s| {
            Arc::new(DoubleCollectSnapshot::new(
                s.components,
                s.processes(),
                0u64,
            ))
        },
        0..20,
    );
    assert!(outcome.passed(), "{outcome:?}");
}

#[test]
fn lock_snapshot_small_schedules_are_linearizable() {
    let outcome = fuzz_small_schedules(
        |s| Arc::new(LockSnapshot::new(s.components, s.processes(), 0u64)),
        0..20,
    );
    assert!(outcome.passed(), "{outcome:?}");
}

/// Every registered implementation — including the sharded ones — passes the
/// exhaustive WGL check on small adversarial schedules. Non-wait-free kinds
/// get fewer seeds, matching the dedicated tests above.
#[test]
fn every_impl_kind_small_schedules_are_linearizable() {
    for kind in ImplKind::ALL {
        let seeds = if kind.build(4, 2, 0).is_wait_free() {
            0..12u64
        } else {
            0..6u64
        };
        let outcome = fuzz_small_schedules(
            |s: &Scenario| kind.build(s.components, s.processes(), 0),
            seeds,
        );
        assert!(outcome.passed(), "{}: {outcome:?}", kind.label());
    }
}

/// The dedicated multi-shard atomicity fuzz: scans that deliberately span at
/// least two shards, checked exhaustively, across shard counts, partition
/// styles and the forced-coordinated-path configuration.
#[test]
fn sharded_snapshot_cross_shard_scans_are_linearizable() {
    for shards in [2usize, 3] {
        for retries in [8usize, 0] {
            for seed in 0..25u64 {
                let scenario = Scenario::random_cross_shard(seed, shards);
                let snapshot = Arc::new(ShardedSnapshot::with_factory(
                    scenario.components,
                    scenario.processes(),
                    0u64,
                    ShardConfig::contiguous(shards).with_retries(retries),
                    |_, m, n, init| CasPartialSnapshot::new(m, n, init),
                ));
                let history = run_scenario(&snapshot, &scenario);
                assert!(
                    check_history(&history).is_linearizable(),
                    "shards={shards} retries={retries} seed={seed}: \
                     non-linearizable cross-shard history"
                );
            }
        }
    }
}

/// Same property under the hashed partition (scan sets land on shards
/// unpredictably, so the generated scans cover mixed placements).
#[test]
fn sharded_snapshot_hashed_partition_small_schedules_are_linearizable() {
    let outcome = fuzz_small_schedules(
        |s: &Scenario| {
            Arc::new(ShardedSnapshot::with_factory(
                s.components,
                s.processes(),
                0u64,
                ShardConfig::hashed(2),
                |_, m, n, init| CasPartialSnapshot::new(m, n, init),
            ))
        },
        0..25,
    );
    assert!(outcome.passed(), "{outcome:?}");
}

#[test]
fn sharded_snapshot_stress_schedules_pass_monotone_checks() {
    let outcome = fuzz_stress_schedules(
        |s: &Scenario| {
            Arc::new(ShardedSnapshot::with_factory(
                s.components,
                s.processes(),
                0u64,
                ShardConfig::contiguous(4),
                |_, m, n, init| CasPartialSnapshot::new(m, n, init),
            ))
        },
        32,
        3,
        3,
        600,
        300,
        6,
        0..3,
    );
    assert!(outcome.passed(), "{outcome:?}");
}

#[test]
fn cas_snapshot_stress_schedules_pass_monotone_checks() {
    let outcome = fuzz_stress_schedules(
        |s| Arc::new(CasPartialSnapshot::new(s.components, s.processes(), 0u64)),
        32,
        3,
        3,
        600,
        300,
        6,
        0..3,
    );
    assert!(outcome.passed(), "{outcome:?}");
}

/// Batched-updater stress: every updater op is an atomic `update_many`, and
/// the scalable monotone checks must hold for the paper's two algorithms and
/// the sharded composition (whose batches span shards under the contiguous
/// 4-way split).
#[test]
fn batched_stress_schedules_pass_monotone_checks() {
    let cas = fuzz_batched_stress_schedules(
        |s: &Scenario| Arc::new(CasPartialSnapshot::new(s.components, s.processes(), 0u64)),
        32,
        3,
        3,
        300,
        200,
        6,
        4,
        0..2,
    );
    assert!(cas.passed(), "cas: {cas:?}");
    let register = fuzz_batched_stress_schedules(
        |s: &Scenario| {
            Arc::new(RegisterPartialSnapshot::new(
                s.components,
                s.processes(),
                0u64,
            ))
        },
        32,
        3,
        3,
        300,
        200,
        6,
        4,
        0..2,
    );
    assert!(register.passed(), "register: {register:?}");
    let sharded = fuzz_batched_stress_schedules(
        |s: &Scenario| {
            Arc::new(ShardedSnapshot::with_factory(
                s.components,
                s.processes(),
                0u64,
                ShardConfig::contiguous(4),
                |_, m, n, init| CasPartialSnapshot::new(m, n, init),
            ))
        },
        32,
        3,
        3,
        300,
        200,
        6,
        4,
        0..2,
    );
    assert!(sharded.passed(), "sharded: {sharded:?}");
}

#[test]
fn register_snapshot_stress_schedules_pass_monotone_checks() {
    let outcome = fuzz_stress_schedules(
        |s| {
            Arc::new(RegisterPartialSnapshot::new(
                s.components,
                s.processes(),
                0u64,
            ))
        },
        32,
        3,
        3,
        600,
        300,
        6,
        0..3,
    );
    assert!(outcome.passed(), "{outcome:?}");
}

#[test]
fn figure3_with_collect_active_set_is_still_linearizable() {
    use partial_snapshot::activeset::CollectActiveSet;
    let outcome = fuzz_small_schedules(
        |s| {
            Arc::new(CasPartialSnapshot::with_active_set(
                s.components,
                s.processes(),
                0u64,
                CollectActiveSet::new(s.processes()),
            ))
        },
        0..20,
    );
    assert!(outcome.passed(), "{outcome:?}");
}

#[test]
fn figure1_with_figure2_active_set_is_still_linearizable() {
    use partial_snapshot::activeset::CasActiveSet;
    let outcome = fuzz_small_schedules(
        |s| {
            Arc::new(RegisterPartialSnapshot::with_active_set(
                s.components,
                s.processes(),
                0u64,
                CasActiveSet::new(),
            ))
        },
        0..20,
    );
    assert!(outcome.passed(), "{outcome:?}");
}

/// One large mixed run on the paper's main algorithm, checked end to end with
/// both history validation layers that apply at that scale.
#[test]
fn big_mixed_run_on_the_cas_snapshot_is_consistent() {
    let scenario = Scenario::stress(64, 4, 4, 1500, 800, 8, 99);
    let snapshot = Arc::new(CasPartialSnapshot::new(64, scenario.processes(), 0u64));
    let history = run_scenario(&snapshot, &scenario);
    assert_eq!(history.len(), scenario.total_ops());
    history.validate_well_formed().unwrap();
    assert_eq!(check_monotone_history(&history), Ok(()));
    // After the run, a sequential scan of everything agrees with the last
    // update each component received (single-writer discipline makes the
    // expected final value easy to compute).
    let final_view = snapshot.scan_all(partial_snapshot::shmem::ProcessId(0));
    assert_eq!(final_view.len(), 64);
}

/// Deliberately corrupted histories must be rejected by the checkers — this
/// guards against the checkers silently accepting everything.
#[test]
fn checkers_reject_corrupted_histories() {
    use partial_snapshot::lincheck::{OpResult, Operation};

    let scenario = Scenario::stress(8, 2, 2, 40, 20, 3, 5);
    let snapshot = Arc::new(CasPartialSnapshot::new(8, scenario.processes(), 0u64));
    let mut history = run_scenario(&snapshot, &scenario);
    assert_eq!(check_monotone_history(&history), Ok(()));

    // Corrupt one scan result: claim a component held a value nobody wrote.
    let scan_idx = history
        .ops
        .iter()
        .position(|o| matches!(o.op, Operation::Scan { .. }))
        .expect("history contains scans");
    if let OpResult::Values(values) = &mut history.ops[scan_idx].result {
        values[0] = 0xDEAD_BEEF;
    }
    assert!(
        check_monotone_history(&history).is_err(),
        "the checker must notice an invented value"
    );
}

/// The WGL checker and the monotone checker agree on small histories drawn
/// from real executions.
#[test]
fn wgl_and_monotone_checkers_agree_on_small_histories() {
    for seed in 0..10u64 {
        let scenario = Scenario::random_small(seed);
        let snapshot = Arc::new(CasPartialSnapshot::new(
            scenario.components,
            scenario.processes(),
            0u64,
        ));
        let history = run_scenario(&snapshot, &scenario);
        let wgl = check_history(&history).is_linearizable();
        let monotone = check_monotone_history(&history).is_ok();
        assert!(wgl, "seed {seed}: WGL rejected a real execution");
        assert!(
            monotone,
            "seed {seed}: monotone checker rejected a real execution"
        );
    }
}
