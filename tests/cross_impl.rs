//! Cross-implementation equivalence: with no concurrency, every
//! implementation must behave exactly like the sequential specification, and
//! therefore exactly like every other implementation.
//!
//! The implementation list is `ImplKind::ALL` — every implementation
//! registered with the bench harness (including the sharded ones) is covered
//! here automatically — plus the two mixed active-set instantiations that
//! only exist as ablations.

use std::sync::Arc;

use partial_snapshot::activeset::{CasActiveSet, CollectActiveSet};
use partial_snapshot::bench::ImplKind;
use partial_snapshot::lincheck::{OpResult, Operation, SnapshotSpec};
use partial_snapshot::shmem::ProcessId;
use partial_snapshot::snapshot::{CasPartialSnapshot, PartialSnapshot, RegisterPartialSnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const M: usize = 12;
const N: usize = 4;

fn all_impls() -> Vec<Arc<dyn PartialSnapshot<u64>>> {
    let mut impls: Vec<Arc<dyn PartialSnapshot<u64>>> = ImplKind::ALL
        .iter()
        .map(|kind| kind.build(M, N, 0))
        .collect();
    // Ablation instantiations not registered as kinds of their own.
    impls.push(Arc::new(RegisterPartialSnapshot::with_active_set(
        M,
        N,
        0u64,
        CasActiveSet::new(),
    )));
    impls.push(Arc::new(CasPartialSnapshot::with_active_set(
        M,
        N,
        0u64,
        CollectActiveSet::new(N),
    )));
    impls
}

/// Generates a deterministic sequential mixed workload of single updates,
/// batched updates (with deliberate duplicate components, exercising the
/// last-write-wins contract) and scans.
fn random_ops(seed: u64, len: usize) -> Vec<Operation> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| {
            let kind = rng.gen_range(0..10u32);
            if kind < 4 {
                Operation::Update {
                    component: rng.gen_range(0..M),
                    value: (i as u64 + 1) * 7,
                }
            } else if kind < 7 {
                let width = rng.gen_range(2..=5usize);
                let writes: Vec<(usize, u64)> = (0..width)
                    .map(|j| (rng.gen_range(0..M), (i as u64 + 1) * 7 + j as u64))
                    .collect();
                Operation::BatchUpdate { writes }
            } else {
                let r = rng.gen_range(1..=M);
                let mut comps: Vec<usize> = (0..M).collect();
                use rand::seq::SliceRandom;
                comps.shuffle(&mut rng);
                comps.truncate(r);
                Operation::Scan { components: comps }
            }
        })
        .collect()
}

#[test]
fn every_implementation_matches_the_sequential_spec() {
    for seed in 0..8u64 {
        let ops = random_ops(seed, 120);
        for snapshot in all_impls() {
            let spec = SnapshotSpec::new(M, 0);
            let mut model = spec.initial_state();
            for (i, op) in ops.iter().enumerate() {
                let expected = spec.apply(&mut model, op);
                match op {
                    Operation::Update { component, value } => {
                        snapshot.update(ProcessId(0), *component, *value);
                        assert_eq!(expected, OpResult::Ack);
                    }
                    Operation::BatchUpdate { writes } => {
                        snapshot.update_many(ProcessId(0), writes);
                        assert_eq!(expected, OpResult::Ack);
                    }
                    Operation::Scan { components } => {
                        let got = snapshot.scan(ProcessId(1), components);
                        assert_eq!(
                            OpResult::Values(got),
                            expected,
                            "{}: op {i} of seed {seed} diverged from the spec",
                            snapshot.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn all_implementations_agree_with_each_other() {
    let ops = random_ops(0xC0FFEE, 200);
    let impls = all_impls();
    let mut transcripts: Vec<Vec<Vec<u64>>> = Vec::new();
    for snapshot in &impls {
        let mut scans = Vec::new();
        for op in &ops {
            match op {
                Operation::Update { component, value } => {
                    snapshot.update(ProcessId(0), *component, *value)
                }
                Operation::BatchUpdate { writes } => snapshot.update_many(ProcessId(0), writes),
                Operation::Scan { components } => {
                    scans.push(snapshot.scan(ProcessId(1), components))
                }
            }
        }
        transcripts.push(scans);
    }
    for (i, t) in transcripts.iter().enumerate().skip(1) {
        assert_eq!(
            t,
            &transcripts[0],
            "{} disagrees with {}",
            impls[i].name(),
            impls[0].name()
        );
    }
}

#[test]
fn scan_all_equals_scanning_each_component() {
    for snapshot in all_impls() {
        for c in 0..M {
            snapshot.update(ProcessId(0), c, (c as u64 + 1) * 11);
        }
        let full = snapshot.scan_all(ProcessId(1));
        let individual: Vec<u64> = (0..M)
            .map(|c| snapshot.scan(ProcessId(1), &[c])[0])
            .collect();
        assert_eq!(full, individual, "{}", snapshot.name());
        assert_eq!(full, (1..=M as u64).map(|x| x * 11).collect::<Vec<_>>());
    }
}

#[test]
fn implementations_report_their_wait_freedom_correctly() {
    // Figures 1 and 3 (in every active-set instantiation) and the classic
    // full snapshot are wait-free; the double collect and the lock are not;
    // multi-shard compositions are blocking (their coordinated cross-shard
    // fallback waits on in-flight updates) and must say so. Assert per kind
    // so the list stays in sync with ImplKind::ALL automatically.
    for kind in ImplKind::ALL {
        let expected = match kind {
            ImplKind::DoubleCollect | ImplKind::Lock => false,
            ImplKind::Sharded { shards, .. } => shards.clamp(1, M) == 1,
            _ => true,
        };
        assert_eq!(
            kind.build(M, N, 0).is_wait_free(),
            expected,
            "{}",
            kind.label()
        );
    }
    // A degenerate 1-shard composition inherits the inner guarantee — from a
    // wait-free inner and from a blocking inner alike.
    let single_cas = ImplKind::Sharded {
        inner: &ImplKind::Cas,
        shards: 1,
        partition: partial_snapshot::shard::Partition::Contiguous,
    };
    assert!(single_cas.build(M, N, 0).is_wait_free());
    let single_lock = ImplKind::Sharded {
        inner: &ImplKind::Lock,
        shards: 1,
        partition: partial_snapshot::shard::Partition::Contiguous,
    };
    assert!(!single_lock.build(M, N, 0).is_wait_free());
}

#[test]
fn metadata_is_consistent() {
    for snapshot in all_impls() {
        assert_eq!(snapshot.components(), M);
        assert_eq!(snapshot.max_processes(), N);
        assert!(!snapshot.name().is_empty());
    }
}
