//! Specification tests for the active set abstraction, run against both
//! implementations under identical concurrent loads (with chaos enabled on
//! the member threads to widen the join/leave race windows).
//!
//! The active-set specification (Section 2.1 of the paper):
//! * a `getSet` contains every process that was active (join completed, leave
//!   not yet invoked) for the whole duration of the `getSet`;
//! * it contains no process that was inactive (leave completed, or never
//!   joined) for the whole duration;
//! * processes that are joining or leaving concurrently may appear or not.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use partial_snapshot::activeset::{ActiveSet, CasActiveSet, CollectActiveSet};
use partial_snapshot::shmem::chaos::{self, ChaosConfig};
use partial_snapshot::shmem::ProcessId;

/// Drives `set` with `workers` churning threads while the main thread checks
/// every `getSet` against a ground-truth state log.
fn check_spec_under_churn<A: ActiveSet + 'static>(set: Arc<A>, workers: usize, queries: usize) {
    let clock = Arc::new(AtomicU64::new(1));
    // state[p] = (joined_at, leaving_at): joined_at > leaving_at means the
    // process believes it is active. joined_at is stamped after join returns,
    // leaving_at is stamped before leave is invoked.
    let state: Arc<Vec<(AtomicU64, AtomicU64)>> = Arc::new(
        (0..workers)
            .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
            .collect(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for pid in 0..workers {
        let set = Arc::clone(&set);
        let clock = Arc::clone(&clock);
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let _chaos = chaos::enable(pid as u64 * 7 + 3, ChaosConfig::aggressive());
            while !stop.load(Ordering::Relaxed) {
                let ticket = set.join(ProcessId(pid));
                state[pid]
                    .0
                    .store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
                for _ in 0..10 {
                    std::hint::spin_loop();
                }
                state[pid]
                    .1
                    .store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
                set.leave(ProcessId(pid), ticket);
            }
        }));
    }

    for _ in 0..queries {
        let start_ts = clock.fetch_add(1, Ordering::SeqCst);
        let before: Vec<(u64, u64)> = (0..workers)
            .map(|p| {
                (
                    state[p].0.load(Ordering::SeqCst),
                    state[p].1.load(Ordering::SeqCst),
                )
            })
            .collect();
        let members = set.get_set();
        let after: Vec<(u64, u64)> = (0..workers)
            .map(|p| {
                (
                    state[p].0.load(Ordering::SeqCst),
                    state[p].1.load(Ordering::SeqCst),
                )
            })
            .collect();
        for p in 0..workers {
            let (joined, leaving) = before[p];
            // The worker's state did not change across the whole getSet and it
            // had completed a join (with no leave begun) before the getSet
            // started: it was active throughout, so it must be reported.
            if before[p] == after[p] && joined > leaving && joined < start_ts {
                assert!(
                    members.contains(&ProcessId(p)),
                    "{}: active process p{p} missing from getSet",
                    set.name()
                );
            }
        }
        for m in &members {
            assert!(
                m.index() < workers && state[m.index()].0.load(Ordering::SeqCst) > 0,
                "{}: getSet reported a process that never joined",
                set.name()
            );
        }
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn figure2_active_set_satisfies_the_spec_under_chaotic_churn() {
    check_spec_under_churn(Arc::new(CasActiveSet::new()), 4, 1500);
}

#[test]
fn collect_active_set_satisfies_the_spec_under_chaotic_churn() {
    check_spec_under_churn(Arc::new(CollectActiveSet::new(4)), 4, 1500);
}

/// After any amount of churn, a quiescent getSet must be exact: it reports all
/// still-active processes and nothing else, for both implementations.
#[test]
fn quiescent_getset_is_exact_after_heavy_churn() {
    let cas = CasActiveSet::new();
    let collect = CollectActiveSet::new(8);
    let sets: [&dyn ActiveSet; 2] = [&cas, &collect];
    for set in sets {
        // live[p] holds the current ticket of process p, if it is a member.
        let mut live: Vec<Option<partial_snapshot::activeset::JoinTicket>> = vec![None; 8];
        for round in 0..500usize {
            let pid = round % 8;
            match live[pid].take() {
                Some(ticket) => set.leave(ProcessId(pid), ticket),
                None => {
                    let ticket = set.join(ProcessId(pid));
                    if round % 3 == 0 {
                        // Keep every third new membership alive.
                        live[pid] = Some(ticket);
                    } else {
                        set.leave(ProcessId(pid), ticket);
                    }
                }
            }
        }
        let expected: Vec<usize> = (0..8).filter(|&p| live[p].is_some()).collect();
        let got: Vec<usize> = set.get_set().into_iter().map(|p| p.index()).collect();
        assert_eq!(got, expected, "{}", set.name());
        for (p, slot) in live.iter_mut().enumerate() {
            if let Some(ticket) = slot.take() {
                set.leave(ProcessId(p), ticket);
            }
        }
        assert!(set.get_set().is_empty(), "{}", set.name());
    }
}
