//! Consistent progress checkpoints for a group of workers — the
//! "debugging distributed programs and storing checkpoints for data recovery"
//! use case mentioned in the paper's introduction.
//!
//! Each worker advances a per-stage progress counter stored in a partial
//! snapshot object (one component per worker per stage). A monitor thread
//! periodically takes a consistent partial snapshot of a *subset* of the
//! counters — only the stages it cares about — and checks a cross-worker
//! invariant that would be impossible to check reliably with plain reads: a
//! worker never starts stage 2 of an item before finishing stage 1 of it, so
//! in every consistent view `done_stage2 <= done_stage1` per worker.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example checkpoint_monitor
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use partial_snapshot::shmem::ProcessId;
use partial_snapshot::snapshot::{CasPartialSnapshot, PartialSnapshot};

const WORKERS: usize = 4;
const ITEMS: u64 = 20_000;

/// Component layout: worker w's stage-1 counter is component `2*w`, its
/// stage-2 counter is component `2*w + 1`.
fn stage1(worker: usize) -> usize {
    2 * worker
}
fn stage2(worker: usize) -> usize {
    2 * worker + 1
}

fn main() {
    let snapshot = Arc::new(CasPartialSnapshot::new(2 * WORKERS, WORKERS + 1, 0u64));

    // Workers: process items through stage 1 then stage 2, bumping the
    // matching counters. The pipeline keeps at most 3 items between stages.
    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let snapshot = Arc::clone(&snapshot);
        handles.push(std::thread::spawn(move || {
            let mut s1 = 0u64;
            let mut s2 = 0u64;
            while s2 < ITEMS {
                if s1 < ITEMS && s1 - s2 < 3 {
                    s1 += 1;
                    snapshot.update(ProcessId(w), stage1(w), s1);
                } else {
                    s2 += 1;
                    snapshot.update(ProcessId(w), stage2(w), s2);
                }
            }
        }));
    }

    // Monitor: checkpoint two workers at a time with a partial scan of their
    // four counters and verify the pipeline invariant on the consistent view.
    let stop = Arc::new(AtomicBool::new(false));
    let monitor = {
        let snapshot = Arc::clone(&snapshot);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut checkpoints = 0u64;
            let mut last_report = std::time::Instant::now();
            while !stop.load(Ordering::Relaxed) {
                for pair in 0..WORKERS / 2 {
                    let (a, b) = (2 * pair, 2 * pair + 1);
                    let comps = [stage1(a), stage2(a), stage1(b), stage2(b)];
                    let v = snapshot.scan(ProcessId(WORKERS), &comps);
                    // The invariant holds in every reachable state, so it must
                    // hold in every linearizable view.
                    assert!(
                        v[1] <= v[0] && v[3] <= v[2],
                        "inconsistent checkpoint observed: {comps:?} -> {v:?}"
                    );
                    assert!(
                        v[0] - v[1] <= 3 && v[2] - v[3] <= 3,
                        "pipeline depth exceeded"
                    );
                    checkpoints += 1;
                }
                if last_report.elapsed().as_millis() >= 200 {
                    let progress = snapshot.scan(ProcessId(WORKERS), &[stage2(0), stage2(1)]);
                    println!(
                        "checkpoints so far: {checkpoints}, worker progress sample: {progress:?}"
                    );
                    last_report = std::time::Instant::now();
                }
            }
            checkpoints
        })
    };

    for h in handles {
        h.join().expect("worker panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let checkpoints = monitor.join().expect("monitor panicked");

    let final_state = snapshot.scan_all(ProcessId(WORKERS));
    println!("final counters: {final_state:?}");
    for w in 0..WORKERS {
        assert_eq!(final_state[stage1(w)], ITEMS);
        assert_eq!(final_state[stage2(w)], ITEMS);
    }
    println!(
        "{checkpoints} consistent checkpoints taken while {WORKERS} workers processed \
         {ITEMS} items each — every checkpoint satisfied the pipeline invariant"
    );
}
