//! Quickstart for the observability layer (`psnap-obs`).
//!
//! One registry, every tier: the process-wide epoch/multiversion metrics,
//! the sharded store's scan-outcome counters and per-shard heat, and the
//! service frontend's queue gauges and latency histograms all register
//! their *live* handles into a single `Registry`, whose partition
//! invariants (`accepted == resolved`, `scans == backing + cache + empty`,
//! ...) are checked at the end. Trace collection — off by default, it is a
//! debugging tool, not a production tax — is switched on so the merged
//! timeline shows one coalesced scan end to end: queue pushes, the drain,
//! the coalesce, and the per-request serves. Span collection is switched
//! on too, so the flight recorder assembles one causal tree per request;
//! the example dumps a served scan's tree (queue wait → window → backing
//! scan → merge, with the time each stage ate) and shows the dump's
//! Chrome trace-event export.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example metrics_quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use partial_snapshot::obs::{self as obs, Registry, TraceKind};
use partial_snapshot::serve::{Coalescing, Executor, Freshness, ServiceConfig, SnapshotService};
use partial_snapshot::shard::{ShardConfig, ShardedSnapshot};
use partial_snapshot::shmem;
use partial_snapshot::snapshot::CasPartialSnapshot;

const M: usize = 64;
const SHARDS: usize = 4;
const WRITERS: usize = 2;
const READERS: usize = 4;
const OPS: usize = 200;

fn main() {
    // Tracing is opt-in; turn it on before the traffic of interest. Spans
    // are a second opt-in on top: begin/end events ride the same rings,
    // and completed trees land in the flight recorder.
    obs::set_trace_enabled(true);
    obs::set_span_enabled(true);

    let backing = Arc::new(ShardedSnapshot::with_factory(
        M,
        4,
        0u64,
        ShardConfig::contiguous(SHARDS),
        |_, shard_m, shard_n, init| CasPartialSnapshot::new(shard_m, shard_n, init),
    ));
    let executor = Executor::new(2);
    let service = SnapshotService::start(
        Arc::clone(&backing),
        ServiceConfig {
            coalescing: Coalescing::Window(Duration::from_micros(150)),
            ..ServiceConfig::default()
        },
        &executor,
    );

    // One registry, three tiers of live handles.
    let registry = Registry::global();
    shmem::metrics::register_metrics(registry);
    backing.register_obs(registry, "shard");
    service.register_obs(registry, "serve");

    // A periodic reporter samples the full ServiceObs while traffic runs.
    let reporter = service.spawn_stats_reporter(&executor, Duration::from_millis(5), |o| {
        eprintln!(
            "[reporter] ingest_depth={} scan_depth={} coalescing={:.2}x heat={:?}",
            o.ingest_depth, o.scan_depth, o.coalescing_ratio, o.shard_heat
        );
    });

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let client = service.client();
            scope.spawn(move || {
                for k in 0..OPS {
                    let component = (k * WRITERS + w) % M;
                    assert!(client.submit_blocking(component, k as u64 + 1));
                }
            });
        }
        for r in 0..READERS {
            let client = service.client();
            scope.spawn(move || {
                let window: Vec<usize> = (0..12).map(|i| (r * 5 + i * 3) % M).collect();
                for k in 0..OPS / 4 {
                    let freshness = if k % 4 == 0 {
                        Freshness::Fresh
                    } else {
                        Freshness::AtMostStale(Duration::from_millis(1))
                    };
                    client
                        .scan_blocking(&window, freshness)
                        .expect("service closed");
                }
            });
        }
    });
    reporter.stop();
    service.shutdown();

    // The text exposition: every family, one line per metric.
    println!("\n=== registry exposition ===");
    println!("{}", registry.dump_text());

    // At quiescence the declared partitions must balance exactly.
    registry.assert_invariants();
    println!("all partition invariants hold");

    // The merged timeline. Find one coalesced backing scan and show its
    // neighborhood: the queue pushes feeding it, the drain, the coalesce
    // and the serves it fanned out to.
    let timeline = obs::trace::drain_timeline();
    println!(
        "\n=== trace timeline: {} events ({} dropped to ring overflow) ===",
        timeline.events.len(),
        timeline.dropped
    );
    let best = timeline
        .events
        .iter()
        .position(|e| e.kind == TraceKind::Coalesce && e.a > 1);
    match best {
        Some(i) => {
            let lo = i.saturating_sub(6);
            let hi = (i + 6).min(timeline.events.len());
            println!("one coalesced scan, in context:");
            for event in &timeline.events[lo..hi] {
                let marker = if event.kind == TraceKind::Coalesce {
                    " <-- this backing scan answered several client scans"
                } else {
                    ""
                };
                println!("  {event}{marker}");
            }
        }
        None => println!("(no multi-request coalesce this run — try more readers)"),
    }

    // The span-tree dump: one served scan, as the flight recorder saw it —
    // the whole causal story of a single request, not a flat histogram.
    let trees = obs::flight::recent_trees();
    let served = trees
        .iter()
        .filter(|t| t.root().kind == obs::SpanKind::ScanRequest && t.root().b > 0)
        .max_by_key(|t| t.spans.len());
    println!(
        "\n=== span tree: one served scan ({} trees recorded) ===",
        trees.len()
    );
    match served {
        Some(tree) => {
            let root = tree.root();
            for span in &tree.spans {
                // Indent by causal depth (walk the parent chain).
                let mut depth = 0usize;
                let mut parent = span.parent;
                while parent != 0 {
                    depth += 1;
                    parent = tree
                        .spans
                        .iter()
                        .find(|s| s.id == parent)
                        .map_or(0, |s| s.parent);
                }
                println!(
                    "  {:indent$}{} {}µs (thread {}, +{}µs into the request)",
                    "",
                    span.kind.as_str(),
                    span.duration_ns() / 1000,
                    span.thread,
                    span.begin_ns.saturating_sub(root.begin_ns) / 1000,
                    indent = depth * 2,
                );
            }
            // Freeze the ring into a dump, exactly as an anomaly trigger
            // would, and show the Chrome trace export it carries.
            obs::flight::set_armed(true);
            let dump = obs::flight::trigger(
                obs::AnomalyKind::LatencySlo,
                "quickstart: manual freeze, no real anomaly".to_string(),
                Some(registry),
            )
            .expect("armed trigger returns a dump");
            obs::flight::set_armed(false);
            let chrome = dump.to_chrome_trace();
            let events = chrome
                .get("traceEvents")
                .and_then(|e| e.as_array())
                .unwrap();
            println!(
                "flight dump: {} trees, {} Chrome trace events — pipe \
                 `dump.to_chrome_trace().to_string_pretty()` into a file and \
                 load it in chrome://tracing or Perfetto",
                dump.trees.len(),
                events.len(),
            );
        }
        None => println!("(no served scan tree captured this run)"),
    }
    obs::set_span_enabled(false);

    let obs_snapshot = service.obs();
    println!(
        "\nscan latency p50={}ns p99={}ns over {} scans; coalescing {:.2}x",
        obs_snapshot.stats.scan_latency.p50,
        obs_snapshot.stats.scan_latency.p99,
        obs_snapshot.stats.scan_latency.count,
        obs_snapshot.coalescing_ratio,
    );
    println!("done");
}
