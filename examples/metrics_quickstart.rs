//! Quickstart for the observability layer (`psnap-obs`).
//!
//! One registry, every tier: the process-wide epoch/multiversion metrics,
//! the sharded store's scan-outcome counters and per-shard heat, and the
//! service frontend's queue gauges and latency histograms all register
//! their *live* handles into a single `Registry`, whose partition
//! invariants (`accepted == resolved`, `scans == backing + cache + empty`,
//! ...) are checked at the end. Trace collection — off by default, it is a
//! debugging tool, not a production tax — is switched on so the merged
//! timeline shows one coalesced scan end to end: queue pushes, the drain,
//! the coalesce, and the per-request serves.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example metrics_quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use partial_snapshot::obs::{self as obs, Registry, TraceKind};
use partial_snapshot::serve::{Coalescing, Executor, Freshness, ServiceConfig, SnapshotService};
use partial_snapshot::shard::{ShardConfig, ShardedSnapshot};
use partial_snapshot::shmem;
use partial_snapshot::snapshot::CasPartialSnapshot;

const M: usize = 64;
const SHARDS: usize = 4;
const WRITERS: usize = 2;
const READERS: usize = 4;
const OPS: usize = 200;

fn main() {
    // Tracing is opt-in; turn it on before the traffic of interest.
    obs::set_trace_enabled(true);

    let backing = Arc::new(ShardedSnapshot::with_factory(
        M,
        4,
        0u64,
        ShardConfig::contiguous(SHARDS),
        |_, shard_m, shard_n, init| CasPartialSnapshot::new(shard_m, shard_n, init),
    ));
    let executor = Executor::new(2);
    let service = SnapshotService::start(
        Arc::clone(&backing),
        ServiceConfig {
            coalescing: Coalescing::Window(Duration::from_micros(150)),
            ..ServiceConfig::default()
        },
        &executor,
    );

    // One registry, three tiers of live handles.
    let registry = Registry::global();
    shmem::metrics::register_metrics(registry);
    backing.register_obs(registry, "shard");
    service.register_obs(registry, "serve");

    // A periodic reporter samples the full ServiceObs while traffic runs.
    let reporter = service.spawn_stats_reporter(&executor, Duration::from_millis(5), |o| {
        eprintln!(
            "[reporter] ingest_depth={} scan_depth={} coalescing={:.2}x heat={:?}",
            o.ingest_depth, o.scan_depth, o.coalescing_ratio, o.shard_heat
        );
    });

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let client = service.client();
            scope.spawn(move || {
                for k in 0..OPS {
                    let component = (k * WRITERS + w) % M;
                    assert!(client.submit_blocking(component, k as u64 + 1));
                }
            });
        }
        for r in 0..READERS {
            let client = service.client();
            scope.spawn(move || {
                let window: Vec<usize> = (0..12).map(|i| (r * 5 + i * 3) % M).collect();
                for k in 0..OPS / 4 {
                    let freshness = if k % 4 == 0 {
                        Freshness::Fresh
                    } else {
                        Freshness::AtMostStale(Duration::from_millis(1))
                    };
                    client
                        .scan_blocking(&window, freshness)
                        .expect("service closed");
                }
            });
        }
    });
    reporter.stop();
    service.shutdown();

    // The text exposition: every family, one line per metric.
    println!("\n=== registry exposition ===");
    println!("{}", registry.dump_text());

    // At quiescence the declared partitions must balance exactly.
    registry.assert_invariants();
    println!("all partition invariants hold");

    // The merged timeline. Find one coalesced backing scan and show its
    // neighborhood: the queue pushes feeding it, the drain, the coalesce
    // and the serves it fanned out to.
    let timeline = obs::trace::drain_timeline();
    println!(
        "\n=== trace timeline: {} events ({} dropped to ring overflow) ===",
        timeline.events.len(),
        timeline.dropped
    );
    let best = timeline
        .events
        .iter()
        .position(|e| e.kind == TraceKind::Coalesce && e.a > 1);
    match best {
        Some(i) => {
            let lo = i.saturating_sub(6);
            let hi = (i + 6).min(timeline.events.len());
            println!("one coalesced scan, in context:");
            for event in &timeline.events[lo..hi] {
                let marker = if event.kind == TraceKind::Coalesce {
                    " <-- this backing scan answered several client scans"
                } else {
                    ""
                };
                println!("  {event}{marker}");
            }
        }
        None => println!("(no multi-request coalesce this run — try more readers)"),
    }

    let obs_snapshot = service.obs();
    println!(
        "\nscan latency p50={}ns p99={}ns over {} scans; coalescing {:.2}x",
        obs_snapshot.stats.scan_latency.p50,
        obs_snapshot.stats.scan_latency.p99,
        obs_snapshot.stats.scan_latency.count,
        obs_snapshot.coalescing_ratio,
    );
    println!("done");
}
