//! Quickstart: create a partial snapshot object, update it from several
//! threads and take consistent partial scans.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use std::thread;

use partial_snapshot::shmem::ProcessId;
use partial_snapshot::snapshot::{CasPartialSnapshot, PartialSnapshot};

fn main() {
    // A partial snapshot object with 64 components, usable by up to 5
    // processes, every component initially 0. This is the paper's Figure 3
    // algorithm: compare&swap components plus the Figure 2 active set.
    let snapshot = Arc::new(CasPartialSnapshot::new(64, 5, 0u64));

    // Four updater threads, each owning a disjoint block of 16 components,
    // repeatedly write increasing values.
    let mut handles = Vec::new();
    for t in 0..4usize {
        let snapshot = Arc::clone(&snapshot);
        handles.push(thread::spawn(move || {
            for round in 1..=1000u64 {
                for c in (t * 16)..(t * 16 + 16) {
                    snapshot.update(ProcessId(t), c, round * 10 + t as u64);
                }
            }
        }));
    }

    // Meanwhile, this thread (process 4) takes partial scans of a few
    // components scattered across the blocks. Each scan is atomic: the values
    // it returns all existed in the object at a single point in time during
    // the scan.
    let watched = [3usize, 19, 35, 51];
    for i in 0..10 {
        let values = snapshot.scan(ProcessId(4), &watched);
        println!("scan #{i}: {watched:?} -> {values:?}");
    }

    for h in handles {
        h.join().expect("updater panicked");
    }

    // A final scan sees the last value written to each watched component.
    let final_values = snapshot.scan(ProcessId(4), &watched);
    println!("final:   {watched:?} -> {final_values:?}");
    for (c, v) in watched.iter().zip(final_values.iter()) {
        let owner = c / 16;
        assert_eq!(
            *v,
            10_000 + owner as u64,
            "component {c} has an unexpected final value"
        );
    }
    println!("quickstart finished: all final values are the last writes of their owners");
}
