//! Quickstart for the wire transport (`psnap-wire`).
//!
//! `service_quickstart` keeps every client in the server's address space;
//! this example moves them to the other end of a socket. A `WireServer`
//! hosts the same `SnapshotService` over loopback TCP — length-prefixed
//! JSON frames, one ingestion queue per connection — and
//! `RemoteClientHandle` mirrors the in-process `ClientHandle` API:
//! `submit`/`scan` return tickets, backpressure surfaces as
//! `WireError::Busy`, and `close` half-closes the connection so in-flight
//! replies still drain. Writers here cork their connection and flush in
//! batches, which is how a pipelining client amortizes syscalls.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example wire_quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use partial_snapshot::serve::{Coalescing, Executor, Freshness, ServiceConfig, SnapshotService};
use partial_snapshot::snapshot::CasPartialSnapshot;
use partial_snapshot::wire::{RemoteClientHandle, WireError, WireServer, WireServerConfig};

const M: usize = 128; // instruments
const WRITERS: usize = 2;
const READERS: usize = 4;
const OPS: usize = 300;
const FLUSH_EVERY: usize = 8;

fn main() {
    let executor = Executor::new(2);
    let service = Arc::new(SnapshotService::start(
        CasPartialSnapshot::new(M, 2, 1_000u64),
        ServiceConfig {
            coalescing: Coalescing::Window(Duration::from_micros(100)),
            ..ServiceConfig::default()
        },
        &executor,
    ));

    // Bind on an ephemeral port; a real deployment would pass a fixed
    // address (or a unix socket path via `serve_unix`).
    let server = WireServer::serve_tcp(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig::default(),
        &executor,
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("tcp server has an address");
    println!("serving on {addr}");

    std::thread::scope(|scope| {
        // Writers pipeline: cork the connection, issue a batch of
        // submissions, flush once, then wait the batch's tickets. Busy is
        // the wire spelling of the service's backpressure — back off and
        // resubmit.
        for w in 0..WRITERS {
            scope.spawn(move || {
                let client = RemoteClientHandle::connect_tcp(addr).expect("connect writer");
                client.set_corked(true).expect("cork");
                let mut tickets = Vec::with_capacity(FLUSH_EVERY);
                for k in 0..OPS {
                    let instrument = (k * WRITERS + w) % M;
                    let value = 1_000 + k as u64;
                    loop {
                        match client.submit(instrument, value) {
                            Ok(t) => {
                                tickets.push(t);
                                break;
                            }
                            Err(WireError::Busy) => std::thread::yield_now(),
                            Err(e) => panic!("writer {w}: {e}"),
                        }
                    }
                    if tickets.len() == FLUSH_EVERY || k + 1 == OPS {
                        client.flush().expect("flush");
                        for t in tickets.drain(..) {
                            match t.wait() {
                                Ok(()) | Err(WireError::Busy) => {}
                                Err(e) => panic!("writer {w}: {e}"),
                            }
                        }
                    }
                }
                client.close(); // half-close: replies already drained
            });
        }
        // Readers value small portfolios, accepting slightly stale answers
        // so requests coalesce into shared backing scans server-side. The
        // blocking wrappers are the simple non-pipelined call shape.
        for r in 0..READERS {
            scope.spawn(move || {
                let client = RemoteClientHandle::connect_tcp(addr).expect("connect reader");
                let portfolio: Vec<usize> = (0..6).map(|i| (r * 5 + i * 3) % M).collect();
                let mut sum = 0u64;
                for k in 0..OPS {
                    let freshness = if k % 4 == 0 {
                        Freshness::Fresh
                    } else {
                        Freshness::AtMostStale(Duration::from_millis(1))
                    };
                    match client.scan_blocking(portfolio.clone(), freshness) {
                        Ok(values) => sum += values.iter().sum::<u64>(),
                        Err(WireError::Busy) => std::thread::yield_now(),
                        Err(e) => panic!("reader {r}: {e}"),
                    }
                }
                println!("reader {r}: portfolio sum {sum}");
                client.close();
            });
        }
    });

    // Stats travel over the same wire as data ops.
    let client = RemoteClientHandle::connect_tcp(addr).expect("connect stats");
    let stats = client.stats().expect("stats");
    println!("service stats: {}", stats.to_string_compact());
    client.close();

    // Graceful drain: stop accepting, sever idle connections, wait for
    // in-flight replies, then stop the service itself.
    server.shutdown(Duration::from_secs(5));
    service.shutdown();
    println!("drained and shut down");
}
