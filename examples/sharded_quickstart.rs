//! Quickstart for the sharded partial snapshot store (`psnap-shard`).
//!
//! A `ShardedSnapshot` partitions the component space over independent inner
//! partial snapshot instances: updates to different shards never contend,
//! multiplying update throughput, while scans that span shards are validated
//! with per-shard epoch counters so they stay atomic. This example runs the
//! same transfer workload against the unsharded Figure 3 object and a
//! sharded one, demonstrating (a) identical consistency guarantees across
//! shard boundaries and (b) the coordination statistics of the scan paths.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sharded_quickstart
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use partial_snapshot::shard::{ShardConfig, ShardedSnapshot};
use partial_snapshot::shmem::ProcessId;
use partial_snapshot::snapshot::{CasPartialSnapshot, PartialSnapshot};

const M: usize = 256; // components (accounts)
const SHARDS: usize = 8;
const UPDATERS: usize = 4;
const BALANCE: u64 = 10_000;

/// Runs `UPDATERS` transfer threads against `snapshot` for a fixed number of
/// rounds and returns (updates/sec, scans checked). Transfers move value
/// between two accounts on different shards while a scanner keeps verifying,
/// with one atomic cross-shard partial scan per check, that no money is
/// created or destroyed.
fn run(snapshot: Arc<dyn PartialSnapshot<u64>>, label: &str) {
    // Every account starts with the same balance; each updater owns a
    // disjoint slice of accounts and moves value between the two halves of
    // its slice, preserving its slice's total.
    for c in 0..M {
        snapshot.update(ProcessId(0), c, BALANCE);
    }
    let per = M / UPDATERS;
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = (0..UPDATERS)
        .map(|u| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let lo = u * per;
                let mut ops = 0u64;
                let mut offset = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    // Move 100 from the first to the last account of the
                    // slice, then back — the pair straddles shards.
                    let delta = if offset == 0 { 100 } else { -100 };
                    offset += delta;
                    snapshot.update(ProcessId(u), lo, (BALANCE as i64 - offset) as u64);
                    snapshot.update(ProcessId(u), lo + per - 1, (BALANCE as i64 + offset) as u64);
                    ops += 2;
                }
                ops
            })
        })
        .collect();

    // The auditor: cross-shard partial scans of each updater's (first, last)
    // pair must always sum to 2 × BALANCE, ± one in-flight transfer.
    let mut audits = 0u64;
    for round in 0..5_000u64 {
        let u = (round as usize) % UPDATERS;
        let pair = [u * per, u * per + per - 1];
        let values = snapshot.scan(ProcessId(UPDATERS), &pair);
        let total = values[0] + values[1];
        assert!(
            (2 * BALANCE - 100..=2 * BALANCE + 100).contains(&total),
            "torn audit: {values:?}"
        );
        audits += 1;
    }
    stop.store(true, Ordering::Relaxed);
    let total_updates: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = started.elapsed();
    println!(
        "{label:>12}: {:>8.0} kupdates/s, {audits} audits all consistent ({:.2}s)",
        total_updates as f64 / elapsed.as_secs_f64() / 1000.0,
        elapsed.as_secs_f64(),
    );
}

fn main() {
    println!(
        "transfer workload: {UPDATERS} updaters over {M} accounts, auditor scanning \
         cross-shard pairs\n"
    );

    run(
        Arc::new(CasPartialSnapshot::new(M, UPDATERS + 1, 0u64)),
        "unsharded",
    );

    let sharded = Arc::new(ShardedSnapshot::with_factory(
        M,
        UPDATERS + 1,
        0u64,
        ShardConfig::contiguous(SHARDS),
        |_, m, n, init| CasPartialSnapshot::new(m, n, init),
    ));
    let stats_handle = Arc::clone(&sharded);
    run(sharded, "sharded-k8");

    let stats = stats_handle.coordination_stats();
    println!(
        "\nsharded scan paths: {} clean cross-shard scans, {} optimistic retries, \
         {} coordinated scans",
        stats.clean_scans, stats.optimistic_retries, stats.coordinated_scans
    );
    println!(
        "(single-shard scans take the local fast path and appear in no counter — \
         locality is free)"
    );
}
