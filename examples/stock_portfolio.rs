//! The stock-portfolio scenario from the paper's introduction.
//!
//! A market of stocks is stored in a partial snapshot object, one component
//! per stock. An updater thread continuously transfers value between stocks
//! of the same portfolio, so the *true* value of the portfolio never changes
//! by more than one in-flight transfer. Pricing the portfolio naively — by
//! reading the stocks one by one — observes phantom gains and losses; pricing
//! it with a partial scan never does, and the scan touches only the
//! portfolio's holdings, not the whole market.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example stock_portfolio
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use partial_snapshot::shmem::ProcessId;
use partial_snapshot::snapshot::{CasPartialSnapshot, PartialSnapshot};
use partial_snapshot::workloads::{Market, MarketConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let config = MarketConfig {
        stocks: 1024,
        initial_price: 10_000,
        portfolios: 16,
        holdings_per_portfolio: 8,
        ..Default::default()
    };
    let market = Market::generate(config.clone(), 2008);
    let portfolio = market.portfolios[0].clone();
    let holdings = portfolio.components();
    println!(
        "market of {} stocks; valuing a portfolio of {} holdings: {:?}",
        config.stocks,
        holdings.len(),
        holdings
    );

    // One component per stock; process 0 updates, 1 and 2 price the portfolio.
    let snapshot = Arc::new(CasPartialSnapshot::new(
        config.stocks,
        3,
        config.initial_price,
    ));
    let true_total = config.initial_price * holdings.len() as u64;
    let delta = 100u64;

    // Updater: transfer `delta` cents between two random holdings of the
    // portfolio, one component update at a time.
    let stop = Arc::new(AtomicBool::new(false));
    let updater = {
        let snapshot = Arc::clone(&snapshot);
        let holdings = holdings.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(7);
            let mut offset = vec![0i64; holdings.len()];
            let initial = config.initial_price as i64;
            while !stop.load(Ordering::Relaxed) {
                let a = rng.gen_range(0..holdings.len());
                let mut b = rng.gen_range(0..holdings.len());
                while b == a {
                    b = rng.gen_range(0..holdings.len());
                }
                // Never drive a price to zero: that would break the invariant.
                if initial + offset[a] - (delta as i64) < 1 {
                    continue;
                }
                offset[a] -= delta as i64;
                snapshot.update(ProcessId(0), holdings[a], (initial + offset[a]) as u64);
                offset[b] += delta as i64;
                snapshot.update(ProcessId(0), holdings[b], (initial + offset[b]) as u64);
            }
        })
    };

    // Value the portfolio 2000 times with each method and count how often the
    // result falls outside the band [true_total - delta, true_total + delta],
    // which the true value never leaves.
    let lo = true_total - delta;
    let hi = true_total + delta;
    let valuations = 2000;
    let mut naive_violations = 0usize;
    let mut scan_violations = 0usize;
    for _ in 0..valuations {
        // Naive: read each stock on its own, exactly "checking the value of
        // each stock one by one" as in the paper's introduction.
        let mut naive_total = 0u64;
        for &stock in &holdings {
            naive_total += snapshot.scan(ProcessId(1), &[stock])[0];
            std::thread::yield_now();
        }
        if naive_total < lo || naive_total > hi {
            naive_violations += 1;
        }

        // Consistent: a single partial scan of the holdings.
        let prices = snapshot.scan(ProcessId(2), &holdings);
        let scan_total: u64 = prices.iter().sum();
        if scan_total < lo || scan_total > hi {
            scan_violations += 1;
        }
    }
    stop.store(true, Ordering::Relaxed);
    updater.join().expect("updater panicked");

    println!("true portfolio value: {true_total} cents (±{delta} in-flight)");
    println!("valuations per method: {valuations}");
    println!("  naive one-by-one reads outside the band: {naive_violations}");
    println!("  partial-scan valuations outside the band: {scan_violations}");
    assert_eq!(
        scan_violations, 0,
        "a linearizable partial scan can never observe a torn portfolio"
    );
    println!("partial scans were consistent every single time");
}
