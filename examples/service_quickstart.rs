//! Quickstart for the async service frontend (`psnap-serve`).
//!
//! Instead of owning a thread and calling `PartialSnapshot` in-process,
//! clients hold a handle to a `SnapshotService`: submitted writes flow
//! through bounded ingestion queues into coalesced `update_many` batches,
//! and concurrent partial-scan requests are merged into one backing scan
//! whose results fan back out per request. This example runs a small
//! "market data" service: a few writer clients stream price updates, many
//! reader clients request overlapping portfolio valuations, and the service
//! stats show the coalescing at work.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example service_quickstart
//! ```

use std::time::Duration;

use partial_snapshot::serve::{Coalescing, Executor, Freshness, ServiceConfig, SnapshotService};
use partial_snapshot::snapshot::CasPartialSnapshot;

const M: usize = 128; // instruments
const WRITERS: usize = 2;
const READERS: usize = 6;
const OPS: usize = 400;

fn main() {
    let executor = Executor::new(2);
    let service = SnapshotService::start(
        CasPartialSnapshot::new(M, 2, 1_000u64),
        ServiceConfig {
            coalescing: Coalescing::Window(Duration::from_micros(100)),
            ..ServiceConfig::default()
        },
        &executor,
    );

    std::thread::scope(|scope| {
        // Writers stream price moves; backpressure (Busy) is handled by the
        // blocking convenience wrapper.
        for w in 0..WRITERS {
            let client = service.client();
            scope.spawn(move || {
                for k in 0..OPS {
                    let instrument = (k * WRITERS + w) % M;
                    assert!(client.submit_blocking(instrument, 1_000 + k as u64));
                }
            });
        }
        // Readers value overlapping "portfolios" — the requests coalesce
        // into shared backing scans. A strict freshness bound would force
        // a fresh scan; readers here accept answers up to 1 ms old, so many
        // are served straight from the last union scan.
        for r in 0..READERS {
            let client = service.client();
            scope.spawn(move || {
                let portfolio: Vec<usize> = (0..8).map(|i| (r * 4 + i * 3) % M).collect();
                for k in 0..OPS {
                    let freshness = if k % 4 == 0 {
                        Freshness::Fresh
                    } else {
                        Freshness::AtMostStale(Duration::from_millis(1))
                    };
                    let values = client
                        .scan_blocking(&portfolio, freshness)
                        .expect("service closed");
                    let total: u64 = values.iter().sum();
                    assert!(total >= 8 * 1_000, "a valuation can never shrink here");
                }
            });
        }
    });

    let stats = service.stats();
    println!("service stats after the run:");
    println!(
        "  submits: {} accepted, {} busy-rejected, {} update_many batches, \
         {} writes applied ({} coalesced away)",
        stats.submits_ok,
        stats.submits_busy,
        stats.batches_applied,
        stats.writes_applied,
        stats.writes_coalesced_away,
    );
    println!(
        "  scans: {} served ({} from cache), {} backing scans -> {:.2} client \
         scans per backing scan, {:.2}x component dedup",
        stats.scans_served_backing + stats.scans_served_cache,
        stats.scans_served_cache,
        stats.backing_scans,
        stats.coalescing_ratio(),
        stats.component_dedup_ratio(),
    );
    println!(
        "  latency: submit mean {:.1} µs, scan mean {:.1} µs",
        stats.mean_submit_latency_ns() / 1000.0,
        stats.mean_scan_latency_ns() / 1000.0,
    );
    assert!(
        stats.coalescing_ratio() >= 1.0,
        "overlapping reader load must coalesce"
    );
    service.shutdown();
    println!("done: every ticket resolved, service drained cleanly");
}
