//! The active set abstraction on its own (the paper's Figure 2 algorithm).
//!
//! Worker threads register themselves in an active set while they hold a
//! piece of work in flight; a coordinator thread periodically asks "who is
//! currently busy?" with `getSet`. The demo also prints the step counts that
//! Theorem 2 is about: `join`/`leave` are constant, and the cost of `getSet`
//! tracks the number of concurrently active workers rather than the total
//! number of joins performed so far.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example active_set_demo
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use partial_snapshot::activeset::{ActiveSet, CasActiveSet};
use partial_snapshot::shmem::{ProcessId, StepScope};

fn main() {
    let set = Arc::new(CasActiveSet::new());
    let stop = Arc::new(AtomicBool::new(false));

    // Worker threads: join, pretend to work for a moment, leave, repeat.
    const WORKERS: usize = 6;
    let mut handles = Vec::new();
    for pid in 1..=WORKERS {
        let set = Arc::clone(&set);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut joins = 0u64;
            let mut join_steps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let scope = StepScope::start();
                let ticket = set.join(ProcessId(pid));
                join_steps += scope.finish().total();
                joins += 1;
                // "work"
                for _ in 0..200 {
                    std::hint::spin_loop();
                }
                set.leave(ProcessId(pid), ticket);
            }
            (joins, join_steps)
        }));
    }

    // Coordinator: sample the membership a few times.
    for round in 1..=10 {
        let scope = StepScope::start();
        let members = set.get_set();
        let steps = scope.finish().total();
        println!(
            "round {round:2}: {:2} workers busy, getSet cost = {steps:3} steps, \
             skip list holds {} interval(s), {} slots handed out so far",
            members.len(),
            set.skip_interval_count(),
            set.slots_allocated()
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    stop.store(true, Ordering::Relaxed);
    let mut total_joins = 0u64;
    let mut total_join_steps = 0u64;
    for h in handles {
        let (joins, steps) = h.join().expect("worker panicked");
        total_joins += joins;
        total_join_steps += steps;
    }
    println!(
        "{total_joins} joins performed, average join cost = {:.2} steps \
         (Theorem 2: exactly 2 — one fetch&increment plus one write)",
        total_join_steps as f64 / total_joins as f64
    );
    assert_eq!(total_join_steps, 2 * total_joins);
    println!("every join cost exactly 2 base-object steps, as the paper promises");
}
