//! Sequence helpers (`SliceRandom`).

use crate::distributions::SampleRange;
use crate::RngCore;

/// Shuffling and random selection on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_from(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_from(rng)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle virtually never is identity"
        );
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = StdRng::seed_from_u64(22);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}
