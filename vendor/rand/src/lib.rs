//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! This workspace builds in hermetic environments with no access to crates.io,
//! so the handful of `rand` features the reproduction uses are provided here:
//! seedable deterministic generators ([`rngs::StdRng`], [`rngs::SmallRng`]),
//! the [`Rng`] convenience methods `gen_range` / `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — high quality for simulation purposes, deterministic per seed,
//! and explicitly **not** cryptographic.
//!
//! Only the API surface the workspace actually exercises is implemented; the
//! sampling helpers live in [`distributions`] (sample-range plumbing) exactly
//! far enough to keep call sites source-compatible with real `rand` 0.8.

#![warn(rust_2018_idioms)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::SampleRange;

/// Low-level generator interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        // 53 random mantissa bits give a uniform float in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a 64-bit seed, mirroring
/// `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: expands a 64-bit seed into a stream of well-mixed words (used
/// to key xoshiro, as its authors recommend).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let x = rng.gen_range(0..8usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear");
        for _ in 0..1000 {
            let x = rng.gen_range(3..=5u64);
            assert!((3..=5).contains(&x));
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1800..3200).contains(&hits), "saw {hits} hits of ~2500");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
