//! Uniform sampling from ranges (the plumbing behind `Rng::gen_range`).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A range that can produce a uniformly distributed sample of type `T`.
pub trait SampleRange<T> {
    /// Draws one sample. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by 128-bit multiply (Lemire's method,
/// without the rejection step: the bias is < 2⁻⁶⁴ per draw, far below what a
/// simulation or workload generator can observe).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(bounded_u64(rng, span) as i64)) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                ((start as i64).wrapping_add(bounded_u64(rng, span + 1) as i64)) as $t
            }
        }
    )*};
}

signed_sample_range!(isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            match rng.gen_range(0..=1u32) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(12);
        assert_eq!(rng.gen_range(5..=5usize), 5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(13);
        let _ = rng.gen_range(3..3usize);
    }
}
