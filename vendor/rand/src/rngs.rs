//! Concrete generators: [`StdRng`] and [`SmallRng`].
//!
//! Both are xoshiro256++ instances here; real `rand` distinguishes them by
//! quality/speed trade-offs, but for deterministic simulation either is fine
//! and keeping them distinct types preserves source compatibility.

use crate::{splitmix64, RngCore, SeedableRng};

/// xoshiro256++ core state.
#[derive(Clone, Debug)]
pub(crate) struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // All-zero state is the one forbidden configuration.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The workspace's standard deterministic generator.
#[derive(Clone, Debug)]
pub struct StdRng(Xoshiro256);

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng(Xoshiro256::from_seed(state))
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next()
    }
}

/// A small, fast generator for per-thread perturbation (the chaos layer).
#[derive(Clone, Debug)]
pub struct SmallRng(Xoshiro256);

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // Domain-separate from StdRng so the same numeric seed produces
        // unrelated streams in the two generator types.
        SmallRng(Xoshiro256::from_seed(state ^ 0x5305_11E5_0DD5_EED5))
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_and_small_streams_differ() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = StdRng::seed_from_u64(0);
        let words: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
    }
}
