//! Vendored, dependency-free subset of the `criterion` API.
//!
//! The workspace builds hermetically (no crates.io access), so the benchmark
//! files are kept source-compatible with this small shim instead. It measures
//! honestly — warm-up phase, then timed batches over the configured
//! measurement window — and prints one `group/id: mean ns/iter` line per
//! benchmark, but it performs no statistical outlier analysis, produces no
//! HTML reports, and keeps no baselines. For regression tracking the
//! repository relies on the step-count experiment harness
//! (`psnap-bench`'s `harness` binary), which is deterministic; these
//! wall-clock benches are companions for human eyes.

#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (created by [`criterion_main!`]).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(500),
            throughput: None,
        }
    }
}

/// Per-benchmark throughput annotation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The measured body processes this many logical elements per iteration.
    Elements(u64),
    /// The measured body processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier of the form `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Accepted for source compatibility; the shim sizes runs by time, not by
    /// sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.into(), &mut f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut adapter = |b: &mut Bencher| f(b, input);
        self.run_one(&id.id, &mut adapter);
        self
    }

    fn run_one(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        let per_iter = bencher.mean_ns;
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!(" ({:.0} elem/s)", n as f64 * 1e9 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!(" ({:.0} B/s)", n as f64 * 1e9 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: {per_iter:.0} ns/iter over {} iters{extra}",
            self.name, bencher.iters
        );
    }

    /// Ends the group (printing happens per benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Times a closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `f`: runs it during the warm-up window, then repeatedly during
    /// the measurement window, and records the mean wall-clock time per call.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let end = start + self.measurement;
        while Instant::now() < end {
            black_box(f());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.iters = iters.max(1);
        self.mean_ns = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        assert!(calls > 0, "the measured closure must actually run");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("param", 42), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
