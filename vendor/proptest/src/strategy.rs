//! The [`Strategy`] trait and its combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe form of [`Strategy`], so heterogeneous strategies with a common
/// value type can live in one collection.
pub trait DynStrategy<V> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

impl<V: Clone + Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().generate_dyn(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V: Clone + Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.0.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestRng;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng(StdRng::seed_from_u64(99))
    }

    #[test]
    fn ranges_tuples_map_and_just() {
        let mut r = rng();
        for _ in 0..200 {
            let x = (0usize..7).generate(&mut r);
            assert!(x < 7);
            let (a, b) = ((1u64..=3), (10u32..20)).generate(&mut r);
            assert!((1..=3).contains(&a) && (10..20).contains(&b));
            let doubled = (0usize..5).prop_map(|v| v * 2).generate(&mut r);
            assert!(doubled % 2 == 0 && doubled < 10);
            assert_eq!(Just("x").generate(&mut r), "x");
        }
    }

    #[test]
    fn union_draws_from_every_option() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut r = rng();
        let draws: Vec<u8> = (0..100).map(|_| u.generate(&mut r)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }
}
