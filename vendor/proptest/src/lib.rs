//! Vendored, dependency-light subset of the `proptest` API.
//!
//! The workspace builds hermetically (no crates.io access), so the pieces of
//! proptest the test suites use are reimplemented here on top of the vendored
//! `rand` shim:
//!
//! * the [`Strategy`] trait with ranges, tuples, [`Just`], `prop_map`,
//!   [`collection::vec`] and [`collection::btree_set`];
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`), plus
//!   [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assume!`];
//! * a deterministic runner: each test derives its seed from the test name, so
//!   failures reproduce exactly across runs and machines.
//!
//! Differences from real proptest, by design: no shrinking (the failing input
//! is printed verbatim instead) and no persistence files. For the small,
//! structured inputs used by this workspace, printed counterexamples are
//! directly readable, so shrinking pays for little.

#![warn(rust_2018_idioms)]

use std::fmt::Debug;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Map, Strategy, Union};

/// The generator handed to strategies.
pub struct TestRng(pub(crate) StdRng);

impl TestRng {
    fn for_test(name: &str, seed: u64) -> TestRng {
        // FNV-1a over the test name, mixed with the base seed: deterministic
        // per test, independent across tests.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h ^ seed))
    }
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives one property test: generates `config.cases` inputs from `strategy`
/// and applies `test` to each. On panic, prints the offending input (no
/// shrinking) and re-raises. Used by the [`proptest!`] macro; not usually
/// called directly.
pub fn run_proptest<S: Strategy>(
    config: ProptestConfig,
    name: &str,
    strategy: S,
    mut test: impl FnMut(S::Value),
) {
    let mut rng = TestRng::for_test(name, 0x5EED_CAFE);
    for case in 0..config.cases {
        let input = strategy.generate(&mut rng);
        let shown = format!("{input:?}");
        let outcome = catch_unwind(AssertUnwindSafe(|| test(input)));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest {name}: case {case}/{} failed for input:\n  {shown}",
                config.cases
            );
            resume_unwind(panic);
        }
    }
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items carrying their own
/// attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; expands one `fn` item per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            $crate::run_proptest(
                $cfg,
                stringify!($name),
                ($($strat,)+),
                |($($arg,)+)| $body,
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Asserts inside a property test (alias of `assert!` — no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test (alias of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The usual glob import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, ProptestConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            (0usize..10).prop_map(|v| v * 2),
            Just(99usize),
        ]) {
            prop_assert!(x == 99 || (x % 2 == 0 && x < 20));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// Config block plus doc comment must parse.
        #[test]
        fn config_is_honored(v in crate::collection::vec(0i32..5, 0..10)) {
            prop_assert!(v.len() < 10);
        }
    }

    #[test]
    fn failing_case_reports_input() {
        let result = std::panic::catch_unwind(|| {
            crate::run_proptest(
                crate::ProptestConfig::with_cases(50),
                "demo",
                (0u32..10,),
                |(x,)| assert!(x < 9, "hit the failing value"),
            );
        });
        assert!(result.is_err(), "a value of 9 must eventually appear");
    }
}
