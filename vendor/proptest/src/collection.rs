//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::TestRng;

/// A length specification: an exact size or a range of sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `BTreeSet`s with between `size.min` and `size.max` *distinct*
/// elements. If the element strategy cannot produce enough distinct values,
/// the set saturates at whatever was reachable (mirroring proptest's
/// best-effort behaviour for small domains).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut misses = 0usize;
        while set.len() < target && misses < 100 {
            if !set.insert(self.element.generate(rng)) {
                misses += 1;
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng(StdRng::seed_from_u64(5))
    }

    #[test]
    fn vec_respects_size_specs() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(vec(0u8..10, 3usize).generate(&mut r).len(), 3);
            let v = vec(0u8..10, 1..5).generate(&mut r);
            assert!((1..5).contains(&v.len()));
            let w = vec(0u8..10, 2..=6).generate(&mut r);
            assert!((2..=6).contains(&w.len()));
        }
    }

    #[test]
    fn btree_set_is_distinct_and_saturates() {
        let mut r = rng();
        for _ in 0..50 {
            let s = btree_set(0usize..4, 1..=3).generate(&mut r);
            assert!((1..=3).contains(&s.len()));
            // Impossible request: only 2 distinct values exist; must not hang.
            let t = btree_set(0usize..2, 2..=5).generate(&mut r);
            assert!(t.len() <= 2);
        }
    }
}
