//! E3 companion (wall-clock): update latency with and without announced
//! scanners, across implementations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psnap_bench::ImplKind;
use psnap_core::ProcessId;

fn quiescent_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_quiescent");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &m in &[256usize, 4096] {
        for kind in [
            ImplKind::Cas,
            ImplKind::Register,
            ImplKind::AfekFull,
            ImplKind::Lock,
        ] {
            let snapshot = kind.build(m, 2, 0);
            let mut i = 0u64;
            group.bench_with_input(BenchmarkId::new(kind.label(), m), &m, |b, _| {
                b.iter(|| {
                    i += 1;
                    snapshot.update(ProcessId(0), (i % 16) as usize, i)
                })
            });
        }
    }
    group.finish();
}

fn update_with_active_scanners(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_with_scanners");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let m = 1024usize;
    for &scanners in &[1usize, 4] {
        let snapshot = ImplKind::Cas.build(m, scanners + 1, 0);
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..scanners)
            .map(|s| {
                let snapshot = Arc::clone(&snapshot);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let comps: Vec<usize> = (s * 8..s * 8 + 8).collect();
                    while !stop.load(Ordering::Relaxed) {
                        let _ = snapshot.scan(ProcessId(s + 1), &comps);
                    }
                })
            })
            .collect();
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::new("fig3-cas", scanners), &scanners, |b, _| {
            b.iter(|| {
                i += 1;
                snapshot.update(ProcessId(0), (i % 64) as usize, i)
            })
        });
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
    group.finish();
}

criterion_group!(benches, quiescent_update, update_with_active_scanners);
criterion_main!(benches);
