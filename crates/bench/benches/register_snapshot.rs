//! E5 companion (wall-clock): the register-only algorithm (Figure 1) compared
//! with Figure 3 under identical quiescent and contended conditions.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psnap_bench::ImplKind;
use psnap_core::ProcessId;

fn scan_under_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_vs_fig3_contended_scan");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let m = 128usize;
    let r = 8usize;
    for kind in [ImplKind::Register, ImplKind::Cas] {
        for &updaters in &[0usize, 2] {
            let snapshot = kind.build(m, updaters + 1, 0);
            let stop = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = (0..updaters)
                .map(|u| {
                    let snapshot = Arc::clone(&snapshot);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut i = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            snapshot.update(ProcessId(u), (i % r as u64) as usize, i + 1);
                            i += 1;
                        }
                    })
                })
                .collect();
            let comps: Vec<usize> = (0..r).collect();
            let label = format!("{}-{}updaters", kind.label(), updaters);
            group.bench_with_input(BenchmarkId::new(label, m), &m, |b, _| {
                b.iter(|| snapshot.scan(ProcessId(updaters), &comps))
            });
            stop.store(true, Ordering::Relaxed);
            for h in handles {
                h.join().unwrap();
            }
        }
    }
    group.finish();
}

criterion_group!(benches, scan_under_contention);
criterion_main!(benches);
