//! E1 companion (wall-clock): partial-scan latency vs object width `m`.
//!
//! The paper's locality claim in time units: the Figure 3 and Figure 1 scans
//! should be flat in `m`, the full-snapshot baseline should grow linearly.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psnap_bench::ImplKind;
use psnap_core::ProcessId;

fn scan_vs_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_vs_m");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let comps_of = |m: usize| -> Vec<usize> { (0..8).map(|k| k * (m / 8)).collect() };
    for &m in &[64usize, 512, 4096] {
        for kind in [
            ImplKind::Cas,
            ImplKind::Register,
            ImplKind::AfekFull,
            ImplKind::Lock,
        ] {
            let snapshot = kind.build(m, 2, 0);
            // Populate so scans read real entries.
            for i in (0..m).step_by(7) {
                snapshot.update(ProcessId(0), i, i as u64 + 1);
            }
            let comps = comps_of(m);
            group.bench_with_input(BenchmarkId::new(kind.label(), m), &m, |b, _| {
                b.iter(|| snapshot.scan(ProcessId(1), &comps))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, scan_vs_m);
criterion_main!(benches);
