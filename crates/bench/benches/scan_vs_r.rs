//! E2 companion (wall-clock): Figure 3 partial-scan latency vs scan width `r`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psnap_bench::ImplKind;
use psnap_core::ProcessId;

fn scan_vs_r(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_vs_r");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let m = 256usize;
    for &r in &[1usize, 4, 8, 16, 32] {
        for kind in [ImplKind::Cas, ImplKind::Register] {
            let snapshot = kind.build(m, 2, 0);
            let comps: Vec<usize> = (0..r).map(|k| (k * m / r) % m).collect();
            group.bench_with_input(BenchmarkId::new(kind.label(), r), &r, |b, _| {
                b.iter(|| snapshot.scan(ProcessId(1), &comps))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, scan_vs_r);
criterion_main!(benches);
