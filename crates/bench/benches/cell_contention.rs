//! E9 companion (wall-clock, criterion): single-cell operation latency for
//! the lock-free `VersionedCell` vs the `RwLock`-guarded baseline, plus a
//! multi-threaded mixed batch matching the E9 harness point.

use std::sync::Barrier;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psnap_shmem::{RwLockVersionedCell, VersionedCell};

fn single_thread_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_single_thread");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let lockfree = VersionedCell::new(0u64);
    group.bench_function("lockfree_load", |b| b.iter(|| lockfree.load()));
    group.bench_function("lockfree_store", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            lockfree.store(i)
        })
    });
    let rwlock = RwLockVersionedCell::new(0u64);
    group.bench_function("rwlock_load", |b| b.iter(|| rwlock.load()));
    group.bench_function("rwlock_store", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            rwlock.store(i)
        })
    });
    group.finish();
}

/// One mixed update+load batch over a small bank, split across threads —
/// the wall-clock shadow of the harness's E9 measurement loop.
fn mixed_batch<C: Sync>(
    bank: &[C],
    threads: usize,
    ops: usize,
    write: impl Fn(&C, u64) + Sync,
    read: impl Fn(&C) -> u64 + Sync,
) -> u64 {
    let barrier = Barrier::new(threads);
    let mut total = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let bank = &bank;
            let barrier = &barrier;
            let write = &write;
            let read = &read;
            handles.push(scope.spawn(move || {
                let mut checksum = 0u64;
                let mut state = 0x9E37_79B9u64.wrapping_add(t as u64);
                barrier.wait();
                for k in 0..ops {
                    // Cheap xorshift index selection — the bench measures the
                    // cells, not the RNG.
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let idx = (state as usize) % bank.len();
                    if k % 2 == 0 {
                        write(&bank[idx], k as u64);
                    } else {
                        checksum = checksum.wrapping_add(read(&bank[idx]));
                    }
                }
                checksum
            }));
        }
        for h in handles {
            total = total.wrapping_add(h.join().expect("bench worker panicked"));
        }
    });
    total
}

fn contended_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_contended_mixed");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let ops = 2_000usize;
    for threads in [2usize, 4, 8] {
        group.throughput(Throughput::Elements((threads * ops) as u64));
        group.bench_with_input(
            BenchmarkId::new("lockfree", threads),
            &threads,
            |b, &threads| {
                let bank: Vec<VersionedCell<u64>> =
                    (0..64).map(|i| VersionedCell::new(i as u64)).collect();
                b.iter(|| {
                    mixed_batch(
                        &bank,
                        threads,
                        ops,
                        |cell, v| cell.store(v),
                        |cell| *cell.load().value(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rwlock", threads),
            &threads,
            |b, &threads| {
                let bank: Vec<RwLockVersionedCell<u64>> = (0..64)
                    .map(|i| RwLockVersionedCell::new(i as u64))
                    .collect();
                b.iter(|| {
                    mixed_batch(
                        &bank,
                        threads,
                        ops,
                        |cell, v| cell.store(v),
                        |cell| *cell.load().value(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, single_thread_ops, contended_throughput);
criterion_main!(benches);
