//! E4 companion (wall-clock): active set operations — Figure 2 vs the
//! register-based collect baseline.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psnap_activeset::{ActiveSet, CasActiveSet, CollectActiveSet};
use psnap_core::ProcessId;

fn join_leave(c: &mut Criterion) {
    let mut group = c.benchmark_group("active_set_join_leave");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let cas = CasActiveSet::new();
    group.bench_function("fig2-cas", |b| {
        b.iter(|| {
            let t = cas.join(ProcessId(0));
            cas.leave(ProcessId(0), t);
        })
    });
    let collect = CollectActiveSet::new(64);
    group.bench_function("collect", |b| {
        b.iter(|| {
            let t = collect.join(ProcessId(0));
            collect.leave(ProcessId(0), t);
        })
    });
    group.finish();
}

fn get_set_after_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("active_set_get_set");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &churn in &[0usize, 1000, 10_000] {
        let cas = CasActiveSet::new();
        for i in 0..churn {
            let t = cas.join(ProcessId(i % 8));
            cas.leave(ProcessId(i % 8), t);
        }
        let _warm = cas.get_set(); // installs the skip list once
        group.bench_with_input(BenchmarkId::new("fig2-cas", churn), &churn, |b, _| {
            b.iter(|| cas.get_set())
        });
        let collect = CollectActiveSet::new(64);
        group.bench_with_input(BenchmarkId::new("collect-n64", churn), &churn, |b, _| {
            b.iter(|| collect.get_set())
        });
    }
    group.finish();
}

criterion_group!(benches, join_leave, get_set_after_churn);
criterion_main!(benches);
