//! E11 companion (wall-clock, criterion): the service frontend's round-trip
//! costs — one submit, one Fresh scan — and a contended multi-client scan
//! batch with coalescing on vs off.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psnap_bench::ImplKind;
use psnap_serve::{Coalescing, Executor, Freshness, ServiceConfig, SnapshotService};

fn round_trips(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_round_trip");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let executor = Executor::new(2);
    let service = SnapshotService::start(
        ImplKind::Cas.build(256, 2, 0),
        ServiceConfig::default(),
        &executor,
    );
    let client = service.client();
    let mut value = 0u64;
    group.bench_function("submit_wait", |b| {
        b.iter(|| {
            value += 1;
            client.submit(17, value).unwrap().wait()
        })
    });
    group.bench_function("scan_fresh_r8", |b| {
        b.iter(|| {
            client
                .scan(vec![0, 17, 40, 99, 120, 200, 230, 255], Freshness::Fresh)
                .unwrap()
                .wait()
        })
    });
    group.finish();
    service.shutdown();
}

/// One batch of `clients × ops` scans driven from client threads; returns
/// only when every ticket resolved.
fn scan_batch(
    service: &SnapshotService<u64, std::sync::Arc<dyn psnap_core::PartialSnapshot<u64>>>,
    clients: usize,
    ops: usize,
) {
    std::thread::scope(|scope| {
        for c in 0..clients {
            let client = service.client();
            scope.spawn(move || {
                for k in 0..ops {
                    let base = (c * 31 + k * 7) % 248;
                    let components: Vec<usize> = (base..base + 8).collect();
                    let values = client
                        .scan_blocking(&components, Freshness::Fresh)
                        .expect("service closed");
                    assert_eq!(values.len(), 8);
                }
            });
        }
    });
}

fn contended_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_contended_scans");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let clients = 8usize;
    let ops = 50usize;
    group.throughput(Throughput::Elements((clients * ops) as u64));
    for (label, coalescing) in [
        ("coalesced", Coalescing::Window(Duration::ZERO)),
        ("uncoalesced", Coalescing::Disabled),
    ] {
        group.bench_with_input(BenchmarkId::new(label, clients), &clients, |b, &clients| {
            let executor = Executor::new(2);
            let service = SnapshotService::start(
                ImplKind::Cas.build(256, 2, 0),
                ServiceConfig {
                    coalescing,
                    ..ServiceConfig::default()
                },
                &executor,
            );
            b.iter(|| scan_batch(&service, clients, ops));
            service.shutdown();
        });
    }
    group.finish();
}

criterion_group!(benches, round_trips, contended_scans);
criterion_main!(benches);
