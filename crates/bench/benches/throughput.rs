//! E7 companion (wall-clock): aggregate mixed-workload throughput across
//! implementations, measured as the time to complete a fixed batch of
//! operations spread over several threads.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psnap_bench::{run_point, ImplKind, PointConfig};

fn mixed_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixed_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let ops = 300usize;
    for kind in [
        ImplKind::Cas,
        ImplKind::Register,
        ImplKind::AfekFull,
        ImplKind::DoubleCollect,
        ImplKind::Lock,
    ] {
        let cfg = PointConfig::new(512, 8, 2, 2, ops);
        group.throughput(Throughput::Elements((ops * 4) as u64));
        group.bench_with_input(BenchmarkId::new(kind.label(), "2u2s"), &cfg, |b, cfg| {
            b.iter(|| {
                let snapshot = kind.build(cfg.m, cfg.updaters + cfg.scanners, 0);
                run_point(&snapshot, cfg)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, mixed_throughput);
criterion_main!(benches);
