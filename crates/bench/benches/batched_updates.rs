//! E10 companion (wall-clock): one `update_many` batch vs the same writes as
//! a loop of single updates, across batch sizes, with and without announced
//! scanners.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psnap_bench::ImplKind;
use psnap_core::ProcessId;

const M: usize = 256;

fn bench_batch_sizes(c: &mut Criterion, group_name: &str, scanners: usize) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for kind in [ImplKind::Cas, ImplKind::SHARDED_CAS_4] {
        let snapshot = kind.build(M, 1 + scanners.max(1), 0);
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..scanners)
            .map(|s| {
                let snapshot = Arc::clone(&snapshot);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let comps: Vec<usize> = (s * 8..s * 8 + 8).collect();
                    while !stop.load(Ordering::Relaxed) {
                        let _ = snapshot.scan(ProcessId(1 + s), &comps);
                    }
                })
            })
            .collect();
        for batch in [2usize, 4, 8, 16] {
            // Stride the batch across the object so sharded placements are
            // exercised cross-shard.
            let comps: Vec<usize> = (0..batch).map(|i| (i * M / batch) % M).collect();
            let mut v = 0u64;
            group.bench_with_input(
                BenchmarkId::new(format!("{}-batched", kind.label()), batch),
                &batch,
                |b, _| {
                    b.iter(|| {
                        v += 1;
                        let writes: Vec<(usize, u64)> = comps.iter().map(|&c| (c, v)).collect();
                        snapshot.update_many(ProcessId(0), &writes);
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{}-looped", kind.label()), batch),
                &batch,
                |b, _| {
                    b.iter(|| {
                        v += 1;
                        for &c in &comps {
                            snapshot.update(ProcessId(0), c, v);
                        }
                    })
                },
            );
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
    group.finish();
}

fn quiescent(c: &mut Criterion) {
    bench_batch_sizes(c, "batched_updates_quiescent", 0);
}

fn with_scanners(c: &mut Criterion) {
    bench_batch_sizes(c, "batched_updates_with_scanners", 2);
}

criterion_group!(benches, quiescent, with_scanners);
criterion_main!(benches);
