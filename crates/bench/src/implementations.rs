//! A uniform way to construct every snapshot implementation under test.

use std::sync::Arc;

use psnap_activeset::CollectActiveSet;
use psnap_core::{
    AfekFullSnapshot, CasPartialSnapshot, DoubleCollectSnapshot, LockSnapshot, PartialSnapshot,
    RegisterPartialSnapshot,
};

/// The implementations compared by the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImplKind {
    /// Figure 3: compare&swap partial snapshot with the Figure 2 active set.
    Cas,
    /// Figure 3's algorithm but instantiated with the register-based collect
    /// active set (ablation of the Figure 2 contribution).
    CasWithCollectActiveSet,
    /// Figure 1: register-only partial snapshot.
    Register,
    /// Classic full snapshot; partial scan = full scan + projection.
    AfekFull,
    /// Non-blocking double collect (no helping).
    DoubleCollect,
    /// Blocking reader-writer-lock baseline.
    Lock,
}

impl ImplKind {
    /// Every implementation, in the order used by the experiment tables.
    pub const ALL: [ImplKind; 6] = [
        ImplKind::Cas,
        ImplKind::CasWithCollectActiveSet,
        ImplKind::Register,
        ImplKind::AfekFull,
        ImplKind::DoubleCollect,
        ImplKind::Lock,
    ];

    /// The wait-free implementations from the paper (used where baselines
    /// would only add noise).
    pub const PAPER: [ImplKind; 2] = [ImplKind::Cas, ImplKind::Register];

    /// Short label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            ImplKind::Cas => "fig3-cas",
            ImplKind::CasWithCollectActiveSet => "fig3-cas/collect-as",
            ImplKind::Register => "fig1-registers",
            ImplKind::AfekFull => "full-snapshot",
            ImplKind::DoubleCollect => "double-collect",
            ImplKind::Lock => "rwlock",
        }
    }

    /// Builds an instance with `m` components for `n` processes, components
    /// initialized to `initial`.
    pub fn build(&self, m: usize, n: usize, initial: u64) -> Arc<dyn PartialSnapshot<u64>> {
        match self {
            ImplKind::Cas => Arc::new(CasPartialSnapshot::new(m, n, initial)),
            ImplKind::CasWithCollectActiveSet => Arc::new(CasPartialSnapshot::with_active_set(
                m,
                n,
                initial,
                CollectActiveSet::new(n),
            )),
            ImplKind::Register => Arc::new(RegisterPartialSnapshot::new(m, n, initial)),
            ImplKind::AfekFull => Arc::new(AfekFullSnapshot::new(m, n, initial)),
            ImplKind::DoubleCollect => Arc::new(DoubleCollectSnapshot::new(m, n, initial)),
            ImplKind::Lock => Arc::new(LockSnapshot::new(m, n, initial)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnap_core::ProcessId;

    #[test]
    fn every_kind_builds_and_answers_scans() {
        for kind in ImplKind::ALL {
            let snap = kind.build(16, 4, 0);
            snap.update(ProcessId(0), 3, 33);
            assert_eq!(
                snap.scan(ProcessId(1), &[3, 4]),
                vec![33, 0],
                "{} misbehaved",
                kind.label()
            );
            assert_eq!(snap.components(), 16);
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = ImplKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ImplKind::ALL.len());
    }
}
