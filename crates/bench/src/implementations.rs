//! A uniform way to construct every snapshot implementation under test.

use std::sync::Arc;

use psnap_activeset::CollectActiveSet;
use psnap_core::{
    AfekFullSnapshot, CasPartialSnapshot, DoubleCollectSnapshot, LockSnapshot, MvSnapshot,
    PartialSnapshot, RegisterPartialSnapshot,
};
use psnap_shard::{MvShardedSnapshot, Partition, ShardConfig, ShardedSnapshot};

/// The implementations compared by the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImplKind {
    /// Figure 3: compare&swap partial snapshot with the Figure 2 active set.
    Cas,
    /// Figure 3's algorithm but instantiated with the register-based collect
    /// active set (ablation of the Figure 2 contribution).
    CasWithCollectActiveSet,
    /// Figure 1: register-only partial snapshot.
    Register,
    /// Classic full snapshot; partial scan = full scan + projection.
    AfekFull,
    /// Non-blocking double collect (no helping).
    DoubleCollect,
    /// Blocking reader-writer-lock baseline.
    Lock,
    /// `psnap-shard`: components partitioned over `shards` inner instances of
    /// `inner`, with epoch-validated cross-shard scans.
    Sharded {
        /// The implementation each shard runs.
        inner: &'static ImplKind,
        /// Number of shards (clamped to the component count at build time).
        shards: usize,
        /// Component-to-shard placement.
        partition: Partition,
    },
    /// `MvSnapshot`: the multiversioned object — one-shot timestamped scans
    /// over per-register version chains, wait-free under any writer
    /// behaviour (the Wei et al. constant-time-snapshot direction).
    Mv,
    /// `MvShardedSnapshot`: `shards` multiversioned shards sharing one
    /// timestamp camera — the wait-free cross-shard path
    /// (`CrossShardPath::Multiversioned`).
    MvSharded {
        /// Number of shards (clamped to the component count at build time).
        shards: usize,
        /// Component-to-shard placement.
        partition: Partition,
    },
}

impl ImplKind {
    /// Every implementation, in the order used by the experiment tables.
    pub const ALL: [ImplKind; 11] = [
        ImplKind::Cas,
        ImplKind::CasWithCollectActiveSet,
        ImplKind::Register,
        ImplKind::AfekFull,
        ImplKind::DoubleCollect,
        ImplKind::Lock,
        ImplKind::SHARDED_CAS_2,
        ImplKind::SHARDED_CAS_4,
        ImplKind::SHARDED_CAS_4_HASHED,
        ImplKind::Mv,
        ImplKind::MV_SHARDED_4,
    ];

    /// The wait-free implementations from the paper (used where baselines
    /// would only add noise).
    pub const PAPER: [ImplKind; 2] = [ImplKind::Cas, ImplKind::Register];

    /// Two contiguous Figure-3 shards.
    pub const SHARDED_CAS_2: ImplKind = ImplKind::Sharded {
        inner: &ImplKind::Cas,
        shards: 2,
        partition: Partition::Contiguous,
    };

    /// Four contiguous Figure-3 shards.
    pub const SHARDED_CAS_4: ImplKind = ImplKind::Sharded {
        inner: &ImplKind::Cas,
        shards: 4,
        partition: Partition::Contiguous,
    };

    /// Four hash-partitioned Figure-3 shards.
    pub const SHARDED_CAS_4_HASHED: ImplKind = ImplKind::Sharded {
        inner: &ImplKind::Cas,
        shards: 4,
        partition: Partition::Hashed,
    };

    /// Four contiguous multiversioned shards on one camera.
    pub const MV_SHARDED_4: ImplKind = ImplKind::MvSharded {
        shards: 4,
        partition: Partition::Contiguous,
    };

    /// A multiversioned sharded object with an arbitrary shard count (used
    /// by the E12 sweep).
    pub fn mv_sharded(shards: usize, partition: Partition) -> ImplKind {
        ImplKind::MvSharded { shards, partition }
    }

    /// A sharded Figure-3 object with an arbitrary shard count (used by the
    /// E8 shard-count sweep).
    pub fn sharded_cas(shards: usize, partition: Partition) -> ImplKind {
        match (shards, partition) {
            (2, Partition::Contiguous) => ImplKind::SHARDED_CAS_2,
            (4, Partition::Contiguous) => ImplKind::SHARDED_CAS_4,
            (4, Partition::Hashed) => ImplKind::SHARDED_CAS_4_HASHED,
            (shards, partition) => ImplKind::Sharded {
                inner: &ImplKind::Cas,
                shards,
                partition,
            },
        }
    }

    /// Short label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            ImplKind::Cas => "fig3-cas",
            ImplKind::CasWithCollectActiveSet => "fig3-cas/collect-as",
            ImplKind::Register => "fig1-registers",
            ImplKind::AfekFull => "full-snapshot",
            ImplKind::DoubleCollect => "double-collect",
            ImplKind::Lock => "rwlock",
            ImplKind::Sharded {
                shards, partition, ..
            } => match (shards, partition) {
                (2, Partition::Contiguous) => "sharded-cas-k2",
                (4, Partition::Contiguous) => "sharded-cas-k4",
                (8, Partition::Contiguous) => "sharded-cas-k8",
                (4, Partition::Hashed) => "sharded-cas-k4-hashed",
                (_, Partition::Contiguous) => "sharded-cas",
                (_, Partition::Hashed) => "sharded-cas-hashed",
            },
            ImplKind::Mv => "mv-snapshot",
            ImplKind::MvSharded { shards, partition } => match (shards, partition) {
                (2, Partition::Contiguous) => "mv-sharded-k2",
                (4, Partition::Contiguous) => "mv-sharded-k4",
                (8, Partition::Contiguous) => "mv-sharded-k8",
                (_, Partition::Contiguous) => "mv-sharded",
                (_, Partition::Hashed) => "mv-sharded-hashed",
            },
        }
    }

    /// Builds an instance with `m` components for `n` processes, components
    /// initialized to `initial`.
    pub fn build(&self, m: usize, n: usize, initial: u64) -> Arc<dyn PartialSnapshot<u64>> {
        match self {
            ImplKind::Cas => Arc::new(CasPartialSnapshot::new(m, n, initial)),
            ImplKind::CasWithCollectActiveSet => Arc::new(CasPartialSnapshot::with_active_set(
                m,
                n,
                initial,
                CollectActiveSet::new(n),
            )),
            ImplKind::Register => Arc::new(RegisterPartialSnapshot::new(m, n, initial)),
            ImplKind::AfekFull => Arc::new(AfekFullSnapshot::new(m, n, initial)),
            ImplKind::DoubleCollect => Arc::new(DoubleCollectSnapshot::new(m, n, initial)),
            ImplKind::Lock => Arc::new(LockSnapshot::new(m, n, initial)),
            ImplKind::Sharded {
                inner,
                shards,
                partition,
            } => {
                let config = ShardConfig {
                    partition: *partition,
                    ..ShardConfig::contiguous(*shards)
                };
                Arc::new(ShardedSnapshot::with_factory(
                    m,
                    n,
                    initial,
                    config,
                    |_, shard_m, shard_n, init| inner.build(shard_m, shard_n, init),
                ))
            }
            ImplKind::Mv => Arc::new(MvSnapshot::new(m, n, initial)),
            ImplKind::MvSharded { shards, partition } => {
                let config = ShardConfig {
                    partition: *partition,
                    ..ShardConfig::multiversioned(*shards)
                };
                Arc::new(MvShardedSnapshot::new(m, n, initial, config))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnap_core::ProcessId;

    #[test]
    fn every_kind_builds_and_answers_scans() {
        for kind in ImplKind::ALL {
            let snap = kind.build(16, 4, 0);
            snap.update(ProcessId(0), 3, 33);
            assert_eq!(
                snap.scan(ProcessId(1), &[3, 4]),
                vec![33, 0],
                "{} misbehaved",
                kind.label()
            );
            assert_eq!(snap.components(), 16);
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = ImplKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ImplKind::ALL.len());
    }

    #[test]
    fn sharded_kinds_scan_across_shard_boundaries() {
        for kind in [
            ImplKind::SHARDED_CAS_2,
            ImplKind::SHARDED_CAS_4,
            ImplKind::SHARDED_CAS_4_HASHED,
            ImplKind::sharded_cas(8, Partition::Contiguous),
        ] {
            let snap = kind.build(32, 4, 0);
            for c in 0..32 {
                snap.update(ProcessId(0), c, c as u64 + 100);
            }
            let comps: Vec<usize> = vec![0, 9, 17, 31];
            assert_eq!(
                snap.scan(ProcessId(1), &comps),
                vec![100, 109, 117, 131],
                "{}",
                kind.label()
            );
        }
    }

    #[test]
    fn sharded_cas_reuses_canonical_kinds() {
        assert_eq!(
            ImplKind::sharded_cas(4, Partition::Contiguous),
            ImplKind::SHARDED_CAS_4
        );
        assert_eq!(
            ImplKind::sharded_cas(16, Partition::Contiguous).label(),
            "sharded-cas"
        );
    }
}
