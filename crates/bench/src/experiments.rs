//! The E1–E10 experiments of EXPERIMENTS.md.
//!
//! Each function returns a [`Table`] that the harness binary prints as
//! GitHub-flavoured markdown. The experiments measure the paper's cost metric
//! — base-object operations per implemented operation — plus wall-clock
//! latency and throughput as secondary metrics.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use psnap_activeset::{ActiveSet, CasActiveSet, CollectActiveSet};
use psnap_core::{CasPartialSnapshot, PartialSnapshot, ProcessId};
use psnap_shmem::StepScope;
use psnap_workloads::{Market, MarketConfig, DEFAULT_M_SWEEP, DEFAULT_R_SWEEP};

use crate::implementations::ImplKind;
use crate::runner::{run_point, PointConfig};
use crate::stats::Summary;

/// A printable experiment table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment identifier (e.g. `"E1"`).
    pub id: String,
    /// What the experiment demonstrates.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

fn fmt_steps(s: &Summary) -> String {
    if s.count == 0 {
        "—".to_string()
    } else {
        format!("{:.0}", s.mean)
    }
}

fn fmt_us(s: &Summary) -> String {
    if s.count == 0 {
        "—".to_string()
    } else {
        format!("{:.1}", s.mean / 1000.0)
    }
}

/// How many operations each role performs per measurement point.
#[derive(Clone, Copy, Debug)]
pub struct Effort {
    /// Operations per role per point.
    pub ops: usize,
}

impl Effort {
    /// The effort used when regenerating EXPERIMENTS.md.
    pub fn full() -> Self {
        Effort { ops: 1000 }
    }

    /// A tiny effort used by the test suite to keep CI fast.
    pub fn smoke() -> Self {
        Effort { ops: 30 }
    }
}

/// E1 — locality: partial-scan cost vs object width `m`, `r` fixed.
pub fn e1_locality(effort: Effort) -> Table {
    let kinds = [
        ImplKind::Cas,
        ImplKind::Register,
        ImplKind::AfekFull,
        ImplKind::Lock,
    ];
    let mut headers = vec!["m".to_string()];
    for k in kinds {
        headers.push(format!("{} scan steps", k.label()));
        headers.push(format!("{} scan µs", k.label()));
    }
    let mut rows = Vec::new();
    for &m in DEFAULT_M_SWEEP {
        let mut row = vec![m.to_string()];
        for kind in kinds {
            let snapshot = kind.build(m, 4, 0);
            let cfg = PointConfig::new(m, 8, 2, 2, effort.ops);
            let result = run_point(&snapshot, &cfg);
            row.push(fmt_steps(&result.scan_steps));
            row.push(fmt_us(&result.scan_latency_ns));
        }
        rows.push(row);
    }
    Table {
        id: "E1".into(),
        title: "partial-scan cost vs object width m (r = 8, 2 updaters + 2 scanners). \
                Figure 3 and Figure 1 are local; the full-snapshot baseline grows with m."
            .into(),
        headers,
        rows,
    }
}

/// E2 — worst-case scan cost vs scan width `r` under focused update pressure.
pub fn e2_scan_width(effort: Effort) -> Table {
    let mut rows = Vec::new();
    for &r in DEFAULT_R_SWEEP {
        let snapshot = ImplKind::Cas.build(256, 4, 0);
        // Updates target exactly the components being scanned to force the
        // helping path (condition 2) as often as possible.
        let mut contended = PointConfig::new(256, r, 2, 1, effort.ops);
        contended.update_range = Some(r.max(1));
        let contended_result = run_point(&snapshot, &contended);

        let quiet_snapshot = ImplKind::Cas.build(256, 4, 0);
        let quiet = PointConfig::new(256, r, 0, 1, effort.ops);
        let quiet_result = run_point(&quiet_snapshot, &quiet);

        rows.push(vec![
            r.to_string(),
            fmt_steps(&quiet_result.scan_steps),
            fmt_steps(&contended_result.scan_steps),
            format!("{:.0}", contended_result.scan_steps.max),
            format!("{}", 2 * r * r + 3 * r + 8),
        ]);
    }
    Table {
        id: "E2".into(),
        title: "Figure 3 scan steps vs scan width r (m = 256). Quiet scans are linear in r; \
                under focused update pressure the worst case stays within the O(r²) budget \
                of Theorem 3."
            .into(),
        headers: vec![
            "r".into(),
            "scan steps (no updates)".into(),
            "scan steps (contended, mean)".into(),
            "scan steps (contended, max)".into(),
            "Theorem 3 budget ≈ 2r²+3r+8".into(),
        ],
        rows,
    }
}

/// E3 — update cost vs number of concurrent scanners.
pub fn e3_update_cost(effort: Effort) -> Table {
    let mut rows = Vec::new();
    for &scanners in &[0usize, 1, 2, 4, 6] {
        let mut row = vec![scanners.to_string()];
        for m in [256usize, 4096] {
            let snapshot = ImplKind::Cas.build(m, 1 + scanners, 0);
            let cfg = PointConfig {
                m,
                r: 8,
                updaters: 1,
                scanners,
                ops_per_updater: effort.ops,
                ops_per_scanner: effort.ops,
                update_batch: 1,
                update_range: None,
                zipf_s: None,
                seed: 0xE3,
            };
            let result = run_point(&snapshot, &cfg);
            row.push(fmt_steps(&result.update_steps));
        }
        rows.push(row);
    }
    Table {
        id: "E3".into(),
        title: "Figure 3 update steps vs concurrent scanners (r = 8). The cost scales with \
                the announced components of active scanners (Cs·rmax), not with the object \
                width m."
            .into(),
        headers: vec![
            "concurrent scanners".into(),
            "update steps (m=256)".into(),
            "update steps (m=4096)".into(),
        ],
        rows,
    }
}

/// Measures one active-set implementation under churn.
///
/// Churners are rate-bounded (a yield per cycle and a hard cycle cap): each
/// Figure 2 `join` permanently consumes a fresh slot, so unthrottled churners
/// outpace the single measured `getSet` reader and its cost diverges — the
/// amortized bound of Theorem 2 charges that work to the *joins*, not to the
/// reader, and holds either way; the throttle only keeps the measurement
/// finite.
fn active_set_point<A: ActiveSet>(
    set: &A,
    churners: usize,
    ops: usize,
) -> (Summary, Summary, Summary) {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Arc::new(AtomicUsize::new(0));
    let set_ref: &A = set;
    let churn_cap = ops * 100;
    std::thread::scope(|scope| {
        // Churning threads join/leave continuously (rate-bounded, see above).
        for c in 0..churners {
            let stop = Arc::clone(&stop);
            let started = Arc::clone(&started);
            scope.spawn(move || {
                started.fetch_add(1, Ordering::SeqCst);
                let mut cycles = 0usize;
                while !stop.load(Ordering::Relaxed) && cycles < churn_cap {
                    let t = set_ref.join(ProcessId(c + 1));
                    std::hint::spin_loop();
                    set_ref.leave(ProcessId(c + 1), t);
                    cycles += 1;
                    std::thread::yield_now();
                }
            });
        }
        while started.load(Ordering::SeqCst) < churners {
            std::hint::spin_loop();
        }
        // The measured process alternates join / getSet / leave.
        let mut join_steps = Vec::with_capacity(ops);
        let mut leave_steps = Vec::with_capacity(ops);
        let mut getset_steps = Vec::with_capacity(ops);
        for _ in 0..ops {
            let scope_steps = StepScope::start();
            let t = set_ref.join(ProcessId(0));
            join_steps.push(scope_steps.finish().total());

            let scope_steps = StepScope::start();
            let _ = set_ref.get_set();
            getset_steps.push(scope_steps.finish().total());

            let scope_steps = StepScope::start();
            set_ref.leave(ProcessId(0), t);
            leave_steps.push(scope_steps.finish().total());
        }
        stop.store(true, Ordering::Relaxed);
        (
            Summary::of_u64(&join_steps),
            Summary::of_u64(&leave_steps),
            Summary::of_u64(&getset_steps),
        )
    })
}

/// E4 — the Figure 2 active set vs the register-based collect baseline.
pub fn e4_active_set(effort: Effort) -> Table {
    let mut rows = Vec::new();
    for &churners in &[0usize, 2, 4, 6] {
        let cas_set = CasActiveSet::new();
        let (cj, cl, cg) = active_set_point(&cas_set, churners, effort.ops);
        let collect_set = CollectActiveSet::new(64);
        let (bj, bl, bg) = active_set_point(&collect_set, churners, effort.ops);
        rows.push(vec![
            churners.to_string(),
            fmt_steps(&cj),
            fmt_steps(&cl),
            format!("{:.1}", cg.mean),
            format!("{:.0}", cg.max),
            fmt_steps(&bj),
            fmt_steps(&bl),
            format!("{:.1}", bg.mean),
        ]);
    }
    Table {
        id: "E4".into(),
        title: "active set operations vs concurrent churners (Theorem 2). Figure 2: O(1) \
                join/leave, amortized getSet bounded by contention; collect baseline: getSet \
                always reads all n = 64 flags."
            .into(),
        headers: vec![
            "churners".into(),
            "fig2 join steps".into(),
            "fig2 leave steps".into(),
            "fig2 getSet steps (mean)".into(),
            "fig2 getSet steps (max)".into(),
            "collect join steps".into(),
            "collect leave steps".into(),
            "collect getSet steps (mean)".into(),
        ],
        rows,
    }
}

/// E5 — the register-only algorithm (Figure 1) vs update contention.
pub fn e5_register_snapshot(effort: Effort) -> Table {
    let mut rows = Vec::new();
    for &updaters in &[0usize, 1, 2, 4] {
        let snapshot = ImplKind::Register.build(128, updaters + 2, 0);
        let cfg = PointConfig {
            m: 128,
            r: 4,
            updaters,
            scanners: 2,
            ops_per_updater: effort.ops,
            ops_per_scanner: effort.ops,
            update_batch: 1,
            update_range: Some(8),
            zipf_s: None,
            seed: 0xE5,
        };
        let result = run_point(&snapshot, &cfg);
        rows.push(vec![
            updaters.to_string(),
            fmt_steps(&result.scan_steps),
            format!("{:.0}", result.scan_steps.max),
            fmt_steps(&result.update_steps),
            fmt_us(&result.scan_latency_ns),
        ]);
    }
    Table {
        id: "E5".into(),
        title: "Figure 1 (registers only) vs number of concurrent updaters (r = 4, m = 128, \
                updates focused on 8 components). Scan cost grows with update contention Cu \
                as Theorem 1 predicts; it never depends on m."
            .into(),
        headers: vec![
            "updaters (Cu)".into(),
            "scan steps (mean)".into(),
            "scan steps (max)".into(),
            "update steps (mean)".into(),
            "scan latency µs".into(),
        ],
        rows,
    }
}

/// E6 — the stock-portfolio motivation: naive reads are inconsistent, partial
/// scans are consistent and stay cheap as the market grows.
pub fn e6_portfolio(effort: Effort) -> Table {
    let mut rows = Vec::new();
    for &stocks in &[64usize, 1024] {
        let config = MarketConfig {
            stocks,
            portfolios: 8,
            holdings_per_portfolio: 8,
            ..Default::default()
        };
        let outcome = portfolio_consistency_run(config, effort.ops.max(200));
        rows.push(vec![
            stocks.to_string(),
            outcome.valuations.to_string(),
            outcome.naive_violations.to_string(),
            outcome.snapshot_violations.to_string(),
            format!("{:.0}", outcome.snapshot_scan_steps.mean),
            format!("{:.0}", outcome.full_scan_steps.mean),
        ]);
    }
    Table {
        id: "E6".into(),
        title: "stock-portfolio workload (8 holdings per portfolio). Transfers between stocks \
                of one portfolio keep its true value constant; naive read-one-by-one valuation \
                observes phantom gains/losses, partial-snapshot valuation never does, and its \
                cost does not grow with the market size."
            .into(),
        headers: vec![
            "stocks (m)".into(),
            "valuations".into(),
            "naive-read violations".into(),
            "partial-scan violations".into(),
            "partial-scan steps".into(),
            "full-scan steps".into(),
        ],
        rows,
    }
}

/// The outcome of the portfolio consistency demonstration (also used by the
/// `stock_portfolio` example).
pub struct PortfolioOutcome {
    /// Number of valuations performed with each method.
    pub valuations: usize,
    /// Valuations outside the invariant band using naive per-component reads.
    pub naive_violations: usize,
    /// Valuations outside the invariant band using partial scans.
    pub snapshot_violations: usize,
    /// Steps per partial scan of one portfolio.
    pub snapshot_scan_steps: Summary,
    /// Steps per full scan of the whole market (baseline).
    pub full_scan_steps: Summary,
}

/// Runs the portfolio consistency experiment: an updater thread transfers
/// value between stocks of the same portfolio (keeping each portfolio's total
/// invariant up to one in-flight transfer), while a valuation thread prices
/// one portfolio with (a) naive one-by-one reads and (b) partial scans.
pub fn portfolio_consistency_run(config: MarketConfig, valuations: usize) -> PortfolioOutcome {
    let market = Market::generate(config.clone(), 0xF0110);
    // One share of each holding keeps the invariant exact: a transfer moves
    // `delta` from one stock of the portfolio to another.
    let snapshot: Arc<CasPartialSnapshot<u64>> = Arc::new(CasPartialSnapshot::new(
        config.stocks,
        4,
        config.initial_price,
    ));
    let portfolio = &market.portfolios[0];
    let comps = portfolio.components();
    let true_total: u64 = config.initial_price * comps.len() as u64;
    let delta = 100u64;

    let stop = Arc::new(AtomicBool::new(false));
    let updater = {
        let snapshot = Arc::clone(&snapshot);
        let comps = comps.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            use rand::Rng as _;
            use rand::SeedableRng as _;
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
            // Offset of each holding from its initial price. Transfers move
            // `delta` from one holding to another, so the sum of offsets is 0
            // except during the window between the two updates of a transfer.
            let mut offset: Vec<i64> = vec![0; comps.len()];
            while !stop.load(Ordering::Relaxed) {
                let a = rng.gen_range(0..comps.len());
                let mut b = rng.gen_range(0..comps.len());
                while b == a {
                    b = rng.gen_range(0..comps.len());
                }
                // Skip transfers that would drive a price to zero or below —
                // that would break the invariant permanently.
                if config.initial_price as i64 + offset[a] - (delta as i64) < 1 {
                    continue;
                }
                offset[a] -= delta as i64;
                let new_a = (config.initial_price as i64 + offset[a]) as u64;
                snapshot.update(ProcessId(0), comps[a], new_a);
                offset[b] += delta as i64;
                let new_b = (config.initial_price as i64 + offset[b]) as u64;
                snapshot.update(ProcessId(0), comps[b], new_b);
            }
        })
    };

    // The invariant band: the instantaneous total is always within ±delta of
    // the true total (at most one transfer is in flight).
    let lo = true_total - delta;
    let hi = true_total + delta;
    let in_band = |total: u64| total >= lo && total <= hi;

    let mut naive_violations = 0usize;
    let mut snapshot_violations = 0usize;
    let mut scan_steps = Vec::with_capacity(valuations);
    let mut full_steps = Vec::with_capacity(valuations.min(200));
    let all: Vec<usize> = (0..config.stocks).collect();
    for i in 0..valuations {
        // Naive valuation: read components one by one, yielding in between —
        // exactly the "check each stock one by one" of the introduction.
        let mut naive_total = 0u64;
        for &c in &comps {
            naive_total += snapshot.scan(ProcessId(1), &[c])[0];
            std::thread::yield_now();
        }
        if !in_band(naive_total) {
            naive_violations += 1;
        }

        // Consistent valuation: one partial scan of the portfolio.
        let scope = StepScope::start();
        let prices = snapshot.scan(ProcessId(2), &comps);
        scan_steps.push(scope.finish().total());
        let snap_total: u64 = prices.iter().sum();
        if !in_band(snap_total) {
            snapshot_violations += 1;
        }

        // Occasionally price the whole market to measure the full-scan cost.
        if i < 200 {
            let scope = StepScope::start();
            let _ = snapshot.scan(ProcessId(3), &all);
            full_steps.push(scope.finish().total());
        }
    }
    stop.store(true, Ordering::Relaxed);
    updater.join().expect("updater thread panicked");

    PortfolioOutcome {
        valuations,
        naive_violations,
        snapshot_violations,
        snapshot_scan_steps: Summary::of_u64(&scan_steps),
        full_scan_steps: Summary::of_u64(&full_steps),
    }
}

/// E7 — cross-implementation throughput at several scanner/updater mixes.
pub fn e7_throughput(effort: Effort) -> Table {
    let kinds = ImplKind::ALL;
    let mut headers = vec!["mix".to_string()];
    headers.extend(kinds.iter().map(|k| format!("{} kops/s", k.label())));
    let mut rows = Vec::new();
    for mix in psnap_workloads::Mix::ladder() {
        let mut row = vec![mix.label()];
        for kind in kinds {
            let snapshot = kind.build(512, mix.processes(), 0);
            let cfg = PointConfig::new(512, 8, mix.updaters, mix.scanners, effort.ops);
            let result = run_point(&snapshot, &cfg);
            row.push(format!("{:.0}", result.throughput_ops_per_sec() / 1000.0));
        }
        rows.push(row);
    }
    Table {
        id: "E7".into(),
        title: "aggregate throughput (thousands of operations per second) at several \
                updater/scanner mixes (m = 512, r = 8)."
            .into(),
        headers,
        rows,
    }
}

/// One measured point of experiment E8.
#[derive(Clone, Debug)]
pub struct E8Point {
    /// Shard count (1 = the unsharded `Cas` baseline object).
    pub shards: usize,
    /// `"uniform"` or `"zipf"`.
    pub dist: &'static str,
    /// Aggregate throughput in operations per second.
    pub ops_per_sec: f64,
    /// Mean update latency in nanoseconds.
    pub update_latency_ns: f64,
    /// Mean scan latency in nanoseconds.
    pub scan_latency_ns: f64,
    /// Aggregate update throughput in updates per second, derived from the
    /// median update latency (`updaters / p50 latency`) — stable even when
    /// the run's wall clock is dominated by the scanner tail.
    pub update_ops_per_sec: f64,
    /// Mean base-object steps per update — the paper's cost metric, and the
    /// host-independent measure of the update path's work.
    pub update_steps: f64,
    /// Mean base-object steps per scan.
    pub scan_steps: f64,
    /// Update-work reduction relative to the same distribution's 1-shard
    /// baseline (the unsharded `Cas` object): baseline update steps divided
    /// by this point's update steps. This is throughput scaling in the cost
    /// model — steps are what each update serializes through its shard, so
    /// `K` shards sustain `K × (baseline steps / sharded steps)` more update
    /// work per unit time when hardware parallelism is available.
    pub speedup_vs_unsharded: f64,
}

/// The raw data behind experiment E8 (also serialized to `BENCH_E8.json`).
#[derive(Clone, Debug)]
pub struct E8Data {
    /// Fixed workload shape shared by every point.
    pub sweep: psnap_workloads::Sweep,
    /// One entry per (shard count × distribution).
    pub points: Vec<E8Point>,
}

impl E8Data {
    /// Serializes the data for `BENCH_E8.json`.
    pub fn to_json(&self) -> psnap_json::Json {
        use psnap_json::Json;
        Json::obj([
            ("experiment", Json::Str("E8".into())),
            ("description", Json::Str(self.sweep.description.clone())),
            ("sweep", self.sweep.to_json()),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        ("shards", Json::Num(p.shards as f64)),
                        ("dist", Json::Str(p.dist.into())),
                        ("ops_per_sec", Json::Num(p.ops_per_sec)),
                        ("update_ops_per_sec", Json::Num(p.update_ops_per_sec)),
                        ("update_steps", Json::Num(p.update_steps)),
                        ("scan_steps", Json::Num(p.scan_steps)),
                        ("update_latency_ns", Json::Num(p.update_latency_ns)),
                        ("scan_latency_ns", Json::Num(p.scan_latency_ns)),
                        ("speedup_vs_unsharded", Json::Num(p.speedup_vs_unsharded)),
                    ])
                })),
            ),
        ])
    }
}

/// Runs the E8 measurement: throughput vs shard count, uniform and Zipf.
///
/// Shard count 1 is the plain `Cas` object (no sharding layer at all), so the
/// speedup column reports what the sharding layer buys end to end, including
/// its epoch-validation overhead. The uniform workload uses the contiguous
/// partition; the Zipf workload uses the hashed partition — with contiguous
/// placement the Zipf head would all land on shard 0 and sharding could not
/// help, which is precisely the load-skew problem hashing exists to solve.
/// The primary metric is the paper's own: **base-object steps per update**
/// while scanners are active. In the unsharded object every update's helping
/// scan covers the announced components of *all* active scanners; in the
/// sharded object it covers only the announcements that intersect the
/// update's shard, so the serialized work per update shrinks with the shard
/// count — that is the throughput scaling, stated host-independently (wall
/// clock on an oversubscribed single-core runner measures the scheduler, so
/// wall-clock columns are reported as secondary evidence only).
pub fn e8_sharding_data(effort: Effort) -> E8Data {
    let sweep = psnap_workloads::Sweep::e8_shards(effort.ops);
    let mut points = Vec::new();
    let cases = [
        ("uniform", None, psnap_shard::Partition::Contiguous),
        ("zipf", Some(0.9f64), psnap_shard::Partition::Hashed),
    ];
    for (dist, zipf_s, partition) in cases {
        let mut baseline: Option<f64> = None;
        for point in &sweep.points {
            let kind = if point.shards == 1 {
                ImplKind::Cas
            } else {
                ImplKind::sharded_cas(point.shards, partition)
            };
            let measured = e8_point(kind, point, zipf_s);
            // Median latency, not mean: on oversubscribed hosts a small
            // fraction of ops absorbs whole scheduler slices, and those
            // outliers say nothing about the algorithm.
            let update_ops_per_sec = if measured.update_latency_ns.p50 > 0.0 {
                point.updaters as f64 * 1e9 / measured.update_latency_ns.p50
            } else {
                0.0
            };
            let update_steps = measured.update_steps.mean;
            let base = *baseline.get_or_insert(update_steps);
            points.push(E8Point {
                shards: point.shards,
                dist,
                ops_per_sec: measured.updates_per_sec_wall,
                update_latency_ns: measured.update_latency_ns.mean,
                scan_latency_ns: measured.scan_latency_ns.mean,
                update_ops_per_sec,
                update_steps,
                scan_steps: measured.scan_steps.mean,
                speedup_vs_unsharded: if update_steps > 0.0 {
                    base / update_steps
                } else {
                    0.0
                },
            });
        }
    }
    E8Data { sweep, points }
}

struct E8Measured {
    update_steps: Summary,
    update_latency_ns: Summary,
    scan_steps: Summary,
    scan_latency_ns: Summary,
    updates_per_sec_wall: f64,
}

/// One E8 measurement point: scanners scan *continuously* for the whole
/// update window (unlike `run_point`, where fixed scanner op counts drain
/// early and leave most updates unopposed) and run under sleep-heavy chaos,
/// so they spend most of wall time parked mid-scan with their announcements
/// live — the state in which every measured update pays the helping cost the
/// experiment is about, regardless of how the host schedules threads.
fn e8_point(
    kind: ImplKind,
    point: &psnap_workloads::SweepPoint,
    zipf_s: Option<f64>,
) -> E8Measured {
    use psnap_shmem::chaos::{self, ChaosConfig};
    use psnap_workloads::IndexDist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let snapshot = kind.build(point.m, point.processes(), 0);
    let dist = match zipf_s {
        Some(s) => IndexDist::zipf(point.m, s),
        None => IndexDist::uniform(point.m),
    };
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(std::sync::Barrier::new(point.processes()));
    std::thread::scope(|scope| {
        let mut scanner_handles = Vec::new();
        for s in 0..point.scanners {
            let snapshot = Arc::clone(&snapshot);
            let dist = dist.clone();
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let (r, updaters, cap) = (point.r, point.updaters, point.ops);
            scanner_handles.push(scope.spawn(move || {
                // Park at base-object boundaries often and long: announcements
                // stay live while updates run.
                let _chaos = chaos::enable(
                    0xE8AB ^ s as u64,
                    ChaosConfig {
                        perturb_probability: 0.3,
                        sleep_probability: 0.6,
                        max_sleep_us: 300,
                        max_spin: 32,
                        ..ChaosConfig::default()
                    },
                );
                let mut rng = StdRng::seed_from_u64(0xE8AB ^ ((s as u64) << 13));
                let mut steps = Vec::with_capacity(cap);
                let mut latency = Vec::with_capacity(cap);
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let comps = dist.sample_set(&mut rng, r);
                    let scope_steps = StepScope::start();
                    let t0 = std::time::Instant::now();
                    let _ = snapshot.scan(ProcessId(updaters + s), &comps);
                    // Sample the first `cap` scans, keep scanning after.
                    if steps.len() < cap {
                        latency.push(t0.elapsed().as_nanos() as f64);
                        steps.push(scope_steps.finish().total());
                    }
                }
                (steps, latency)
            }));
        }
        let mut updater_handles = Vec::new();
        for u in 0..point.updaters {
            let snapshot = Arc::clone(&snapshot);
            let dist = dist.clone();
            let barrier = Arc::clone(&barrier);
            // Updates are cheap (sub-µs) while the chaos-parked scanners need
            // ~1ms to reach their first announced state: run enough updates
            // that the window dwarfs that ramp, or the point measures an
            // unopposed burst.
            let ops = point.ops * 20;
            updater_handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xE8 ^ ((u as u64) << 7));
                let mut steps = Vec::with_capacity(ops);
                let mut latency = Vec::with_capacity(ops);
                barrier.wait();
                let t_start = std::time::Instant::now();
                for k in 0..ops {
                    let component = dist.sample(&mut rng);
                    let scope_steps = StepScope::start();
                    let t0 = std::time::Instant::now();
                    snapshot.update(ProcessId(u), component, (k as u64 + 1) * 1000 + u as u64);
                    latency.push(t0.elapsed().as_nanos() as f64);
                    steps.push(scope_steps.finish().total());
                }
                (steps, latency, t_start.elapsed())
            }));
        }
        let mut update_steps = Vec::new();
        let mut update_latency = Vec::new();
        let mut total_updates = 0usize;
        let mut longest_wall = std::time::Duration::ZERO;
        for h in updater_handles {
            let (steps, latency, wall) = h.join().expect("updater panicked");
            total_updates += steps.len();
            update_steps.extend(steps);
            update_latency.extend(latency);
            longest_wall = longest_wall.max(wall);
        }
        stop.store(true, Ordering::Relaxed);
        let mut scan_steps = Vec::new();
        let mut scan_latency = Vec::new();
        for h in scanner_handles {
            let (steps, latency) = h.join().expect("scanner panicked");
            scan_steps.extend(steps);
            scan_latency.extend(latency);
        }
        E8Measured {
            update_steps: Summary::of_u64(&update_steps),
            update_latency_ns: Summary::of(&update_latency),
            scan_steps: Summary::of_u64(&scan_steps),
            scan_latency_ns: Summary::of(&scan_latency),
            updates_per_sec_wall: if longest_wall.is_zero() {
                0.0
            } else {
                total_updates as f64 / longest_wall.as_secs_f64()
            },
        }
    })
}

/// E8 — update/scan throughput vs shard count (the `psnap-shard` experiment).
pub fn e8_sharding(effort: Effort) -> Table {
    e8_sharding_table(&e8_sharding_data(effort))
}

/// Renders already-measured E8 data as a table (lets the harness emit the
/// markdown table and `BENCH_E8.json` from one measurement run).
pub fn e8_sharding_table(data: &E8Data) -> Table {
    let rows = data
        .points
        .iter()
        .map(|p| {
            vec![
                p.shards.to_string(),
                p.dist.to_string(),
                format!("{:.1}", p.update_steps),
                format!("{:.1}", p.scan_steps),
                format!("{:.0}", p.update_ops_per_sec / 1000.0),
                format!("{:.1}", p.scan_latency_ns / 1000.0),
                format!("{:.2}x", p.speedup_vs_unsharded),
            ]
        })
        .collect();
    Table {
        id: "E8".into(),
        title: data.sweep.description.clone(),
        headers: vec![
            "shards".into(),
            "dist".into(),
            "update steps".into(),
            "scan steps".into(),
            "update kops/s".into(),
            "scan µs".into(),
            "update-work speedup vs 1 shard".into(),
        ],
        rows,
    }
}

/// One measured row of experiment E9: both cell implementations at one
/// (thread count, distribution) point.
#[derive(Clone, Debug)]
pub struct E9Point {
    /// Number of worker threads (each mixes updates and r-wide scans).
    pub threads: usize,
    /// `"uniform"` or `"zipf"`.
    pub dist: &'static str,
    /// Aggregate update+scan throughput of the `RwLock`-guarded baseline
    /// cell, in operations per second.
    pub rwlock_ops_per_sec: f64,
    /// Aggregate update+scan throughput of the lock-free cell, in operations
    /// per second.
    pub lockfree_ops_per_sec: f64,
    /// `lockfree_ops_per_sec / rwlock_ops_per_sec`.
    pub speedup: f64,
}

/// The raw data behind experiment E9 (also serialized to `BENCH_E9.json`).
#[derive(Clone, Debug)]
pub struct E9Data {
    /// Number of cells in the bank the threads hammer.
    pub m: usize,
    /// Cells read per scan operation.
    pub r: usize,
    /// Operations per thread at each point.
    pub ops_per_thread: usize,
    /// One entry per (thread count × distribution).
    pub points: Vec<E9Point>,
}

impl E9Data {
    /// The experiment description used by the table and the JSON document.
    pub fn description(&self) -> String {
        format!(
            "update+scan throughput vs thread count over a bank of {} VersionedCells \
             (every 3rd op stores; the rest scan {} cells under one epoch pin, the \
             access pattern of the algorithms' collect loops; uniform and Zipf(0.9) \
             indices; median of 5 interleaved repetitions): lock-free AtomicPtr+epoch \
             cell vs the RwLock-guarded baseline it replaced. Per-op base-object step \
             counts are identical by construction; the lock-free cell wins because a \
             read never writes the cell word, never blocks, and amortizes its epoch \
             entry across a whole scan.",
            self.m, self.r
        )
    }

    /// Serializes the data for `BENCH_E9.json`.
    pub fn to_json(&self) -> psnap_json::Json {
        use psnap_json::Json;
        Json::obj([
            ("experiment", Json::Str("E9".into())),
            ("description", Json::Str(self.description())),
            ("m", Json::Num(self.m as f64)),
            ("r", Json::Num(self.r as f64)),
            ("ops_per_thread", Json::Num(self.ops_per_thread as f64)),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        ("threads", Json::Num(p.threads as f64)),
                        ("dist", Json::Str(p.dist.into())),
                        ("rwlock_ops_per_sec", Json::Num(p.rwlock_ops_per_sec)),
                        ("lockfree_ops_per_sec", Json::Num(p.lockfree_ops_per_sec)),
                        ("speedup_vs_rwlock", Json::Num(p.speedup)),
                    ])
                })),
            ),
        ])
    }
}

/// The cell surface E9 drives. Both implementations expose the identical
/// `VersionedCell` API; this trait only erases the type for the measurement
/// loop.
trait ContentionCell: Send + Sync + Sized + 'static {
    fn make(initial: u64) -> Self;
    fn read_value(&self) -> u64;
    fn write_value(&self, v: u64);
}

impl ContentionCell for psnap_shmem::VersionedCell<u64> {
    fn make(initial: u64) -> Self {
        Self::new(initial)
    }
    fn read_value(&self) -> u64 {
        *self.load().value()
    }
    fn write_value(&self, v: u64) {
        self.store(v);
    }
}

impl ContentionCell for psnap_shmem::RwLockVersionedCell<u64> {
    fn make(initial: u64) -> Self {
        Self::new(initial)
    }
    fn read_value(&self) -> u64 {
        *self.load().value()
    }
    fn write_value(&self, v: u64) {
        self.store(v);
    }
}

/// Aggregate update+scan throughput (ops/sec) of one cell implementation at
/// one (threads, distribution) point. Every 3rd thread op is a store; the
/// others scan `r` cells under a single epoch pin — exactly the access
/// pattern of the snapshot algorithms, whose `collect` loop pins once and
/// then reads every requested register. Throughput counts each store and
/// each whole scan as one operation and divides by the slowest thread's wall
/// clock (all threads start together on a barrier).
fn e9_cell_point<C: ContentionCell>(
    threads: usize,
    m: usize,
    r: usize,
    ops: usize,
    zipf_s: Option<f64>,
) -> f64 {
    use psnap_workloads::IndexDist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let bank: Vec<C> = (0..m).map(|i| C::make(i as u64)).collect();
    let dist = match zipf_s {
        Some(s) => IndexDist::zipf(m, s),
        None => IndexDist::uniform(m),
    };
    let barrier = std::sync::Barrier::new(threads);
    let mut longest_wall = std::time::Duration::ZERO;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let bank = &bank;
            let dist = dist.clone();
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                // Pregenerate the whole op sequence: index sampling (ChaCha
                // draws, distinct-set retries, per-scan Vec allocation) costs
                // more than a cell op and would otherwise dominate — and
                // equally dilute — both sides of the measurement.
                let mut rng = StdRng::seed_from_u64(0xE9 ^ ((t as u64) << 17));
                let store_targets: Vec<usize> = (0..ops.div_ceil(3))
                    .map(|_| dist.sample(&mut rng))
                    .collect();
                let scan_sets: Vec<Vec<usize>> = (0..ops - store_targets.len())
                    .map(|_| dist.sample_set(&mut rng, r))
                    .collect();
                let mut checksum = 0u64;
                let (mut stores, mut scans) = (0usize, 0usize);
                barrier.wait();
                let t0 = std::time::Instant::now();
                for k in 0..ops {
                    if k % 3 == 0 {
                        bank[store_targets[stores]].write_value((k as u64) << 8 | t as u64);
                        stores += 1;
                    } else {
                        // One pin per scan for BOTH cells, deliberately: the
                        // algorithms' collect loop pins unconditionally
                        // around its reads, whatever cell implementation
                        // backs the registers, so this is the caller pattern
                        // either cell actually sees (for the RwLock cell the
                        // pin is pure, equal-on-both-sides overhead).
                        let _pin = psnap_shmem::epoch::pin();
                        for &idx in &scan_sets[scans] {
                            checksum = checksum.wrapping_add(bank[idx].read_value());
                        }
                        scans += 1;
                    }
                }
                let wall = t0.elapsed();
                // Keep the reads observable so the loop cannot be elided.
                std::hint::black_box(checksum);
                wall
            }));
        }
        for h in handles {
            longest_wall = longest_wall.max(h.join().expect("E9 worker panicked"));
        }
    });
    if longest_wall.is_zero() {
        0.0
    } else {
        (threads * ops) as f64 / longest_wall.as_secs_f64()
    }
}

/// Runs the E9 measurement: update+scan throughput vs thread count, for the
/// lock-free cell and the `RwLock` baseline, uniform and Zipf.
///
/// Each (threads, dist) point measures both cells five times, interleaved
/// (rwlock, lockfree, rwlock, …), and reports the per-cell **median** — on a
/// shared host a single repetition can absorb a scheduler hiccup, and
/// interleaving keeps slow system phases from landing entirely on one cell.
pub fn e9_cell_contention_data(effort: Effort) -> E9Data {
    use psnap_shmem::{RwLockVersionedCell, VersionedCell};
    let m = 256;
    let r = 8;
    // Cell ops are sub-µs; scale the per-thread batch up so each measurement
    // window is long enough that scheduler bursts average out inside it
    // instead of being sampled by it.
    let ops = effort.ops * 50;
    let median = |mut xs: [f64; 5]| {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[2]
    };
    let mut points = Vec::new();
    for (dist, zipf_s) in [("uniform", None), ("zipf", Some(0.9f64))] {
        for threads in [1usize, 2, 4, 8] {
            let mut rw = [0.0f64; 5];
            let mut lf = [0.0f64; 5];
            for rep in 0..5 {
                // Alternate which cell runs first so a systematic host phase
                // (frequency ramp, page-cache state) cannot always land on
                // the same side.
                if rep % 2 == 0 {
                    rw[rep] = e9_cell_point::<RwLockVersionedCell<u64>>(threads, m, r, ops, zipf_s);
                    lf[rep] = e9_cell_point::<VersionedCell<u64>>(threads, m, r, ops, zipf_s);
                } else {
                    lf[rep] = e9_cell_point::<VersionedCell<u64>>(threads, m, r, ops, zipf_s);
                    rw[rep] = e9_cell_point::<RwLockVersionedCell<u64>>(threads, m, r, ops, zipf_s);
                }
            }
            let rwlock = median(rw);
            let lockfree = median(lf);
            points.push(E9Point {
                threads,
                dist,
                rwlock_ops_per_sec: rwlock,
                lockfree_ops_per_sec: lockfree,
                speedup: if rwlock > 0.0 { lockfree / rwlock } else { 0.0 },
            });
        }
    }
    E9Data {
        m,
        r,
        ops_per_thread: ops,
        points,
    }
}

/// E9 — lock-free cell vs `RwLock` baseline under contention.
pub fn e9_cell_contention(effort: Effort) -> Table {
    e9_cell_contention_table(&e9_cell_contention_data(effort))
}

/// Renders already-measured E9 data as a table (lets the harness emit the
/// markdown table and `BENCH_E9.json` from one measurement run).
pub fn e9_cell_contention_table(data: &E9Data) -> Table {
    let rows = data
        .points
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                p.dist.to_string(),
                format!("{:.0}", p.rwlock_ops_per_sec / 1000.0),
                format!("{:.0}", p.lockfree_ops_per_sec / 1000.0),
                format!("{:.2}x", p.speedup),
            ]
        })
        .collect();
    Table {
        id: "E9".into(),
        title: data.description(),
        headers: vec![
            "threads".into(),
            "dist".into(),
            "rwlock kops/s".into(),
            "lock-free kops/s".into(),
            "lock-free speedup".into(),
        ],
        rows,
    }
}

/// One measured row of experiment E10: batched vs looped single updates for
/// one (implementation, distribution, batch size) point.
#[derive(Clone, Debug)]
pub struct E10Point {
    /// Implementation label (`ImplKind::label`).
    pub impl_label: &'static str,
    /// Shard count of the measured object (1 = the unsharded `Cas` object).
    pub shards: usize,
    /// `"uniform"` or `"zipf"`.
    pub dist: &'static str,
    /// Components written per batch.
    pub batch: usize,
    /// Mean base-object steps per *component written* when the batch is
    /// applied with one `update_many` call.
    pub batched_steps_per_component: f64,
    /// Mean base-object steps per component written when the same component
    /// sets are applied as loops of single `update` calls.
    pub looped_steps_per_component: f64,
    /// Component writes per second via `update_many` (wall clock).
    pub batched_comps_per_sec: f64,
    /// Component writes per second via looped single updates (wall clock).
    pub looped_comps_per_sec: f64,
    /// `looped_steps_per_component / batched_steps_per_component` — the
    /// paper's cost-model speedup of batching.
    pub step_speedup: f64,
    /// `batched_comps_per_sec / looped_comps_per_sec` (wall clock, secondary
    /// evidence on shared hosts).
    pub throughput_speedup: f64,
}

/// The raw data behind experiment E10 (also serialized to `BENCH_E10.json`).
#[derive(Clone, Debug)]
pub struct E10Data {
    /// Number of components of each measured object.
    pub m: usize,
    /// Batches measured per point.
    pub ops: usize,
    /// Continuously scanning background processes per point.
    pub scanners: usize,
    /// One entry per (implementation × distribution × batch size).
    pub points: Vec<E10Point>,
}

impl E10Data {
    /// The experiment description used by the table and the JSON document.
    pub fn description(&self) -> String {
        format!(
            "atomic batched updates (update_many) vs looped single updates: base-object \
             steps and wall-clock throughput per component written, swept **jointly** \
             over shard count (1 = unsharded Cas, then 2/4/8 contiguous shards) × batch \
             size, with {} scanners continuously announcing (m = {}, uniform and \
             Zipf(0.9) component selection). Batching pays the getSet + helping-scan \
             cost once per batch instead of once per component, so steps per component \
             fall as the batch grows; sharding additionally splits each batch into \
             per-shard sub-batches, amortizing the latch check and epoch bumps — the \
             grid shows where the two effects compose and where a batch spread over \
             many shards stops amortizing.",
            self.scanners, self.m
        )
    }

    /// Serializes the data for `BENCH_E10.json`.
    pub fn to_json(&self) -> psnap_json::Json {
        use psnap_json::Json;
        Json::obj([
            ("experiment", Json::Str("E10".into())),
            ("description", Json::Str(self.description())),
            ("m", Json::Num(self.m as f64)),
            ("ops", Json::Num(self.ops as f64)),
            ("scanners", Json::Num(self.scanners as f64)),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        ("impl", Json::Str(p.impl_label.into())),
                        ("shards", Json::Num(p.shards as f64)),
                        ("dist", Json::Str(p.dist.into())),
                        ("batch", Json::Num(p.batch as f64)),
                        (
                            "batched_steps_per_component",
                            Json::Num(p.batched_steps_per_component),
                        ),
                        (
                            "looped_steps_per_component",
                            Json::Num(p.looped_steps_per_component),
                        ),
                        ("batched_comps_per_sec", Json::Num(p.batched_comps_per_sec)),
                        ("looped_comps_per_sec", Json::Num(p.looped_comps_per_sec)),
                        ("step_speedup", Json::Num(p.step_speedup)),
                        ("throughput_speedup", Json::Num(p.throughput_speedup)),
                    ])
                })),
            ),
        ])
    }
}

/// One E10 measurement: the same pregenerated component sets are applied once
/// as `update_many` batches and once as loops of single updates, while
/// `scanners` background processes scan continuously (announcements stay
/// live, so the helping cost both paths amortize differently is real).
/// Returns `(batched steps/component, looped steps/component, batched
/// components/sec, looped components/sec)`.
fn e10_point(
    kind: ImplKind,
    m: usize,
    batch: usize,
    ops: usize,
    scanners: usize,
    zipf_s: Option<f64>,
) -> (f64, f64, f64, f64) {
    use psnap_workloads::IndexDist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let snapshot = kind.build(m, 1 + scanners, 0);
    let dist = match zipf_s {
        Some(s) => IndexDist::zipf(m, s),
        None => IndexDist::uniform(m),
    };
    let mut rng = StdRng::seed_from_u64(0xE10 ^ (batch as u64) << 8);
    let sets: Vec<Vec<usize>> = (0..ops).map(|_| dist.sample_set(&mut rng, batch)).collect();
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in 0..scanners {
            let snapshot = Arc::clone(&snapshot);
            let dist = dist.clone();
            let stop = Arc::clone(&stop);
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xE10AB ^ ((s as u64) << 13));
                while !stop.load(Ordering::Relaxed) {
                    let comps = dist.sample_set(&mut rng, 8);
                    let _ = snapshot.scan(ProcessId(1 + s), &comps);
                }
            }));
        }
        // Alternate looped and batched application of the same sets so both
        // paths face the same background scanner phases.
        let mut batched_steps = 0u64;
        let mut looped_steps = 0u64;
        let mut batched_wall = std::time::Duration::ZERO;
        let mut looped_wall = std::time::Duration::ZERO;
        let mut value = 1u64;
        for set in &sets {
            let writes: Vec<(usize, u64)> = set.iter().map(|&c| (c, value)).collect();
            value += 1;
            let scope_steps = StepScope::start();
            let t0 = std::time::Instant::now();
            for &(c, v) in &writes {
                snapshot.update(ProcessId(0), c, v);
            }
            looped_wall += t0.elapsed();
            looped_steps += scope_steps.finish().total();

            let writes: Vec<(usize, u64)> = set.iter().map(|&c| (c, value)).collect();
            value += 1;
            let scope_steps = StepScope::start();
            let t0 = std::time::Instant::now();
            snapshot.update_many(ProcessId(0), &writes);
            batched_wall += t0.elapsed();
            batched_steps += scope_steps.finish().total();
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().expect("E10 scanner panicked");
        }
        let components = (ops * batch) as f64;
        (
            batched_steps as f64 / components,
            looped_steps as f64 / components,
            if batched_wall.is_zero() {
                0.0
            } else {
                components / batched_wall.as_secs_f64()
            },
            if looped_wall.is_zero() {
                0.0
            } else {
                components / looped_wall.as_secs_f64()
            },
        )
    })
}

/// Runs the E10 measurement: batched vs looped updates across batch sizes,
/// for the Figure 3 object and the 4-way sharded composition, uniform and
/// Zipf.
pub fn e10_batched_updates_data(effort: Effort) -> E10Data {
    let m = 256;
    let scanners = 2;
    let ops = effort.ops;
    let mut points = Vec::new();
    // The ROADMAP follow-on: sweep shard count × batch size *jointly* rather
    // than fixing the shard count at 4.
    for shards in [1usize, 2, 4, 8] {
        let kind = if shards == 1 {
            ImplKind::Cas
        } else {
            ImplKind::sharded_cas(shards, psnap_shard::Partition::Contiguous)
        };
        for (dist, zipf_s) in [("uniform", None), ("zipf", Some(0.9f64))] {
            for batch in [2usize, 4, 8, 16] {
                let (batched_steps, looped_steps, batched_tput, looped_tput) =
                    e10_point(kind, m, batch, ops, scanners, zipf_s);
                points.push(E10Point {
                    impl_label: kind.label(),
                    shards,
                    dist,
                    batch,
                    batched_steps_per_component: batched_steps,
                    looped_steps_per_component: looped_steps,
                    batched_comps_per_sec: batched_tput,
                    looped_comps_per_sec: looped_tput,
                    step_speedup: if batched_steps > 0.0 {
                        looped_steps / batched_steps
                    } else {
                        0.0
                    },
                    throughput_speedup: if looped_tput > 0.0 {
                        batched_tput / looped_tput
                    } else {
                        0.0
                    },
                });
            }
        }
    }
    E10Data {
        m,
        ops,
        scanners,
        points,
    }
}

/// E10 — atomic batched updates vs looped single updates.
pub fn e10_batched_updates(effort: Effort) -> Table {
    e10_batched_updates_table(&e10_batched_updates_data(effort))
}

/// Renders already-measured E10 data as a table (lets the harness emit the
/// markdown table and `BENCH_E10.json` from one measurement run).
pub fn e10_batched_updates_table(data: &E10Data) -> Table {
    let rows = data
        .points
        .iter()
        .map(|p| {
            vec![
                p.impl_label.to_string(),
                p.shards.to_string(),
                p.dist.to_string(),
                p.batch.to_string(),
                format!("{:.1}", p.batched_steps_per_component),
                format!("{:.1}", p.looped_steps_per_component),
                format!("{:.2}x", p.step_speedup),
                format!("{:.0}", p.batched_comps_per_sec / 1000.0),
                format!("{:.0}", p.looped_comps_per_sec / 1000.0),
                format!("{:.2}x", p.throughput_speedup),
            ]
        })
        .collect();
    Table {
        id: "E10".into(),
        title: data.description(),
        headers: vec![
            "impl".into(),
            "shards".into(),
            "dist".into(),
            "batch".into(),
            "batched steps/comp".into(),
            "looped steps/comp".into(),
            "step speedup".into(),
            "batched kcomps/s".into(),
            "looped kcomps/s".into(),
            "throughput speedup".into(),
        ],
        rows,
    }
}

/// One measured row of experiment E11: the service frontend at one
/// (backend, distribution, client count, coalescing mode) point.
#[derive(Clone, Debug)]
pub struct E11Point {
    /// Backing implementation label.
    pub backend: &'static str,
    /// `"uniform"` or `"zipf"`.
    pub dist: &'static str,
    /// Number of client threads driving the service.
    pub clients: usize,
    /// `"none"` (per-request backing scans), `"drain"` (merge whatever is
    /// pending), or `"window"` (accumulate for a fixed window first).
    pub mode: &'static str,
    /// Accumulation window in microseconds (0 for `none`/`drain`).
    pub window_us: f64,
    /// Aggregate client operations per second (submits + scans, wall clock
    /// of the slowest client).
    pub ops_per_sec: f64,
    /// Client-observed scan latency, 50th percentile (nanoseconds).
    pub scan_p50_ns: f64,
    /// Client-observed scan latency, 99th percentile (nanoseconds).
    pub scan_p99_ns: f64,
    /// Client-observed submit latency, 50th percentile (nanoseconds).
    pub submit_p50_ns: f64,
    /// Client-observed submit latency, 99th percentile (nanoseconds).
    pub submit_p99_ns: f64,
    /// Scan requests served via the backing path.
    pub client_scans: f64,
    /// Backing scans the service actually issued.
    pub backing_scans: f64,
    /// `client_scans / backing_scans` — scans answered per backing scan.
    pub coalesce_ratio: f64,
    /// Busy rejections absorbed by client retry loops (backpressure events).
    pub busy_rejections: f64,
    /// This point's `ops_per_sec` divided by the matching `none` point's —
    /// what coalescing buys end to end (1.0 for the `none` rows).
    pub throughput_vs_uncoalesced: f64,
}

/// The raw data behind experiment E11 (also serialized to `BENCH_E11.json`).
#[derive(Clone, Debug)]
pub struct E11Data {
    /// Components of the backing object.
    pub m: usize,
    /// Components per client scan.
    pub r: usize,
    /// Operations per client at each point.
    pub ops_per_client: usize,
    /// One entry per (backend × distribution × clients × mode).
    pub points: Vec<E11Point>,
}

impl E11Data {
    /// The experiment description used by the table and the JSON document.
    pub fn description(&self) -> String {
        format!(
            "psnap-serve service frontend: aggregate client throughput and p50/p99 \
             latency vs client count and scan-coalescing mode (m = {}, r = {}, every \
             8th client op an ingested update, the rest Fresh partial scans drawn \
             from a Zipf-popular pool of 12 query shapes — the serving-tier pattern \
             coalescing exists for: concurrent requests repeat and overlap; two \
             direct background updaters hammer the object throughout, so scans race \
             a write stream; uniform and Zipf(0.9) component placement of the query \
             shapes; Cas and 4-way-sharded backends). The `none` baseline answers \
             every scan request with its own backing scan; `drain` merges whatever \
             is pending via ShardRouter::plan_union into one deduplicated backing \
             scan; `window` first accumulates 200µs. The coalescing ratio is client \
             scans per backing scan (> 1 = merging), and throughput_vs_uncoalesced \
             compares each mode against `none` at the same point — under churn the \
             backing scan (helping, cross-shard validation retries) is the expensive \
             resource, and overlapping requests keep the union narrow, so paying the \
             scan once per union instead of once per request lifts throughput as \
             clients grow.",
            self.m, self.r
        )
    }

    /// Serializes the data for `BENCH_E11.json`.
    pub fn to_json(&self) -> psnap_json::Json {
        use psnap_json::Json;
        Json::obj([
            ("experiment", Json::Str("E11".into())),
            ("description", Json::Str(self.description())),
            ("m", Json::Num(self.m as f64)),
            ("r", Json::Num(self.r as f64)),
            ("ops_per_client", Json::Num(self.ops_per_client as f64)),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        ("backend", Json::Str(p.backend.into())),
                        ("dist", Json::Str(p.dist.into())),
                        ("clients", Json::Num(p.clients as f64)),
                        ("mode", Json::Str(p.mode.into())),
                        ("window_us", Json::Num(p.window_us)),
                        ("ops_per_sec", Json::Num(p.ops_per_sec)),
                        ("scan_p50_ns", Json::Num(p.scan_p50_ns)),
                        ("scan_p99_ns", Json::Num(p.scan_p99_ns)),
                        ("submit_p50_ns", Json::Num(p.submit_p50_ns)),
                        ("submit_p99_ns", Json::Num(p.submit_p99_ns)),
                        ("client_scans", Json::Num(p.client_scans)),
                        ("backing_scans", Json::Num(p.backing_scans)),
                        ("coalesce_ratio", Json::Num(p.coalesce_ratio)),
                        ("busy_rejections", Json::Num(p.busy_rejections)),
                        (
                            "throughput_vs_uncoalesced",
                            Json::Num(p.throughput_vs_uncoalesced),
                        ),
                    ])
                })),
            ),
        ])
    }
}

struct E11Measured {
    ops_per_sec: f64,
    scan_latency: Summary,
    submit_latency: Summary,
    client_scans: f64,
    backing_scans: f64,
    busy_rejections: f64,
}

/// One E11 point: `clients` threads drive a [`psnap_serve::SnapshotService`]
/// over a freshly built backing object, every 8th op an update submission,
/// the rest Fresh `r`-wide scans, all awaited; Busy rejections are retried
/// (and counted) after a yield, so backpressure shows up as latency rather
/// than loss.
///
/// Two **direct background updaters** hammer the backing object for the
/// whole window (process ids past the service's own). This is what a serving
/// tier actually faces — scans race a write stream — and it is what makes
/// the backing scan the expensive resource the coalescer amortizes: under
/// churn a Figure-3 scan pays for helping and re-reads, and a cross-shard
/// scan pays validation retries, once per *backing* scan rather than once
/// per client request.
fn e11_point(
    kind: ImplKind,
    m: usize,
    r: usize,
    clients: usize,
    ops: usize,
    zipf_s: Option<f64>,
    coalescing: psnap_serve::Coalescing,
) -> E11Measured {
    use psnap_serve::{Executor, Freshness, ServiceConfig, SnapshotService, SubmitError};
    use psnap_workloads::IndexDist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let bg_updaters = 2usize;
    let snapshot = kind.build(m, 2 + bg_updaters, 0);
    let stop_bg = Arc::new(AtomicBool::new(false));
    let bg_handles: Vec<_> = (0..bg_updaters)
        .map(|u| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop_bg);
            let dist = match zipf_s {
                Some(s) => IndexDist::zipf(m, s),
                None => IndexDist::uniform(m),
            };
            std::thread::spawn(move || {
                use rand::SeedableRng as _;
                let mut rng = rand::rngs::StdRng::seed_from_u64(0xB6 ^ ((u as u64) << 5));
                let mut v = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    snapshot.update(ProcessId(2 + u), dist.sample(&mut rng), v);
                    v += 1;
                }
            })
        })
        .collect();
    let executor = Executor::new(2);
    let service = SnapshotService::start(
        Arc::clone(&snapshot),
        ServiceConfig {
            coalescing,
            ingest_capacity: 64,
            scan_capacity: 1024,
            ..ServiceConfig::default()
        },
        &executor,
    );
    let dist = match zipf_s {
        Some(s) => IndexDist::zipf(m, s),
        None => IndexDist::uniform(m),
    };
    // Clients issue scans from a shared pool of popular query shapes
    // (component sets), Zipf-popular — the serving-tier pattern scan
    // coalescing exists for (many users watching overlapping hot data, the
    // cooperative-scan scenario): concurrent requests frequently repeat or
    // overlap, so the union stays narrow while the per-scan fixed costs
    // (announcement, helping, cross-shard validation) are paid once.
    let queries: Vec<Vec<usize>> = {
        let mut rng = StdRng::seed_from_u64(0xE110);
        (0..12).map(|_| dist.sample_set(&mut rng, r)).collect()
    };
    let query_popularity = IndexDist::zipf(queries.len(), 1.0);
    let barrier = std::sync::Barrier::new(clients);
    let mut scan_latency = Vec::new();
    let mut submit_latency = Vec::new();
    let mut busy = 0u64;
    let mut longest_wall = std::time::Duration::ZERO;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let client = service.client();
            let dist = dist.clone();
            let queries = &queries;
            let query_popularity = query_popularity.clone();
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xE11 ^ ((c as u64) << 11));
                let mut scans = Vec::with_capacity(ops);
                let mut submits = Vec::with_capacity(ops / 8 + 1);
                let mut busy = 0u64;
                barrier.wait();
                let t_start = std::time::Instant::now();
                for k in 0..ops {
                    if k % 8 == 0 {
                        let component = dist.sample(&mut rng);
                        let t0 = std::time::Instant::now();
                        loop {
                            match client.submit(component, (k as u64) << 8 | c as u64) {
                                Ok(ticket) => {
                                    ticket.wait();
                                    break;
                                }
                                Err(SubmitError::Busy) => {
                                    busy += 1;
                                    std::thread::yield_now();
                                }
                                Err(SubmitError::Closed) => panic!("service closed mid-run"),
                            }
                        }
                        submits.push(t0.elapsed().as_nanos() as f64);
                    } else {
                        let components = queries[query_popularity.sample(&mut rng)].clone();
                        let t0 = std::time::Instant::now();
                        loop {
                            match client.scan(components.clone(), Freshness::Fresh) {
                                Ok(ticket) => {
                                    let values = ticket.wait();
                                    debug_assert_eq!(values.len(), components.len());
                                    break;
                                }
                                Err(SubmitError::Busy) => {
                                    busy += 1;
                                    std::thread::yield_now();
                                }
                                Err(SubmitError::Closed) => panic!("service closed mid-run"),
                            }
                        }
                        scans.push(t0.elapsed().as_nanos() as f64);
                    }
                }
                (scans, submits, busy, t_start.elapsed())
            }));
        }
        for h in handles {
            let (scans, submits, b, wall) = h.join().expect("E11 client panicked");
            scan_latency.extend(scans);
            submit_latency.extend(submits);
            busy += b;
            longest_wall = longest_wall.max(wall);
        }
    });
    stop_bg.store(true, Ordering::Relaxed);
    for h in bg_handles {
        h.join().expect("E11 background updater panicked");
    }
    let stats = service.stats();
    service.shutdown();
    E11Measured {
        ops_per_sec: if longest_wall.is_zero() {
            0.0
        } else {
            (clients * ops) as f64 / longest_wall.as_secs_f64()
        },
        scan_latency: Summary::of(&scan_latency),
        submit_latency: Summary::of(&submit_latency),
        client_scans: stats.scans_served_backing as f64,
        backing_scans: stats.backing_scans as f64,
        busy_rejections: busy as f64,
    }
}

/// Runs the E11 measurement: the service frontend across backends,
/// distributions, client counts and coalescing modes.
pub fn e11_service_data(effort: Effort) -> E11Data {
    use psnap_serve::Coalescing;
    let m = 256;
    let r = 16;
    let ops = effort.ops * 2;
    let modes: [(&'static str, Coalescing); 3] = [
        ("none", Coalescing::Disabled),
        ("drain", Coalescing::Window(std::time::Duration::ZERO)),
        (
            "window",
            Coalescing::Window(std::time::Duration::from_micros(200)),
        ),
    ];
    let mut points = Vec::new();
    for (backend, kind) in [
        ("fig3-cas", ImplKind::Cas),
        ("sharded-cas-k4", ImplKind::SHARDED_CAS_4),
    ] {
        for (dist, zipf_s) in [("uniform", None), ("zipf", Some(0.9f64))] {
            for clients in [2usize, 8] {
                let mut baseline: Option<f64> = None;
                for (mode, coalescing) in modes {
                    let measured = e11_point(kind, m, r, clients, ops, zipf_s, coalescing);
                    let base = *baseline.get_or_insert(measured.ops_per_sec);
                    points.push(E11Point {
                        backend,
                        dist,
                        clients,
                        mode,
                        window_us: match coalescing {
                            Coalescing::Window(w) => w.as_secs_f64() * 1e6,
                            Coalescing::Disabled => 0.0,
                            // E11 predates the adaptive policy and never uses
                            // it; E14 sweeps it. Record the cap if it appears.
                            Coalescing::Adaptive { max } => max.as_secs_f64() * 1e6,
                        },
                        ops_per_sec: measured.ops_per_sec,
                        scan_p50_ns: measured.scan_latency.p50,
                        scan_p99_ns: measured.scan_latency.p99,
                        submit_p50_ns: measured.submit_latency.p50,
                        submit_p99_ns: measured.submit_latency.p99,
                        client_scans: measured.client_scans,
                        backing_scans: measured.backing_scans,
                        coalesce_ratio: if measured.backing_scans > 0.0 {
                            measured.client_scans / measured.backing_scans
                        } else {
                            0.0
                        },
                        busy_rejections: measured.busy_rejections,
                        throughput_vs_uncoalesced: if base > 0.0 {
                            measured.ops_per_sec / base
                        } else {
                            0.0
                        },
                    });
                }
            }
        }
    }
    E11Data {
        m,
        r,
        ops_per_client: ops,
        points,
    }
}

/// E11 — the async service frontend: throughput, latency, coalescing.
pub fn e11_service(effort: Effort) -> Table {
    e11_service_table(&e11_service_data(effort))
}

/// Renders already-measured E11 data as a table (lets the harness emit the
/// markdown table and `BENCH_E11.json` from one measurement run).
pub fn e11_service_table(data: &E11Data) -> Table {
    let rows = data
        .points
        .iter()
        .map(|p| {
            vec![
                p.backend.to_string(),
                p.dist.to_string(),
                p.clients.to_string(),
                p.mode.to_string(),
                format!("{:.0}", p.ops_per_sec / 1000.0),
                format!("{:.1}", p.scan_p50_ns / 1000.0),
                format!("{:.1}", p.scan_p99_ns / 1000.0),
                format!("{:.1}", p.submit_p50_ns / 1000.0),
                format!("{:.2}", p.coalesce_ratio),
                format!("{:.0}", p.busy_rejections),
                format!("{:.2}x", p.throughput_vs_uncoalesced),
            ]
        })
        .collect();
    Table {
        id: "E11".into(),
        title: data.description(),
        headers: vec![
            "backend".into(),
            "dist".into(),
            "clients".into(),
            "mode".into(),
            "client kops/s".into(),
            "scan p50 µs".into(),
            "scan p99 µs".into(),
            "submit p50 µs".into(),
            "scans per backing scan".into(),
            "busy rejections".into(),
            "throughput vs none".into(),
        ],
        rows,
    }
}

/// One measured row of experiment E12: one (shard count × scan path) point
/// under the churn workload.
#[derive(Clone, Debug)]
pub struct E12Point {
    /// Implementation label (`ImplKind::label`).
    pub impl_label: &'static str,
    /// Shard count (1 = unsharded).
    pub shards: usize,
    /// `"mv"` (multiversioned one-shot scans) or `"coordinated"`
    /// (epoch-validated retry + coordinated fallback; plain `Cas` at 1
    /// shard, where the retrying consumer is the batch gate).
    pub path: &'static str,
    /// Mean base-object steps per cross-shard scan.
    pub scan_steps_mean: f64,
    /// 99th-percentile base-object steps per scan — the host-independent
    /// tail metric: retries and fallback drains show up here, a bounded
    /// one-shot read does not.
    pub scan_steps_p99: f64,
    /// Maximum observed steps for one scan.
    pub scan_steps_max: f64,
    /// Client-observed scan latency, 50th percentile (nanoseconds).
    pub scan_p50_ns: f64,
    /// Client-observed scan latency, 99th percentile (nanoseconds).
    pub scan_p99_ns: f64,
    /// This point's `scan_steps_p99` divided by the matching coordinated
    /// point's (1.0 for the coordinated rows themselves). The acceptance
    /// bar of the multiversioning tentpole: ≤ 1 under churn.
    pub steps_p99_vs_coordinated: f64,
}

/// The raw data behind experiment E12 (also serialized to `BENCH_E12.json`).
#[derive(Clone, Debug)]
pub struct E12Data {
    /// Components of each measured object.
    pub m: usize,
    /// Scan width at the widest point: each point's scan reads **one
    /// component per shard** (so its width equals its shard count, and
    /// every multi-shard scan is maximally cross-shard); this field records
    /// the maximum across the sweep.
    pub r: usize,
    /// Updater threads hammering exactly the scanned components.
    pub updaters: usize,
    /// Whether a cross-shard batch stream also runs.
    pub batchers: usize,
    /// Scans measured per point.
    pub ops: usize,
    /// One entry per (shard count × path).
    pub points: Vec<E12Point>,
}

impl E12Data {
    /// The experiment description used by the table and the JSON document.
    pub fn description(&self) -> String {
        format!(
            "wait-free cross-shard scans via multiversioning: steps-per-scan and \
             client latency of a scan reading one component per shard (width = \
             shard count, up to {}), under writer \
             churn ({} chaos-perturbed updaters hammering exactly the scanned \
             components plus {} cross-shard update_many stream), multiversioned \
             one-shot scans (MvSnapshot / MvShardedSnapshot, one shared-camera \
             timestamp per scan) vs the retry/fallback baseline (batch-gate \
             validation at 1 shard, epoch-validated retries + coordinated \
             fallback beyond; m = {}). The coordinated path's tail grows with \
             churn — every failed validation round re-reads epochs and re-runs \
             sub-scans, and the fallback waits out in-flight writers — while the \
             multiversioned scan's step count is bounded by its chain walks, so \
             its steps p99 stays at or below the baseline's everywhere (the \
             tentpole's acceptance bar, recorded in steps_p99_vs_coordinated).",
            self.r, self.updaters, self.batchers, self.m
        )
    }

    /// Serializes the data for `BENCH_E12.json`.
    pub fn to_json(&self) -> psnap_json::Json {
        use psnap_json::Json;
        Json::obj([
            ("experiment", Json::Str("E12".into())),
            ("description", Json::Str(self.description())),
            ("m", Json::Num(self.m as f64)),
            ("r", Json::Num(self.r as f64)),
            ("updaters", Json::Num(self.updaters as f64)),
            ("batchers", Json::Num(self.batchers as f64)),
            ("ops", Json::Num(self.ops as f64)),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        ("impl", Json::Str(p.impl_label.into())),
                        ("shards", Json::Num(p.shards as f64)),
                        ("path", Json::Str(p.path.into())),
                        ("scan_steps_mean", Json::Num(p.scan_steps_mean)),
                        ("scan_steps_p99", Json::Num(p.scan_steps_p99)),
                        ("scan_steps_max", Json::Num(p.scan_steps_max)),
                        ("scan_p50_ns", Json::Num(p.scan_p50_ns)),
                        ("scan_p99_ns", Json::Num(p.scan_p99_ns)),
                        (
                            "steps_p99_vs_coordinated",
                            Json::Num(p.steps_p99_vs_coordinated),
                        ),
                    ])
                })),
            ),
        ])
    }
}

struct E12Measured {
    scan_steps: Summary,
    scan_latency_ns: Summary,
}

/// One E12 point: one scanner measures `ops` scans spanning every shard
/// while `updaters` chaos-perturbed writers hammer exactly the scanned
/// components and one batcher streams cross-shard batches over them. The
/// chaos sleeps park writers at base-object boundaries — mid-update,
/// mid-batch — which is the schedule that drives the coordinated path into
/// its retry rounds and fallback drains and leaves the multiversioned path
/// untouched.
fn e12_point(kind: ImplKind, m: usize, shards: usize, updaters: usize, ops: usize) -> E12Measured {
    use psnap_shmem::chaos::{self, ChaosConfig};

    let batcher_pid = updaters;
    let scanner_pid = updaters + 1;
    let snapshot = kind.build(m, updaters + 2, 0);
    // One scanned component per shard: every scan is maximally cross-shard.
    let comps: Vec<usize> = (0..shards.max(1))
        .map(|s| s * (m / shards.max(1)))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for u in 0..updaters {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            let target = comps[u % comps.len()];
            scope.spawn(move || {
                let _chaos = chaos::enable(
                    0xE12 ^ ((u as u64) << 9),
                    ChaosConfig {
                        perturb_probability: 0.3,
                        sleep_probability: 0.3,
                        max_sleep_us: 100,
                        max_spin: 64,
                        ..ChaosConfig::default()
                    },
                );
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    snapshot.update(ProcessId(u), target, i + 1);
                    i += 1;
                }
            });
        }
        {
            // The batch stream: one update_many spanning every scanned
            // component, under the same parking chaos — the mid-batch seam.
            // At 1 shard a single scanned component would degenerate the
            // batch to a plain update (last-write-wins reduction) and never
            // enter the batch gate the baseline is about, so widen it to
            // two components there.
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            let mut comps = comps.clone();
            if comps.len() == 1 {
                comps.push(m / 2);
            }
            scope.spawn(move || {
                let _chaos = chaos::enable(
                    0xE12BA,
                    ChaosConfig {
                        perturb_probability: 0.3,
                        sleep_probability: 0.3,
                        max_sleep_us: 100,
                        max_spin: 64,
                        ..ChaosConfig::default()
                    },
                );
                let mut v = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    let writes: Vec<(usize, u64)> = comps.iter().map(|&c| (c, v)).collect();
                    snapshot.update_many(ProcessId(batcher_pid), &writes);
                    v += 1;
                }
            });
        }
        let mut steps = Vec::with_capacity(ops);
        let mut latency = Vec::with_capacity(ops);
        // Let the churn ramp up before measuring.
        std::thread::sleep(std::time::Duration::from_millis(2));
        for _ in 0..ops {
            let scope_steps = StepScope::start();
            let t0 = std::time::Instant::now();
            let values = snapshot.scan(ProcessId(scanner_pid), &comps);
            latency.push(t0.elapsed().as_nanos() as f64);
            steps.push(scope_steps.finish().total());
            assert_eq!(values.len(), comps.len());
        }
        stop.store(true, Ordering::Relaxed);
        E12Measured {
            scan_steps: Summary::of_u64(&steps),
            scan_latency_ns: Summary::of(&latency),
        }
    })
}

/// Runs the E12 measurement: multiversioned vs retry/fallback scans under
/// writer churn, across shard counts.
pub fn e12_multiversion_data(effort: Effort) -> E12Data {
    let m = 64;
    let updaters = 4;
    let ops = effort.ops * 4;
    let mut points = Vec::new();
    for shards in [1usize, 2, 4] {
        let coordinated_kind = if shards == 1 {
            ImplKind::Cas
        } else {
            ImplKind::sharded_cas(shards, psnap_shard::Partition::Contiguous)
        };
        let mv_kind = if shards == 1 {
            ImplKind::Mv
        } else {
            ImplKind::mv_sharded(shards, psnap_shard::Partition::Contiguous)
        };
        let coordinated = e12_point(coordinated_kind, m, shards, updaters, ops);
        let mv = e12_point(mv_kind, m, shards, updaters, ops);
        let baseline_p99 = coordinated.scan_steps.p99;
        for (kind, path, measured) in [
            (coordinated_kind, "coordinated", coordinated),
            (mv_kind, "mv", mv),
        ] {
            points.push(E12Point {
                impl_label: kind.label(),
                shards,
                path,
                scan_steps_mean: measured.scan_steps.mean,
                scan_steps_p99: measured.scan_steps.p99,
                scan_steps_max: measured.scan_steps.max,
                scan_p50_ns: measured.scan_latency_ns.p50,
                scan_p99_ns: measured.scan_latency_ns.p99,
                steps_p99_vs_coordinated: if baseline_p99 > 0.0 {
                    measured.scan_steps.p99 / baseline_p99
                } else {
                    0.0
                },
            });
        }
    }
    E12Data {
        m,
        r: 4,
        updaters,
        batchers: 1,
        ops,
        points,
    }
}

/// E12 — wait-free multiversioned scans vs the retry/fallback baseline.
pub fn e12_multiversion(effort: Effort) -> Table {
    e12_multiversion_table(&e12_multiversion_data(effort))
}

/// Renders already-measured E12 data as a table (lets the harness emit the
/// markdown table and `BENCH_E12.json` from one measurement run).
pub fn e12_multiversion_table(data: &E12Data) -> Table {
    let rows = data
        .points
        .iter()
        .map(|p| {
            vec![
                p.shards.to_string(),
                p.path.to_string(),
                p.impl_label.to_string(),
                format!("{:.1}", p.scan_steps_mean),
                format!("{:.0}", p.scan_steps_p99),
                format!("{:.0}", p.scan_steps_max),
                format!("{:.1}", p.scan_p50_ns / 1000.0),
                format!("{:.1}", p.scan_p99_ns / 1000.0),
                format!("{:.2}x", p.steps_p99_vs_coordinated),
            ]
        })
        .collect();
    Table {
        id: "E12".into(),
        title: data.description(),
        headers: vec![
            "shards".into(),
            "path".into(),
            "impl".into(),
            "scan steps (mean)".into(),
            "scan steps (p99)".into(),
            "scan steps (max)".into(),
            "scan p50 µs".into(),
            "scan p99 µs".into(),
            "steps p99 vs coordinated".into(),
        ],
        rows,
    }
}

/// One grid point of experiment E13: the same E10-style workload measured
/// with the observability layer recording and with it disabled.
#[derive(Clone, Debug)]
pub struct E13Point {
    /// Implementation label (`ImplKind::label`).
    pub impl_label: &'static str,
    /// Shard count of the measured object.
    pub shards: usize,
    /// `"uniform"` or `"zipf"`.
    pub dist: &'static str,
    /// Components written per batch.
    pub batch: usize,
    /// Mean base-object steps per component written, obs **disabled**.
    pub off_steps_per_component: f64,
    /// Mean base-object steps per component written, obs **enabled**.
    pub on_steps_per_component: f64,
    /// Component writes per second, obs **disabled**.
    pub off_comps_per_sec: f64,
    /// Component writes per second, obs **enabled**.
    pub on_comps_per_sec: f64,
    /// Step-count overhead of recording, percent (must be 0: metrics never
    /// call `steps::record`, so the paper's cost metric is unperturbed by
    /// construction — this column *verifies* that claim).
    pub step_overhead_pct: f64,
    /// Wall-clock overhead of recording, percent (noisy per point; the
    /// aggregate is the acceptance number).
    pub wall_overhead_pct: f64,
}

/// The raw data behind experiment E13 (also serialized to `BENCH_E13.json`).
#[derive(Clone, Debug)]
pub struct E13Data {
    /// Number of components of each measured object.
    pub m: usize,
    /// Batches measured per point and obs state.
    pub ops: usize,
    /// Continuously scanning background processes per point.
    pub scanners: usize,
    /// One entry per (implementation × distribution × batch size).
    pub points: Vec<E13Point>,
    /// Grid-aggregate step overhead, percent (total steps on vs off).
    pub aggregate_step_overhead_pct: f64,
    /// Grid-aggregate wall-clock overhead, percent (total batched apply
    /// time on vs off over the whole grid — the < 3% acceptance number).
    pub aggregate_wall_overhead_pct: f64,
}

impl E13Data {
    /// The experiment description used by the table and the JSON document.
    pub fn description(&self) -> String {
        format!(
            "cost of the observability layer (psnap-obs): the E10 grid (shard count × \
             distribution × batch size, m = {}, {} scanners) run twice per point — \
             once with metric recording enabled (trace collection stays opt-in/off, \
             as in production), once with the global obs switch off. Recording never \
             calls steps::record, so any step delta is pure interleaving noise, not \
             instrumentation cost; wall-clock overhead is the price of the striped \
             counter adds and histogram records on the hot paths, acceptable below \
             3% on the grid aggregate.",
            self.m, self.scanners
        )
    }

    /// Serializes the data for `BENCH_E13.json`.
    pub fn to_json(&self) -> psnap_json::Json {
        use psnap_json::Json;
        Json::obj([
            ("experiment", Json::Str("E13".into())),
            ("description", Json::Str(self.description())),
            ("m", Json::Num(self.m as f64)),
            ("ops", Json::Num(self.ops as f64)),
            ("scanners", Json::Num(self.scanners as f64)),
            (
                "aggregate_step_overhead_pct",
                Json::Num(self.aggregate_step_overhead_pct),
            ),
            (
                "aggregate_wall_overhead_pct",
                Json::Num(self.aggregate_wall_overhead_pct),
            ),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        ("impl", Json::Str(p.impl_label.into())),
                        ("shards", Json::Num(p.shards as f64)),
                        ("dist", Json::Str(p.dist.into())),
                        ("batch", Json::Num(p.batch as f64)),
                        (
                            "off_steps_per_component",
                            Json::Num(p.off_steps_per_component),
                        ),
                        (
                            "on_steps_per_component",
                            Json::Num(p.on_steps_per_component),
                        ),
                        ("off_comps_per_sec", Json::Num(p.off_comps_per_sec)),
                        ("on_comps_per_sec", Json::Num(p.on_comps_per_sec)),
                        ("step_overhead_pct", Json::Num(p.step_overhead_pct)),
                        ("wall_overhead_pct", Json::Num(p.wall_overhead_pct)),
                    ])
                })),
            ),
        ])
    }
}

/// Runs the E13 measurement: the E10 grid, obs off vs obs on per point.
pub fn e13_obs_overhead_data(effort: Effort) -> E13Data {
    let m = 256;
    let scanners = 2;
    let ops = effort.ops;
    let mut points = Vec::new();
    let mut total_on_steps = 0.0f64;
    let mut total_off_steps = 0.0f64;
    let mut total_on_secs = 0.0f64;
    let mut total_off_secs = 0.0f64;
    let was_enabled = psnap_obs::enabled();
    for shards in [1usize, 2, 4, 8] {
        let kind = if shards == 1 {
            ImplKind::Cas
        } else {
            ImplKind::sharded_cas(shards, psnap_shard::Partition::Contiguous)
        };
        for (dist, zipf_s) in [("uniform", None), ("zipf", Some(0.9f64))] {
            for batch in [2usize, 4, 8, 16] {
                // Off first, then on: identical seeds, so both runs apply the
                // same component sets under the same scanner pressure.
                psnap_obs::set_enabled(false);
                let (off_steps, _, off_tput, _) = e10_point(kind, m, batch, ops, scanners, zipf_s);
                psnap_obs::set_enabled(true);
                let (on_steps, _, on_tput, _) = e10_point(kind, m, batch, ops, scanners, zipf_s);
                let components = (ops * batch) as f64;
                total_off_steps += off_steps * components;
                total_on_steps += on_steps * components;
                if off_tput > 0.0 {
                    total_off_secs += components / off_tput;
                }
                if on_tput > 0.0 {
                    total_on_secs += components / on_tput;
                }
                points.push(E13Point {
                    impl_label: kind.label(),
                    shards,
                    dist,
                    batch,
                    off_steps_per_component: off_steps,
                    on_steps_per_component: on_steps,
                    off_comps_per_sec: off_tput,
                    on_comps_per_sec: on_tput,
                    step_overhead_pct: overhead_pct(on_steps, off_steps),
                    wall_overhead_pct: if on_tput > 0.0 && off_tput > 0.0 {
                        overhead_pct(1.0 / on_tput, 1.0 / off_tput)
                    } else {
                        0.0
                    },
                });
            }
        }
    }
    psnap_obs::set_enabled(was_enabled);
    E13Data {
        m,
        ops,
        scanners,
        points,
        aggregate_step_overhead_pct: overhead_pct(total_on_steps, total_off_steps),
        aggregate_wall_overhead_pct: overhead_pct(total_on_secs, total_off_secs),
    }
}

/// `(on - off) / off`, in percent (0 when the baseline is 0).
fn overhead_pct(on: f64, off: f64) -> f64 {
    if off == 0.0 {
        0.0
    } else {
        (on - off) / off * 100.0
    }
}

/// E13 — the cost of the observability layer itself.
pub fn e13_obs_overhead(effort: Effort) -> Table {
    e13_obs_overhead_table(&e13_obs_overhead_data(effort))
}

/// Renders already-measured E13 data as a table (lets the harness emit the
/// markdown table and `BENCH_E13.json` from one measurement run).
pub fn e13_obs_overhead_table(data: &E13Data) -> Table {
    let mut rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            vec![
                p.impl_label.to_string(),
                p.shards.to_string(),
                p.dist.to_string(),
                p.batch.to_string(),
                format!("{:.1}", p.off_steps_per_component),
                format!("{:.1}", p.on_steps_per_component),
                format!("{:+.2}%", p.step_overhead_pct),
                format!("{:.0}", p.off_comps_per_sec / 1000.0),
                format!("{:.0}", p.on_comps_per_sec / 1000.0),
                format!("{:+.2}%", p.wall_overhead_pct),
            ]
        })
        .collect();
    rows.push(vec![
        "**aggregate**".into(),
        "—".into(),
        "—".into(),
        "—".into(),
        "—".into(),
        "—".into(),
        format!("{:+.2}%", data.aggregate_step_overhead_pct),
        "—".into(),
        "—".into(),
        format!("{:+.2}%", data.aggregate_wall_overhead_pct),
    ]);
    Table {
        id: "E13".into(),
        title: data.description(),
        headers: vec![
            "impl".into(),
            "shards".into(),
            "dist".into(),
            "batch".into(),
            "steps/comp (off)".into(),
            "steps/comp (on)".into(),
            "step overhead".into(),
            "kcomps/s (off)".into(),
            "kcomps/s (on)".into(),
            "wall overhead".into(),
        ],
        rows,
    }
}

/// One grid point of experiment E14: the service frontend under a freshness
/// mix, one (backend × stale fraction × clients × policy) cell.
#[derive(Clone, Debug)]
pub struct E14Point {
    /// Backend label (`ImplKind::label`).
    pub backend: &'static str,
    /// Fraction of client scans issued `AtMostStale` (the rest are Fresh).
    pub stale_frac: f64,
    /// Client threads driving the service.
    pub clients: usize,
    /// Coalescing policy label: `none`, `window-100us`, `window-400us`,
    /// `adaptive`.
    pub mode: &'static str,
    /// Aggregate client operations per second.
    pub ops_per_sec: f64,
    /// Client-observed scan latency percentiles (nanoseconds).
    pub scan_p50_ns: f64,
    /// Client-observed scan latency, 99th percentile (nanoseconds).
    pub scan_p99_ns: f64,
    /// Scans answered by the three serving tiers.
    pub served_mv: f64,
    /// Scans answered from a cached union.
    pub served_cache: f64,
    /// Scans answered by a backing scan.
    pub served_backing: f64,
    /// Backing union scans actually executed.
    pub backing_scans: f64,
    /// `served_mv / (served_mv + served_cache + served_backing)` — the mv
    /// stale-read hit ratio. 0 on backends without version history.
    pub mv_hit_ratio: f64,
    /// Median coalescing-window decision (nanoseconds); 0 under `none`,
    /// fixed under `window-*`, and whatever the controller chose under
    /// `adaptive`.
    pub window_p50_ns: f64,
    /// This point's throughput over the `none` baseline at the same cell.
    pub throughput_vs_none: f64,
    /// For `adaptive` rows: throughput over the **best fixed-window** row of
    /// the same cell (the tentpole's acceptance bar, ≥ 1 in aggregate).
    /// 1.0 for every other mode.
    pub throughput_vs_best_fixed: f64,
}

/// The raw data behind experiment E14 (also serialized to `BENCH_E14.json`).
#[derive(Clone, Debug)]
pub struct E14Data {
    /// Components of the backing object.
    pub m: usize,
    /// Components per scan.
    pub r: usize,
    /// Operations per client at each point.
    pub ops_per_client: usize,
    /// Staleness bound handed to `AtMostStale` requests (microseconds).
    pub stale_bound_us: f64,
    /// One entry per (backend × stale fraction × clients × policy).
    pub points: Vec<E14Point>,
}

impl E14Data {
    /// The experiment description used by the table and the JSON document.
    pub fn description(&self) -> String {
        format!(
            "fast-path scan serving: aggregate throughput and scan p50/p99 vs \
             client count × coalescing policy × freshness mix (m = {}, r = {}, \
             every 8th client op an ingested update, scans drawn from 12 \
             Zipf-popular query shapes, two direct background updaters; \
             `AtMostStale({}µs)` requests on a fraction of scans, the rest \
             Fresh; Cas and 4-way multiversioned-sharded backends, the sharded \
             rows running two parallel scan-server pids). Stale requests are \
             served cache-first, then from the backend's version chains \
             (`scan_stale`, a bounded targeted read of only the requested \
             registers), then by joining the next backing union — on the mv \
             backend a pure-stale mix therefore executes **zero** backing \
             scans (mv_hit_ratio + cache absorb everything). The `adaptive` \
             policy sizes the coalescing window from the observed arrival \
             rate and backing-scan latency, opening one only past break-even \
             and dispatching lone requests at an idle server immediately, so \
             it tracks the best fixed window at every client count \
             (throughput_vs_best_fixed) without per-deployment tuning.",
            self.m, self.r, self.stale_bound_us
        )
    }

    /// Serializes the data for `BENCH_E14.json`.
    pub fn to_json(&self) -> psnap_json::Json {
        use psnap_json::Json;
        Json::obj([
            ("experiment", Json::Str("E14".into())),
            ("description", Json::Str(self.description())),
            ("m", Json::Num(self.m as f64)),
            ("r", Json::Num(self.r as f64)),
            ("ops_per_client", Json::Num(self.ops_per_client as f64)),
            ("stale_bound_us", Json::Num(self.stale_bound_us)),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        ("backend", Json::Str(p.backend.into())),
                        ("stale_frac", Json::Num(p.stale_frac)),
                        ("clients", Json::Num(p.clients as f64)),
                        ("mode", Json::Str(p.mode.into())),
                        ("ops_per_sec", Json::Num(p.ops_per_sec)),
                        ("scan_p50_ns", Json::Num(p.scan_p50_ns)),
                        ("scan_p99_ns", Json::Num(p.scan_p99_ns)),
                        ("served_mv", Json::Num(p.served_mv)),
                        ("served_cache", Json::Num(p.served_cache)),
                        ("served_backing", Json::Num(p.served_backing)),
                        ("backing_scans", Json::Num(p.backing_scans)),
                        ("mv_hit_ratio", Json::Num(p.mv_hit_ratio)),
                        ("window_p50_ns", Json::Num(p.window_p50_ns)),
                        ("throughput_vs_none", Json::Num(p.throughput_vs_none)),
                        (
                            "throughput_vs_best_fixed",
                            Json::Num(p.throughput_vs_best_fixed),
                        ),
                    ])
                })),
            ),
        ])
    }
}

struct E14Measured {
    ops_per_sec: f64,
    scan_latency: Summary,
    served_mv: f64,
    served_cache: f64,
    served_backing: f64,
    backing_scans: f64,
    window_p50_ns: f64,
}

/// One E14 point: like [`e11_point`] but with a freshness mix — a seeded
/// coin issues each scan `AtMostStale(bound)` with probability `stale_frac`
/// — and, on sharded backends, two scan-server pids so disjoint unions run
/// in parallel.
#[allow(clippy::too_many_arguments)]
fn e14_point(
    kind: ImplKind,
    m: usize,
    r: usize,
    clients: usize,
    ops: usize,
    stale_frac: f64,
    stale_bound: std::time::Duration,
    scan_pids: usize,
    coalescing: psnap_serve::Coalescing,
) -> E14Measured {
    use psnap_serve::{Executor, Freshness, ServiceConfig, SnapshotService, SubmitError};
    use psnap_workloads::IndexDist;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let bg_updaters = 2usize;
    let service_pids = 1 + scan_pids; // drainer + scan-server pool
    let snapshot = kind.build(m, service_pids + bg_updaters, 0);
    let stop_bg = Arc::new(AtomicBool::new(false));
    let bg_handles: Vec<_> = (0..bg_updaters)
        .map(|u| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop_bg);
            let dist = IndexDist::zipf(m, 0.9);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xE14B6 ^ ((u as u64) << 5));
                let mut v = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    snapshot.update(ProcessId(service_pids + u), dist.sample(&mut rng), v);
                    v += 1;
                }
            })
        })
        .collect();
    let executor = Executor::new(2 + scan_pids.saturating_sub(1));
    let service = SnapshotService::start(
        Arc::clone(&snapshot),
        ServiceConfig {
            coalescing,
            ingest_capacity: 64,
            scan_capacity: 1024,
            scan_pids,
            ..ServiceConfig::default()
        },
        &executor,
    );
    let dist = IndexDist::zipf(m, 0.9);
    let queries: Vec<Vec<usize>> = {
        let mut rng = StdRng::seed_from_u64(0xE140);
        (0..12).map(|_| dist.sample_set(&mut rng, r)).collect()
    };
    let query_popularity = IndexDist::zipf(queries.len(), 1.0);
    let barrier = std::sync::Barrier::new(clients);
    let mut scan_latency = Vec::new();
    let mut longest_wall = std::time::Duration::ZERO;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let client = service.client();
            let dist = dist.clone();
            let queries = &queries;
            let query_popularity = query_popularity.clone();
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xE14 ^ ((c as u64) << 11));
                let mut scans = Vec::with_capacity(ops);
                barrier.wait();
                let t_start = std::time::Instant::now();
                for k in 0..ops {
                    if k % 8 == 0 {
                        let component = dist.sample(&mut rng);
                        loop {
                            match client.submit(component, (k as u64) << 8 | c as u64) {
                                Ok(ticket) => {
                                    ticket.wait();
                                    break;
                                }
                                Err(SubmitError::Busy) => std::thread::yield_now(),
                                Err(SubmitError::Closed) => panic!("service closed mid-run"),
                            }
                        }
                    } else {
                        let components = queries[query_popularity.sample(&mut rng)].clone();
                        let freshness = if rng.gen_bool(stale_frac) {
                            Freshness::AtMostStale(stale_bound)
                        } else {
                            Freshness::Fresh
                        };
                        let t0 = std::time::Instant::now();
                        loop {
                            match client.scan(components.clone(), freshness) {
                                Ok(ticket) => {
                                    let values = ticket.wait();
                                    debug_assert_eq!(values.len(), components.len());
                                    break;
                                }
                                Err(SubmitError::Busy) => std::thread::yield_now(),
                                Err(SubmitError::Closed) => panic!("service closed mid-run"),
                            }
                        }
                        scans.push(t0.elapsed().as_nanos() as f64);
                    }
                }
                (scans, t_start.elapsed())
            }));
        }
        for h in handles {
            let (scans, wall) = h.join().expect("E14 client panicked");
            scan_latency.extend(scans);
            longest_wall = longest_wall.max(wall);
        }
    });
    stop_bg.store(true, Ordering::Relaxed);
    for h in bg_handles {
        h.join().expect("E14 background updater panicked");
    }
    let stats = service.stats();
    service.shutdown();
    E14Measured {
        ops_per_sec: if longest_wall.is_zero() {
            0.0
        } else {
            (clients * ops) as f64 / longest_wall.as_secs_f64()
        },
        scan_latency: Summary::of(&scan_latency),
        served_mv: stats.scans_served_mv as f64,
        served_cache: stats.scans_served_cache as f64,
        served_backing: stats.scans_served_backing as f64,
        backing_scans: stats.backing_scans as f64,
        window_p50_ns: stats.window_ns.p50 as f64,
    }
}

/// Runs the E14 measurement: the freshness-mix × coalescing-policy grid on
/// the Cas and multiversioned-sharded backends.
pub fn e14_fastpath_data(effort: Effort) -> E14Data {
    use psnap_serve::Coalescing;
    let m = 256;
    let r = 16;
    let ops = effort.ops;
    let stale_bound = std::time::Duration::from_micros(500);
    let modes: [(&'static str, Coalescing); 4] = [
        ("none", Coalescing::Disabled),
        (
            "window-100us",
            Coalescing::Window(std::time::Duration::from_micros(100)),
        ),
        (
            "window-400us",
            Coalescing::Window(std::time::Duration::from_micros(400)),
        ),
        ("adaptive", Coalescing::adaptive()),
    ];
    let mut points = Vec::new();
    for (backend, kind, scan_pids) in [
        ("fig3-cas", ImplKind::Cas, 1usize),
        ("mv-sharded-k4", ImplKind::MV_SHARDED_4, 2usize),
    ] {
        for stale_frac in [0.0f64, 0.5, 1.0] {
            for clients in [2usize, 8] {
                let mut none_tput: Option<f64> = None;
                let mut best_fixed = 0.0f64;
                let mut cell = Vec::new();
                for (mode, coalescing) in modes {
                    let measured = e14_point(
                        kind,
                        m,
                        r,
                        clients,
                        ops,
                        stale_frac,
                        stale_bound,
                        scan_pids,
                        coalescing,
                    );
                    let base = *none_tput.get_or_insert(measured.ops_per_sec);
                    if mode.starts_with("window") {
                        best_fixed = best_fixed.max(measured.ops_per_sec);
                    }
                    let served =
                        measured.served_mv + measured.served_cache + measured.served_backing;
                    cell.push(E14Point {
                        backend,
                        stale_frac,
                        clients,
                        mode,
                        ops_per_sec: measured.ops_per_sec,
                        scan_p50_ns: measured.scan_latency.p50,
                        scan_p99_ns: measured.scan_latency.p99,
                        served_mv: measured.served_mv,
                        served_cache: measured.served_cache,
                        served_backing: measured.served_backing,
                        backing_scans: measured.backing_scans,
                        mv_hit_ratio: if served > 0.0 {
                            measured.served_mv / served
                        } else {
                            0.0
                        },
                        window_p50_ns: measured.window_p50_ns,
                        throughput_vs_none: if base > 0.0 {
                            measured.ops_per_sec / base
                        } else {
                            0.0
                        },
                        throughput_vs_best_fixed: 1.0,
                    });
                }
                for p in &mut cell {
                    if p.mode == "adaptive" && best_fixed > 0.0 {
                        p.throughput_vs_best_fixed = p.ops_per_sec / best_fixed;
                    }
                }
                points.extend(cell);
            }
        }
    }
    E14Data {
        m,
        r,
        ops_per_client: ops,
        stale_bound_us: stale_bound.as_secs_f64() * 1e6,
        points,
    }
}

/// E14 — fast-path scan serving: stale tiers and the adaptive window.
pub fn e14_fastpath(effort: Effort) -> Table {
    e14_fastpath_table(&e14_fastpath_data(effort))
}

/// Renders already-measured E14 data as a table (lets the harness emit the
/// markdown table and `BENCH_E14.json` from one measurement run).
pub fn e14_fastpath_table(data: &E14Data) -> Table {
    let rows = data
        .points
        .iter()
        .map(|p| {
            vec![
                p.backend.to_string(),
                format!("{:.0}%", p.stale_frac * 100.0),
                p.clients.to_string(),
                p.mode.to_string(),
                format!("{:.0}", p.ops_per_sec / 1000.0),
                format!("{:.1}", p.scan_p50_ns / 1000.0),
                format!("{:.1}", p.scan_p99_ns / 1000.0),
                format!("{:.2}", p.mv_hit_ratio),
                format!("{:.0}", p.backing_scans),
                format!("{:.1}", p.window_p50_ns / 1000.0),
                format!("{:.2}x", p.throughput_vs_none),
                if p.mode == "adaptive" {
                    format!("{:.2}x", p.throughput_vs_best_fixed)
                } else {
                    "—".into()
                },
            ]
        })
        .collect();
    Table {
        id: "E14".into(),
        title: data.description(),
        headers: vec![
            "backend".into(),
            "stale".into(),
            "clients".into(),
            "mode".into(),
            "client kops/s".into(),
            "scan p50 µs".into(),
            "scan p99 µs".into(),
            "mv hit ratio".into(),
            "backing scans".into(),
            "window p50 µs".into(),
            "vs none".into(),
            "vs best fixed".into(),
        ],
        rows,
    }
}

/// One grid point of experiment E15: a targeted reshard storm under live
/// Zipf traffic, one (backend × skew) cell.
#[derive(Clone, Debug)]
pub struct E15Point {
    /// Backend label (`ImplKind::label`). The multiversioned backend
    /// migrates behind the shared camera without quiescing traffic; the
    /// Figure-3 sharded backend is the deliberate drain-and-rebuild
    /// baseline, so the storm's latency cost lands on its rows.
    pub backend: &'static str,
    /// Zipf skew parameter shared by the update and scan distributions.
    pub zipf_s: f64,
    /// Owning shards (non-empty slot sets) before the storm.
    pub shards_before: usize,
    /// Owning shards after the storm.
    pub shards_after: usize,
    /// Reshard operations the storm actually applied.
    pub reshards: u64,
    /// Partition-map generation after the storm.
    pub generation: u64,
    /// Scan latency p50 on the static layout (nanoseconds).
    pub baseline_p50_ns: f64,
    /// Scan latency p99 on the static layout (nanoseconds).
    pub baseline_p99_ns: f64,
    /// Scan latency p50 while the storm ran (nanoseconds).
    pub reshard_p50_ns: f64,
    /// Scan latency p99 while the storm ran (nanoseconds).
    pub reshard_p99_ns: f64,
    /// Worst single scan observed during the storm (nanoseconds) — the
    /// drain-and-rebuild availability gap shows up here.
    pub worst_stall_ns: f64,
    /// `reshard_p99_ns / baseline_p99_ns`.
    pub p99_ratio: f64,
    /// Heat skew (hottest owning shard / mean owning shard) before the storm.
    pub skew_before: f64,
    /// Heat skew after the storm; targeted splits should pull it down.
    pub skew_after: f64,
    /// Scans that observed a per-component monotonicity violation (a torn
    /// or lost write). Must be 0 on every backend.
    pub torn_scans: u64,
    /// Scans that returned the wrong shape. Must be 0.
    pub failed_scans: u64,
}

/// The raw data behind experiment E15 (also serialized to `BENCH_E15.json`).
#[derive(Clone, Debug)]
pub struct E15Data {
    /// Components of the backing object.
    pub m: usize,
    /// Components per scan.
    pub r: usize,
    /// Scans measured per phase (baseline / storm / settle).
    pub ops_per_phase: usize,
    /// One entry per (backend × Zipf skew).
    pub points: Vec<E15Point>,
}

impl E15Data {
    /// The experiment description used by the table and the JSON document.
    pub fn description(&self) -> String {
        format!(
            "online resharding under live traffic: scan p50/p99 on a static \
             two-shard layout vs through a heat-targeted reshard storm \
             (split-hottest ×3 then merge-coldest), m = {}, r = {}, two \
             single-writer Zipf updaters running throughout, scans drawn \
             from 12 Zipf-popular query shapes. The multiversioned backend \
             migrates behind the shared timestamp camera — writers and \
             scanners keep running during the copy — while the Figure-3 \
             sharded backend drains and rebuilds under a latch, so its storm \
             p99 and worst stall absorb the full quiescence gap. Every scan \
             is checked for per-component monotonicity against the \
             single-writer discipline; torn_scans and failed_scans must be \
             zero on both backends (migration moves values exactly, across \
             every generation). Heat skew (hottest/mean owning shard) is \
             sampled before and after: targeted splits divide the hot \
             shard's load, so skew_after < skew_before under a skewed \
             distribution.",
            self.m, self.r
        )
    }

    /// Serializes the data for `BENCH_E15.json`.
    pub fn to_json(&self) -> psnap_json::Json {
        use psnap_json::Json;
        Json::obj([
            ("experiment", Json::Str("E15".into())),
            ("description", Json::Str(self.description())),
            ("m", Json::Num(self.m as f64)),
            ("r", Json::Num(self.r as f64)),
            ("ops_per_phase", Json::Num(self.ops_per_phase as f64)),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        ("backend", Json::Str(p.backend.into())),
                        ("zipf_s", Json::Num(p.zipf_s)),
                        ("shards_before", Json::Num(p.shards_before as f64)),
                        ("shards_after", Json::Num(p.shards_after as f64)),
                        ("reshards", Json::Num(p.reshards as f64)),
                        ("generation", Json::Num(p.generation as f64)),
                        ("baseline_p50_ns", Json::Num(p.baseline_p50_ns)),
                        ("baseline_p99_ns", Json::Num(p.baseline_p99_ns)),
                        ("reshard_p50_ns", Json::Num(p.reshard_p50_ns)),
                        ("reshard_p99_ns", Json::Num(p.reshard_p99_ns)),
                        ("worst_stall_ns", Json::Num(p.worst_stall_ns)),
                        ("p99_ratio", Json::Num(p.p99_ratio)),
                        ("skew_before", Json::Num(p.skew_before)),
                        ("skew_after", Json::Num(p.skew_after)),
                        ("torn_scans", Json::Num(p.torn_scans as f64)),
                        ("failed_scans", Json::Num(p.failed_scans as f64)),
                    ])
                })),
            ),
        ])
    }
}

/// Heat skew over the owning shards: hottest window delta / mean delta.
/// The heat vector grows across generations, so the (shorter) baseline is
/// zero-padded; emptied shards are excluded via `sizes`.
fn e15_heat_skew(before: &[u64], after: &[u64], sizes: &[usize]) -> f64 {
    let deltas: Vec<f64> = sizes
        .iter()
        .enumerate()
        .filter(|(_, &size)| size > 0)
        .map(|(i, _)| {
            let b = before.get(i).copied().unwrap_or(0);
            let a = after.get(i).copied().unwrap_or(0);
            a.saturating_sub(b) as f64
        })
        .collect();
    let total: f64 = deltas.iter().sum();
    if deltas.is_empty() || total <= 0.0 {
        return 1.0;
    }
    let mean = total / deltas.len() as f64;
    deltas.iter().cloned().fold(0.0f64, f64::max) / mean
}

/// One E15 point: two pinned single-writer updaters churn throughout; the
/// main thread is the scanner and checks per-component monotonicity on every
/// scan; a storm thread splits the hottest owning shard three times (scored
/// by heat-window delta, falling back to slot count when the heat signal is
/// flat) and then merges the coldest survivor. The storm phase loops until
/// the storm thread is done, so every migration happens under measured
/// scan + update traffic.
fn e15_point(kind: ImplKind, m: usize, r: usize, ops: usize, zipf_s: f64) -> E15Point {
    use psnap_core::ReshardOp;
    use psnap_workloads::IndexDist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let updaters = 2usize;
    // pids 0..updaters write, pid `updaters` scans; the resharder performs
    // no per-process snapshot operations.
    let snapshot = kind.build(m, updaters + 1, 0);
    let backend = kind.label();
    let stop = Arc::new(AtomicBool::new(false));
    let update_handles: Vec<_> = (0..updaters)
        .map(|u| {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            let dist = IndexDist::zipf(m, zipf_s);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xE15 ^ ((u as u64) << 7));
                // Single-writer discipline: updater `u` owns the components
                // with parity `u` and writes strictly increasing values to
                // each, so any torn or lost migration shows up as a
                // monotonicity violation at the scanner.
                let mut counts = vec![0u64; m];
                while !stop.load(Ordering::Relaxed) {
                    let mut c = dist.sample(&mut rng);
                    c -= c % updaters;
                    c = (c + u).min(m - 1);
                    counts[c] += 1;
                    snapshot.update(ProcessId(u), c, counts[c]);
                }
            })
        })
        .collect();

    let dist = IndexDist::zipf(m, zipf_s);
    let queries: Vec<Vec<usize>> = {
        let mut rng = StdRng::seed_from_u64(0xE150);
        (0..12).map(|_| dist.sample_set(&mut rng, r)).collect()
    };
    let query_popularity = IndexDist::zipf(queries.len(), 1.0);
    let scanner_pid = ProcessId(updaters);
    let mut rng = StdRng::seed_from_u64(0xE15C ^ (zipf_s.to_bits() >> 3));
    let mut last_seen = vec![0u64; m];
    let mut torn = 0u64;
    let mut failed = 0u64;
    let mut scan_once = |rng: &mut StdRng, last_seen: &mut Vec<u64>| -> f64 {
        let components = &queries[query_popularity.sample(rng)];
        let t0 = std::time::Instant::now();
        let values = snapshot.scan(scanner_pid, components);
        let elapsed = t0.elapsed().as_nanos() as f64;
        if values.len() != components.len() {
            failed += 1;
            return elapsed;
        }
        let mut tear = false;
        for (&c, &v) in components.iter().zip(values.iter()) {
            if v < last_seen[c] {
                tear = true;
            } else {
                last_seen[c] = v;
            }
        }
        if tear {
            torn += 1;
        }
        elapsed
    };

    // Phase A: static layout baseline (and the pre-storm heat window).
    let heat0 = snapshot.shard_heat();
    let sizes0 = snapshot.shard_sizes();
    let shards_before = sizes0.iter().filter(|&&s| s > 0).count();
    let mut baseline = Vec::with_capacity(ops);
    for _ in 0..ops {
        baseline.push(scan_once(&mut rng, &mut last_seen));
    }
    let heat_a = snapshot.shard_heat();
    let skew_before = e15_heat_skew(&heat0, &heat_a, &sizes0);

    // Phase B: the storm thread migrates while the scanner keeps measuring.
    let storm_done = Arc::new(AtomicBool::new(false));
    let storm = {
        let snapshot = Arc::clone(&snapshot);
        let done = Arc::clone(&storm_done);
        std::thread::spawn(move || {
            let mut applied = 0u64;
            let mut last_heat = snapshot.shard_heat();
            for _ in 0..3 {
                std::thread::sleep(std::time::Duration::from_millis(1));
                let heat = snapshot.shard_heat();
                let sizes = snapshot.shard_sizes();
                // Hottest splittable shard by window delta; ties (and a
                // flat signal, e.g. metrics disabled) fall back to size.
                let hottest = sizes
                    .iter()
                    .enumerate()
                    .filter(|(_, &size)| size > 1)
                    .max_by_key(|&(i, &size)| {
                        let b = last_heat.get(i).copied().unwrap_or(0);
                        let a = heat.get(i).copied().unwrap_or(0);
                        (a.saturating_sub(b), size)
                    })
                    .map(|(i, _)| i);
                if let Some(shard) = hottest {
                    if snapshot.reshard(ReshardOp::Split { shard }) {
                        applied += 1;
                    }
                }
                last_heat = snapshot.shard_heat();
            }
            // Fold the coldest survivor into the next-coldest: the merge
            // path runs under the same live traffic as the splits.
            std::thread::sleep(std::time::Duration::from_millis(1));
            let heat = snapshot.shard_heat();
            let sizes = snapshot.shard_sizes();
            let mut owning: Vec<(u64, usize)> = sizes
                .iter()
                .enumerate()
                .filter(|(_, &size)| size > 0)
                .map(|(i, _)| (heat.get(i).copied().unwrap_or(0), i))
                .collect();
            owning.sort_unstable();
            if owning.len() >= 2 {
                let op = ReshardOp::Merge {
                    from: owning[0].1,
                    into: owning[1].1,
                };
                if snapshot.reshard(op) {
                    applied += 1;
                }
            }
            done.store(true, Ordering::Release);
            applied
        })
    };
    let mut through = Vec::with_capacity(ops);
    loop {
        through.push(scan_once(&mut rng, &mut last_seen));
        if through.len() >= ops && storm_done.load(Ordering::Acquire) {
            break;
        }
    }
    let reshards = storm.join().expect("E15 storm thread panicked");

    // Phase C: the settled layout's heat window for the post-storm skew.
    let heat_b = snapshot.shard_heat();
    for _ in 0..ops.div_ceil(2) {
        scan_once(&mut rng, &mut last_seen);
    }
    let heat_c = snapshot.shard_heat();
    let sizes_after = snapshot.shard_sizes();
    let skew_after = e15_heat_skew(&heat_b, &heat_c, &sizes_after);
    let shards_after = sizes_after.iter().filter(|&&s| s > 0).count();

    stop.store(true, Ordering::Relaxed);
    for h in update_handles {
        h.join().expect("E15 updater panicked");
    }
    let baseline_stats = Summary::of(&baseline);
    let through_stats = Summary::of(&through);
    E15Point {
        backend,
        zipf_s,
        shards_before,
        shards_after,
        reshards,
        generation: snapshot.generation(),
        baseline_p50_ns: baseline_stats.p50,
        baseline_p99_ns: baseline_stats.p99,
        reshard_p50_ns: through_stats.p50,
        reshard_p99_ns: through_stats.p99,
        worst_stall_ns: through.iter().cloned().fold(0.0f64, f64::max),
        p99_ratio: if baseline_stats.p99 > 0.0 {
            through_stats.p99 / baseline_stats.p99
        } else {
            0.0
        },
        skew_before,
        skew_after,
        torn_scans: torn,
        failed_scans: failed,
    }
}

/// Runs the E15 measurement: the live-migration backend against the
/// drain-and-rebuild baseline, both starting from two contiguous shards,
/// under moderately and heavily skewed Zipf traffic.
pub fn e15_reshard_data(effort: Effort) -> E15Data {
    let m = 256;
    let r = 16;
    let ops = effort.ops;
    let mut points = Vec::new();
    for kind in [
        ImplKind::mv_sharded(2, psnap_shard::Partition::Contiguous),
        ImplKind::sharded_cas(2, psnap_shard::Partition::Contiguous),
    ] {
        for zipf_s in [0.9f64, 1.2] {
            points.push(e15_point(kind, m, r, ops, zipf_s));
        }
    }
    E15Data {
        m,
        r,
        ops_per_phase: ops,
        points,
    }
}

/// E15 — online resharding: live migration vs drain-and-rebuild.
pub fn e15_reshard(effort: Effort) -> Table {
    e15_reshard_table(&e15_reshard_data(effort))
}

/// Renders already-measured E15 data as a table (lets the harness emit the
/// markdown table and `BENCH_E15.json` from one measurement run).
pub fn e15_reshard_table(data: &E15Data) -> Table {
    let rows = data
        .points
        .iter()
        .map(|p| {
            vec![
                p.backend.to_string(),
                format!("{:.1}", p.zipf_s),
                format!("{}→{}", p.shards_before, p.shards_after),
                p.generation.to_string(),
                p.reshards.to_string(),
                format!("{:.1}", p.baseline_p50_ns / 1000.0),
                format!("{:.1}", p.baseline_p99_ns / 1000.0),
                format!("{:.1}", p.reshard_p50_ns / 1000.0),
                format!("{:.1}", p.reshard_p99_ns / 1000.0),
                format!("{:.2}x", p.p99_ratio),
                format!("{:.1}", p.worst_stall_ns / 1000.0),
                format!("{:.2}→{:.2}", p.skew_before, p.skew_after),
                p.torn_scans.to_string(),
                p.failed_scans.to_string(),
            ]
        })
        .collect();
    Table {
        id: "E15".into(),
        title: data.description(),
        headers: vec![
            "backend".into(),
            "zipf s".into(),
            "shards".into(),
            "gen".into(),
            "reshards".into(),
            "base p50 µs".into(),
            "base p99 µs".into(),
            "storm p50 µs".into(),
            "storm p99 µs".into(),
            "p99 ratio".into(),
            "worst stall µs".into(),
            "heat skew".into(),
            "torn".into(),
            "failed".into(),
        ],
        rows,
    }
}

/// One Part-A grid point of experiment E16: the batched E10 workload with
/// every `update_many` wrapped in an `Apply` span, measured with the span
/// layer off and on.
#[derive(Clone, Debug)]
pub struct E16Point {
    /// Implementation label (`ImplKind::label`).
    pub impl_label: &'static str,
    /// Shard count of the measured object.
    pub shards: usize,
    /// `"uniform"` or `"zipf"`.
    pub dist: &'static str,
    /// Components written per batch.
    pub batch: usize,
    /// Component writes per second, spans **disabled** (inert spans).
    pub off_comps_per_sec: f64,
    /// Component writes per second, spans **enabled** at full sampling
    /// (trace + span + flight collection live on every batch).
    pub on_comps_per_sec: f64,
    /// Component writes per second, spans enabled at 1-in-8 root sampling.
    pub sampled_comps_per_sec: f64,
    /// Wall-clock overhead of full-sampling span collection, percent.
    pub wall_overhead_pct: f64,
    /// Wall-clock overhead at 1-in-8 root sampling, percent.
    pub sampled_overhead_pct: f64,
    /// Fraction of batch triples this point discarded because a scheduler
    /// preemption quantum (~1000x the span signal) landed inside one of
    /// the three timed windows; the trim is symmetric across arms.
    pub trimmed_fraction: f64,
    /// Step-count overhead. Spans never call `steps::record`, so the
    /// paper's cost metric is unperturbed by construction (the e16 smoke
    /// test verifies exact equality scanner-free); under live scanners this
    /// delta only carries helping-interleaving noise.
    pub step_overhead_pct: f64,
}

/// One per-stage latency-attribution row of experiment E16, computed from
/// real span trees of a live service run (not from flat histograms).
#[derive(Clone, Debug)]
pub struct E16Stage {
    /// Stage name (`SpanKind::as_str`, plus `"total"` for whole requests).
    pub stage: &'static str,
    /// Spans of this stage across the captured scan trees.
    pub count: u64,
    /// Median stage duration (nanoseconds).
    pub p50_ns: f64,
    /// 99th-percentile stage duration (nanoseconds).
    pub p99_ns: f64,
}

/// The raw data behind experiment E16 (also serialized to `BENCH_E16.json`).
#[derive(Clone, Debug)]
pub struct E16Data {
    /// Number of components of each measured object.
    pub m: usize,
    /// Batches measured per point and span state (Part A), and operations
    /// per client in the attribution run (Part B).
    pub ops: usize,
    /// Continuously scanning background processes per Part-A point.
    pub scanners: usize,
    /// Part A: one entry per (implementation × distribution × batch size).
    pub points: Vec<E16Point>,
    /// Part A grid-aggregate wall-clock overhead at full sampling,
    /// percent: the honest price of spanning **every** sub-microsecond
    /// batch — reported, not bounded.
    pub aggregate_wall_overhead_pct: f64,
    /// Part A grid-aggregate wall-clock overhead at 1-in-8 root sampling,
    /// percent (the < 3% acceptance number — the divisor exists exactly so
    /// high-frequency instrumentation sites stay under the budget).
    pub aggregate_sampled_overhead_pct: f64,
    /// Part A grid-aggregate step overhead, percent (structurally 0; the
    /// residual is scanner-helping interleaving noise).
    pub aggregate_step_overhead_pct: f64,
    /// Part B: per-stage p99 attribution from the captured span trees.
    pub stages: Vec<E16Stage>,
    /// Part B: completed scan trees the attribution was computed from.
    pub trees_captured: usize,
    /// Part C: the scan SLO handed to the service (nanoseconds).
    pub slo_ns: u64,
    /// Part C: the induced anomaly's reason (`AnomalyKind::as_str`).
    pub anomaly_reason: String,
    /// Part C: span trees frozen into the induced dump.
    pub anomaly_dump_trees: usize,
    /// Part C: whether the dump contains the triggering request's own tree
    /// (a `ScanRequest` root whose recorded latency breaches the SLO).
    pub triggering_tree_present: bool,
    /// Part C: whether the dump round-trips through `psnap-json` exactly.
    pub dump_round_trips: bool,
}

impl E16Data {
    /// The experiment description used by the table and the JSON document.
    pub fn description(&self) -> String {
        format!(
            "cost and yield of causal span tracing (psnap-obs span + flight \
             layers). Part A prices the layer on the E10 grid (shard count \
             × distribution × batch size, m = {}, {} scanners): every \
             batched apply wrapped in an `apply` root span, three arms \
             interleaved per batch in one scanner session — spans off \
             (inert), spans on at full sampling, spans on at 1-in-8 root \
             sampling — with trace rings live in all arms so each delta is \
             the span increment alone (E13 already prices the flat layer). \
             Batch triples holding a scheduler preemption quantum (~1000x \
             the signal, unavoidable on a shared box) are discarded \
             symmetrically across arms and the discarded fraction is \
             reported. Full sampling is the honest price list: ~100-250ns \
             per span is real money against sub-microsecond batches, which \
             is exactly why the root sampling divisor exists — the 1-in-8 \
             aggregate is the deployment answer for high-frequency sites \
             and must stay under 3% wall; request-scale sites (the serve \
             pipeline, Part B) afford full sampling outright. Spans never \
             call steps::record (verified exactly, scanner-free, by the \
             e16 smoke test; the grid's step delta only carries \
             scanner-helping interleaving noise). Part B is the yield: a \
             live service run (mv-sharded-k4, 4 clients, 100µs coalescing \
             window, every 8th op an update) with spans on, per-stage \
             p50/p99 attributed from the **real span trees** the flight \
             recorder assembled — queue wait vs coalescing window vs \
             backing scan vs merge fan-out, stages a flat histogram cannot \
             separate per request. Part C induces an anomaly: a 1ns scan \
             SLO forces a latency_slo trigger on a live service, and the \
             frozen dump must contain the triggering request's own tree \
             and round-trip through psnap-json.",
            self.m, self.scanners
        )
    }

    /// Serializes the data for `BENCH_E16.json`.
    pub fn to_json(&self) -> psnap_json::Json {
        use psnap_json::Json;
        Json::obj([
            ("experiment", Json::Str("E16".into())),
            ("description", Json::Str(self.description())),
            ("m", Json::Num(self.m as f64)),
            ("ops", Json::Num(self.ops as f64)),
            ("scanners", Json::Num(self.scanners as f64)),
            (
                "aggregate_wall_overhead_pct",
                Json::Num(self.aggregate_wall_overhead_pct),
            ),
            (
                "aggregate_sampled_overhead_pct",
                Json::Num(self.aggregate_sampled_overhead_pct),
            ),
            (
                "aggregate_step_overhead_pct",
                Json::Num(self.aggregate_step_overhead_pct),
            ),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        ("impl", Json::Str(p.impl_label.into())),
                        ("shards", Json::Num(p.shards as f64)),
                        ("dist", Json::Str(p.dist.into())),
                        ("batch", Json::Num(p.batch as f64)),
                        ("off_comps_per_sec", Json::Num(p.off_comps_per_sec)),
                        ("on_comps_per_sec", Json::Num(p.on_comps_per_sec)),
                        ("sampled_comps_per_sec", Json::Num(p.sampled_comps_per_sec)),
                        ("wall_overhead_pct", Json::Num(p.wall_overhead_pct)),
                        ("sampled_overhead_pct", Json::Num(p.sampled_overhead_pct)),
                        ("trimmed_fraction", Json::Num(p.trimmed_fraction)),
                        ("step_overhead_pct", Json::Num(p.step_overhead_pct)),
                    ])
                })),
            ),
            (
                "stages",
                Json::arr(self.stages.iter().map(|s| {
                    Json::obj([
                        ("stage", Json::Str(s.stage.into())),
                        ("count", Json::Num(s.count as f64)),
                        ("p50_ns", Json::Num(s.p50_ns)),
                        ("p99_ns", Json::Num(s.p99_ns)),
                    ])
                })),
            ),
            ("trees_captured", Json::Num(self.trees_captured as f64)),
            ("slo_ns", Json::Num(self.slo_ns as f64)),
            ("anomaly_reason", Json::Str(self.anomaly_reason.clone())),
            (
                "anomaly_dump_trees",
                Json::Num(self.anomaly_dump_trees as f64),
            ),
            (
                "triggering_tree_present",
                Json::Bool(self.triggering_tree_present),
            ),
            ("dump_round_trips", Json::Bool(self.dump_round_trips)),
        ])
    }
}

/// Root sampling divisor used by the E16 grid's third arm.
const E16_SAMPLE_EVERY: u64 = 8;

/// A timed batch window is discarded (with its whole triple) when it
/// exceeds this multiple of the point's median spans-off window — that is
/// a scheduler preemption quantum (milliseconds, three orders of magnitude
/// above the span signal) landing inside the window, not instrumentation
/// cost.
const E16_TRIM_FACTOR: u64 = 8;

/// All three arms of one E16 Part-A point, measured in one scanner session.
#[derive(Clone, Copy, Debug)]
struct E16PointMeasured {
    off_steps_per_component: f64,
    on_steps_per_component: f64,
    off_comps_per_sec: f64,
    on_comps_per_sec: f64,
    sampled_comps_per_sec: f64,
    /// Fraction of batch triples discarded as preemption-contaminated.
    trimmed_fraction: f64,
}

/// One E16 Part-A point: the batched half of [`e10_point`]'s workload with
/// an `Apply` root span (entered around the call, ended after) wrapping
/// every `update_many`. Three arms — spans off, spans on at full sampling,
/// spans on at 1-in-[`E16_SAMPLE_EVERY`] root sampling — are interleaved
/// **per batch** under one continuous scanner session: each component set
/// is applied by all three arms back to back (order rotating every
/// repetition), so scheduler preemption, scanner phase, and thermal drift
/// land on every arm symmetrically. The code path is identical in all
/// arms (the global span switch and sampling divisor decide whether the
/// spans are live), so the arm deltas are exactly the collection cost.
/// Triples containing a preemption quantum are discarded symmetrically
/// (see [`E16_TRIM_FACTOR`]).
fn e16_point(
    kind: ImplKind,
    m: usize,
    batch: usize,
    ops: usize,
    reps: usize,
    scanners: usize,
    zipf_s: Option<f64>,
) -> E16PointMeasured {
    use psnap_workloads::IndexDist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let snapshot = kind.build(m, 1 + scanners, 0);
    let dist = match zipf_s {
        Some(s) => IndexDist::zipf(m, s),
        None => IndexDist::uniform(m),
    };
    let mut rng = StdRng::seed_from_u64(0xE16 ^ (batch as u64) << 8);
    let sets: Vec<Vec<usize>> = (0..ops).map(|_| dist.sample_set(&mut rng, batch)).collect();
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in 0..scanners {
            let snapshot = Arc::clone(&snapshot);
            let dist = dist.clone();
            let stop = Arc::clone(&stop);
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xE16AB ^ ((s as u64) << 13));
                while !stop.load(Ordering::Relaxed) {
                    let comps = dist.sample_set(&mut rng, 8);
                    let _ = snapshot.scan(ProcessId(1 + s), &comps);
                }
            }));
        }
        // Arm 0: spans off. Arm 1: spans on, every root recorded.
        // Arm 2: spans on, 1-in-E16_SAMPLE_EVERY roots recorded.
        let mut steps = [0u64; 3];
        let mut triples: Vec<[u64; 3]> = Vec::with_capacity(ops * reps);
        let mut value = 1u64;
        for rep in 0..reps {
            for set in &sets {
                let mut triple = [0u64; 3];
                for slot in 0..3usize {
                    // Rotate which arm goes first so the cache-warming
                    // advantage of going later cycles over all arms.
                    let arm = (slot + rep) % 3;
                    psnap_obs::set_span_enabled(arm > 0);
                    psnap_obs::set_span_sample_every(if arm == 2 { E16_SAMPLE_EVERY } else { 1 });
                    let writes: Vec<(usize, u64)> = set.iter().map(|&c| (c, value)).collect();
                    value += 1;
                    let scope_steps = StepScope::start();
                    let t0 = std::time::Instant::now();
                    let mut apply = psnap_obs::Span::root(psnap_obs::SpanKind::Apply);
                    {
                        let _in_span = psnap_obs::span::enter(apply.context());
                        snapshot.update_many(ProcessId(0), &writes);
                    }
                    apply.set_args(writes.len() as u64, 0);
                    drop(apply);
                    triple[arm] = t0.elapsed().as_nanos() as u64;
                    steps[arm] += scope_steps.finish().total();
                }
                triples.push(triple);
            }
        }
        stop.store(true, Ordering::Relaxed);
        psnap_obs::set_span_enabled(false);
        psnap_obs::set_span_sample_every(1);
        for h in handles {
            h.join().expect("E16 scanner panicked");
        }
        // Symmetric preemption trim: a window holding a scheduler quantum
        // is ~1000x the span signal; drop the whole triple when any arm's
        // window blows past the off-arm median.
        let mut off_sorted: Vec<u64> = triples.iter().map(|t| t[0]).collect();
        off_sorted.sort_unstable();
        let cutoff = off_sorted[off_sorted.len() / 2].saturating_mul(E16_TRIM_FACTOR);
        let retained: Vec<&[u64; 3]> = triples
            .iter()
            .filter(|t| t.iter().all(|&w| w <= cutoff))
            .collect();
        // Degenerate fallback (cutoff 0 or everything contaminated): use
        // the untrimmed totals rather than divide by zero.
        let used: Vec<&[u64; 3]> = if retained.is_empty() {
            triples.iter().collect()
        } else {
            retained
        };
        let trimmed_fraction = 1.0 - used.len() as f64 / triples.len().max(1) as f64;
        let retained_components = (used.len() * batch) as f64;
        let tput = |arm: usize| {
            let ns: u64 = used.iter().map(|t| t[arm]).sum();
            if ns == 0 {
                0.0
            } else {
                retained_components / (ns as f64 / 1e9)
            }
        };
        let components = (ops * reps * batch) as f64;
        E16PointMeasured {
            off_steps_per_component: steps[0] as f64 / components,
            on_steps_per_component: steps[1] as f64 / components,
            off_comps_per_sec: tput(0),
            on_comps_per_sec: tput(1),
            sampled_comps_per_sec: tput(2),
            trimmed_fraction,
        }
    })
}

/// E16 Part B: a live service run with spans on; returns the per-stage
/// attribution rows computed from the flight recorder's completed scan
/// trees, and how many trees they came from. Caller enables the span layer.
fn e16_stage_attribution(m: usize, ops: usize) -> (Vec<E16Stage>, usize) {
    use psnap_obs::SpanKind;
    use psnap_serve::{
        Coalescing, Executor, Freshness, ServiceConfig, SnapshotService, SubmitError,
    };
    use psnap_workloads::IndexDist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    psnap_obs::flight::reset();
    psnap_obs::flight::set_tree_capacity(4096);
    let r = 16;
    let clients = 4usize;
    let scan_pids = 2usize;
    let snapshot = ImplKind::MV_SHARDED_4.build(m, 1 + scan_pids, 0);
    let executor = Executor::new(1 + scan_pids);
    let service = SnapshotService::start(
        Arc::clone(&snapshot),
        ServiceConfig {
            coalescing: Coalescing::Window(std::time::Duration::from_micros(100)),
            ingest_capacity: 64,
            scan_capacity: 1024,
            scan_pids,
            ..ServiceConfig::default()
        },
        &executor,
    );
    let dist = IndexDist::zipf(m, 0.9);
    let queries: Vec<Vec<usize>> = {
        let mut rng = StdRng::seed_from_u64(0xE16B);
        (0..12).map(|_| dist.sample_set(&mut rng, r)).collect()
    };
    std::thread::scope(|scope| {
        for c in 0..clients {
            let client = service.client();
            let dist = dist.clone();
            let queries = &queries;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xE16C ^ ((c as u64) << 11));
                for k in 0..ops {
                    if k % 8 == 0 {
                        let component = dist.sample(&mut rng);
                        loop {
                            match client.submit(component, (k as u64) << 8 | c as u64) {
                                Ok(ticket) => {
                                    ticket.wait();
                                    break;
                                }
                                Err(SubmitError::Busy) => std::thread::yield_now(),
                                Err(SubmitError::Closed) => panic!("service closed mid-run"),
                            }
                        }
                    } else {
                        let components = queries[k % queries.len()].clone();
                        loop {
                            match client.scan(components.clone(), Freshness::Fresh) {
                                Ok(ticket) => {
                                    ticket.wait();
                                    break;
                                }
                                Err(SubmitError::Busy) => std::thread::yield_now(),
                                Err(SubmitError::Closed) => panic!("service closed mid-run"),
                            }
                        }
                    }
                }
            });
        }
    });
    service.shutdown();

    let trees = psnap_obs::flight::recent_trees();
    let scan_trees: Vec<_> = trees
        .iter()
        .filter(|t| t.root().kind == SpanKind::ScanRequest && t.root().b > 0)
        .collect();
    let mut stages = Vec::new();
    for kind in [
        SpanKind::QueueWait,
        SpanKind::Window,
        SpanKind::BackingScan,
        SpanKind::Merge,
    ] {
        let durations: Vec<f64> = scan_trees
            .iter()
            .flat_map(|t| t.spans_of(kind).map(|s| s.duration_ns() as f64))
            .collect();
        let summary = Summary::of(&durations);
        stages.push(E16Stage {
            stage: kind.as_str(),
            count: durations.len() as u64,
            p50_ns: summary.p50,
            p99_ns: summary.p99,
        });
    }
    let totals: Vec<f64> = scan_trees.iter().map(|t| t.duration_ns() as f64).collect();
    let summary = Summary::of(&totals);
    stages.push(E16Stage {
        stage: "total",
        count: totals.len() as u64,
        p50_ns: summary.p50,
        p99_ns: summary.p99,
    });
    (stages, scan_trees.len())
}

/// E16 Part C: induces a latency-SLO anomaly on a live service (a 1ns SLO
/// no real scan can meet, triggers armed) and inspects the frozen dump.
/// Returns `(slo_ns, reason, dump_trees, triggering_tree_present,
/// dump_round_trips)`. Caller enables the span layer.
fn e16_induced_anomaly() -> (u64, String, usize, bool, bool) {
    use psnap_obs::SpanKind;
    use psnap_serve::{Executor, Freshness, ServiceConfig, SnapshotService};

    psnap_obs::flight::reset();
    psnap_obs::flight::set_armed(true);
    let slo = std::time::Duration::from_nanos(1);
    let m = 16;
    let snapshot = ImplKind::Cas.build(m, 2, 0);
    let executor = Executor::new(2);
    let service = SnapshotService::start(
        Arc::clone(&snapshot),
        ServiceConfig {
            scan_slo: Some(slo),
            ..ServiceConfig::default()
        },
        &executor,
    );
    let client = service.client();
    for component in 0..m {
        assert!(client.submit_blocking(component, component as u64 + 1));
    }
    let all: Vec<usize> = (0..m).collect();
    client
        .scan_blocking(&all, Freshness::Fresh)
        .expect("service closed during the induced-anomaly scan");
    service.shutdown();
    psnap_obs::flight::set_armed(false);

    let dumps = psnap_obs::flight::take_dumps();
    // Other triggers (reshard, torn-scan) may fire while armed if unrelated
    // traffic runs in the same process; the induced anomaly is the SLO one.
    let Some(dump) = dumps
        .iter()
        .find(|d| d.reason == psnap_obs::AnomalyKind::LatencySlo)
    else {
        return (slo.as_nanos() as u64, "none".into(), 0, false, false);
    };
    let triggering_tree_present = dump
        .trees
        .iter()
        .any(|t| t.root().kind == SpanKind::ScanRequest && t.root().b as u128 > slo.as_nanos());
    let text = dump.to_json().to_string_pretty();
    let round_trips = match psnap_json::Json::parse(&text) {
        Ok(json) => psnap_obs::FlightDump::from_json(&json).as_ref() == Some(dump),
        Err(_) => false,
    };
    (
        slo.as_nanos() as u64,
        dump.reason.as_str().to_string(),
        dump.trees.len(),
        triggering_tree_present,
        round_trips,
    )
}

/// Runs the E16 measurement: span-layer overhead on the E10 grid, per-stage
/// attribution from real trees, and one induced anomaly dump.
pub fn e16_span_tracing_data(effort: Effort) -> E16Data {
    let m = 256;
    let scanners = 2;
    let ops = effort.ops;
    let was_trace = psnap_obs::trace_enabled();
    let was_span = psnap_obs::span_enabled();
    let mut points = Vec::new();
    let mut total_off_steps = 0.0f64;
    let mut total_on_steps = 0.0f64;
    let mut total_off_secs = 0.0f64;
    let mut total_on_secs = 0.0f64;
    let mut total_sampled_secs = 0.0f64;
    for shards in [1usize, 2, 4, 8] {
        let kind = if shards == 1 {
            ImplKind::Cas
        } else {
            ImplKind::sharded_cas(shards, psnap_shard::Partition::Contiguous)
        };
        for (dist, zipf_s) in [("uniform", None), ("zipf", Some(0.9f64))] {
            for batch in [2usize, 4, 8, 16] {
                // All three arms interleave per batch inside e16_point, so
                // each point's deltas are drift-cancelled and
                // preemption-trimmed symmetrically. The trace rings are
                // live in every arm — E13 already prices the flat layer;
                // these deltas isolate the span increment (begin/end
                // events + flight collection) on its own. The headline
                // aggregates are time-weighted over the whole grid (E13's
                // method).
                const REPS: usize = 5;
                psnap_obs::set_trace_enabled(true);
                let p = e16_point(kind, m, batch, ops, REPS, scanners, zipf_s);
                let components = (ops * REPS * batch) as f64;
                total_off_steps += p.off_steps_per_component * components;
                total_on_steps += p.on_steps_per_component * components;
                if p.off_comps_per_sec > 0.0 {
                    total_off_secs += components / p.off_comps_per_sec;
                }
                if p.on_comps_per_sec > 0.0 {
                    total_on_secs += components / p.on_comps_per_sec;
                }
                if p.sampled_comps_per_sec > 0.0 {
                    total_sampled_secs += components / p.sampled_comps_per_sec;
                }
                let pct = |on: f64, off: f64| {
                    if on > 0.0 && off > 0.0 {
                        overhead_pct(1.0 / on, 1.0 / off)
                    } else {
                        0.0
                    }
                };
                points.push(E16Point {
                    impl_label: kind.label(),
                    shards,
                    dist,
                    batch,
                    off_comps_per_sec: p.off_comps_per_sec,
                    on_comps_per_sec: p.on_comps_per_sec,
                    sampled_comps_per_sec: p.sampled_comps_per_sec,
                    wall_overhead_pct: pct(p.on_comps_per_sec, p.off_comps_per_sec),
                    sampled_overhead_pct: pct(p.sampled_comps_per_sec, p.off_comps_per_sec),
                    trimmed_fraction: p.trimmed_fraction,
                    step_overhead_pct: overhead_pct(
                        p.on_steps_per_component,
                        p.off_steps_per_component,
                    ),
                });
            }
        }
    }

    // Parts B and C run with the span layer live at full sampling —
    // request-scale spans afford recording every root.
    psnap_obs::set_trace_enabled(true);
    psnap_obs::set_span_enabled(true);
    psnap_obs::set_span_sample_every(1);
    let (stages, trees_captured) = e16_stage_attribution(m, ops.max(64));
    let (slo_ns, anomaly_reason, anomaly_dump_trees, triggering_tree_present, dump_round_trips) =
        e16_induced_anomaly();
    psnap_obs::set_trace_enabled(was_trace);
    psnap_obs::set_span_enabled(was_span);
    psnap_obs::flight::set_tree_capacity(psnap_obs::flight::DEFAULT_TREE_CAPACITY);
    psnap_obs::flight::reset();

    E16Data {
        m,
        ops,
        scanners,
        points,
        aggregate_wall_overhead_pct: overhead_pct(total_on_secs, total_off_secs),
        aggregate_sampled_overhead_pct: overhead_pct(total_sampled_secs, total_off_secs),
        aggregate_step_overhead_pct: overhead_pct(total_on_steps, total_off_steps),
        stages,
        trees_captured,
        slo_ns,
        anomaly_reason,
        anomaly_dump_trees,
        triggering_tree_present,
        dump_round_trips,
    }
}

/// E16 — causal span tracing: overhead, attribution, anomaly dumps.
pub fn e16_span_tracing(effort: Effort) -> Table {
    e16_span_tracing_table(&e16_span_tracing_data(effort))
}

/// Renders already-measured E16 data as a table (lets the harness emit the
/// markdown table and `BENCH_E16.json` from one measurement run). The table
/// is the attribution-and-acceptance summary; the full Part-A grid lives in
/// the JSON document.
pub fn e16_span_tracing_table(data: &E16Data) -> Table {
    let mut rows: Vec<Vec<String>> = data
        .stages
        .iter()
        .map(|s| {
            vec![
                format!("stage: {}", s.stage),
                s.count.to_string(),
                format!("{:.1}", s.p50_ns / 1000.0),
                format!("{:.1}", s.p99_ns / 1000.0),
            ]
        })
        .collect();
    rows.push(vec![
        format!("scan trees captured ({} clients)", 4),
        data.trees_captured.to_string(),
        "—".into(),
        "—".into(),
    ]);
    rows.push(vec![
        "span wall overhead, full sampling (E10 grid aggregate)".into(),
        "—".into(),
        "—".into(),
        format!("{:+.2}%", data.aggregate_wall_overhead_pct),
    ]);
    rows.push(vec![
        "span wall overhead, 1-in-8 root sampling (E10 grid aggregate)".into(),
        "—".into(),
        "—".into(),
        format!("{:+.2}%", data.aggregate_sampled_overhead_pct),
    ]);
    rows.push(vec![
        "span step overhead (structurally 0; residual is helping noise)".into(),
        "—".into(),
        "—".into(),
        format!("{:+.2}%", data.aggregate_step_overhead_pct),
    ]);
    rows.push(vec![
        format!(
            "induced anomaly ({}, {}ns SLO)",
            data.anomaly_reason, data.slo_ns
        ),
        data.anomaly_dump_trees.to_string(),
        "—".into(),
        if data.triggering_tree_present {
            "triggering tree present".into()
        } else {
            "triggering tree MISSING".into()
        },
    ]);
    rows.push(vec![
        "dump psnap-json round-trip".into(),
        "—".into(),
        "—".into(),
        if data.dump_round_trips {
            "exact".into()
        } else {
            "FAILED".into()
        },
    ]);
    Table {
        id: "E16".into(),
        title: data.description(),
        headers: vec![
            "metric".into(),
            "count".into(),
            "p50 µs".into(),
            "p99 µs / value".into(),
        ],
        rows,
    }
}

/// One measured row of experiment E17: one (transport × connection count)
/// point of the mixed submit/scan workload.
#[derive(Clone, Debug)]
pub struct E17Point {
    /// `"inproc"` (service `ClientHandle`s) or `"tcp"` (remote clients over
    /// loopback through `psnap-wire`).
    pub transport: &'static str,
    /// Concurrent clients (one connection each for the wire rows).
    pub connections: usize,
    /// Aggregate client operations per second (submits + scans, wall clock
    /// of the slowest client).
    pub ops_per_sec: f64,
    /// Client-observed scan latency, 50th percentile (nanoseconds).
    pub scan_p50_ns: f64,
    /// Client-observed scan latency, 99th percentile (nanoseconds).
    pub scan_p99_ns: f64,
    /// Client-observed submit latency, 50th percentile (nanoseconds).
    pub submit_p50_ns: f64,
    /// Client-observed submit latency, 99th percentile (nanoseconds).
    pub submit_p99_ns: f64,
    /// Busy rejections absorbed by retry loops (backpressure events).
    pub busy_rejections: f64,
    /// This point's `ops_per_sec` over the inproc point at the same
    /// connection count (1.0 for the inproc rows) — what the wire hop
    /// costs end to end.
    pub throughput_vs_inproc: f64,
}

/// The chaos half of E17: connections killed mid-request, with the
/// response-accounting invariants the wire layer must uphold.
#[derive(Clone, Debug)]
pub struct E17Chaos {
    /// Connections in the storm.
    pub connections: usize,
    /// Connections killed mid-stream.
    pub kills: usize,
    /// Tickets that resolved with an applied acknowledgement.
    pub tickets_ok: f64,
    /// Tickets that resolved with `ConnectionLost` (their connection died
    /// with the request outstanding — resolved, not hung).
    pub tickets_connection_lost: f64,
    /// Tickets that resolved with the wire `busy` backpressure reply —
    /// resolved responses, counted separately from applied ones.
    pub tickets_busy: f64,
    /// Tickets that never resolved within the wait bound. A lost response;
    /// must be 0.
    pub tickets_hung: f64,
    /// Replies that matched no outstanding request across all clients. A
    /// duplicated or misattributed response; must be 0.
    pub duplicate_replies: f64,
    /// Server-side submissions accepted into ingestion queues.
    pub accepted: f64,
    /// Server-side submissions whose ticket resolved.
    pub resolved: f64,
    /// Whether `accepted == resolved` held after the storm (no server-side
    /// ticket stranded by a killed connection).
    pub accounting_holds: bool,
}

/// The raw data behind experiment E17 (also serialized to `BENCH_E17.json`).
#[derive(Clone, Debug)]
pub struct E17Data {
    /// Components of the backing object.
    pub m: usize,
    /// Components per client scan.
    pub r: usize,
    /// Operations per client at each point.
    pub ops_per_client: usize,
    /// One entry per (transport × connection count).
    pub points: Vec<E17Point>,
    /// The connection-kill chaos run.
    pub chaos: E17Chaos,
}

impl E17Data {
    /// The experiment description used by the table and the JSON document.
    pub fn description(&self) -> String {
        format!(
            "psnap-wire transport: remote clients over loopback TCP vs in-process \
             `ClientHandle`s against the same service (m = {}, r = {}, every 8th \
             client op an update submission, the rest Fresh partial scans from a \
             Zipf-popular pool of 12 query shapes, Cas backend, drain coalescing, \
             each client pipelining up to 16 ops in flight on both transports — \
             the wire clients corked, flushing every 8 issues) at \
             1/4/16/64 connections. Each wire op crosses frame encode → socket → \
             decode → per-connection ingestion queue → service → reply-pump frame, \
             so throughput_vs_inproc prices the transport end to end; the latency \
             columns are issue-to-completion, including pipeline queueing. On \
             few-core hosts the wire side saturates on its per-op thread-hop \
             chain (client → server reader → drainer → reply pump → reply \
             reader, each hop a scheduler pass when every thread shares one \
             CPU) while the in-process baseline keeps gaining from coalescing, \
             so the ratio at high connection counts is scheduler-bound, not \
             wire-CPU-bound — read it alongside the absolute kops/s. The chaos run \
             kills connections mid-request and checks the wire layer's accounting: \
             every client ticket resolves (applied or ConnectionLost — hung must \
             be 0), no reply is duplicated or misattributed, and the server's \
             accepted == resolved invariant survives rude disconnects because \
             accepted submissions still apply and resolve server-side.",
            self.m, self.r
        )
    }

    /// Serializes the data for `BENCH_E17.json`.
    pub fn to_json(&self) -> psnap_json::Json {
        use psnap_json::Json;
        Json::obj([
            ("experiment", Json::Str("E17".into())),
            ("description", Json::Str(self.description())),
            ("m", Json::Num(self.m as f64)),
            ("r", Json::Num(self.r as f64)),
            ("ops_per_client", Json::Num(self.ops_per_client as f64)),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        ("transport", Json::Str(p.transport.into())),
                        ("connections", Json::Num(p.connections as f64)),
                        ("ops_per_sec", Json::Num(p.ops_per_sec)),
                        ("scan_p50_ns", Json::Num(p.scan_p50_ns)),
                        ("scan_p99_ns", Json::Num(p.scan_p99_ns)),
                        ("submit_p50_ns", Json::Num(p.submit_p50_ns)),
                        ("submit_p99_ns", Json::Num(p.submit_p99_ns)),
                        ("busy_rejections", Json::Num(p.busy_rejections)),
                        ("throughput_vs_inproc", Json::Num(p.throughput_vs_inproc)),
                    ])
                })),
            ),
            (
                "chaos",
                Json::obj([
                    ("connections", Json::Num(self.chaos.connections as f64)),
                    ("kills", Json::Num(self.chaos.kills as f64)),
                    ("tickets_ok", Json::Num(self.chaos.tickets_ok)),
                    (
                        "tickets_connection_lost",
                        Json::Num(self.chaos.tickets_connection_lost),
                    ),
                    ("tickets_busy", Json::Num(self.chaos.tickets_busy)),
                    ("tickets_hung", Json::Num(self.chaos.tickets_hung)),
                    ("duplicate_replies", Json::Num(self.chaos.duplicate_replies)),
                    ("accepted", Json::Num(self.chaos.accepted)),
                    ("resolved", Json::Num(self.chaos.resolved)),
                    ("accounting_holds", Json::Bool(self.chaos.accounting_holds)),
                ]),
            ),
        ])
    }
}

struct E17Measured {
    ops_per_sec: f64,
    scan_latency: Summary,
    submit_latency: Summary,
    busy: u64,
}

/// The E17 service type: a Cas-backed service shared by every point.
type E17Service = Arc<psnap_serve::SnapshotService<u64, Arc<CasPartialSnapshot<u64>>>>;

/// The shared E17 service fixture: a Cas-backed service with drain
/// coalescing and room for many per-connection ingestion queues.
fn e17_service(m: usize) -> (psnap_serve::Executor, E17Service) {
    use psnap_serve::{Coalescing, Executor, ServiceConfig, SnapshotService};
    let executor = Executor::new(2);
    let service = Arc::new(SnapshotService::start(
        Arc::new(CasPartialSnapshot::new(m, 2, 0u64)),
        ServiceConfig {
            coalescing: Coalescing::Window(std::time::Duration::ZERO),
            ingest_capacity: 64,
            scan_capacity: 4096,
            ..ServiceConfig::default()
        },
        &executor,
    ));
    (executor, service)
}

/// The E17 query pool: the same Zipf-popular shared query shapes as E11.
fn e17_queries(m: usize, r: usize) -> Vec<Vec<usize>> {
    use psnap_workloads::IndexDist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let dist = IndexDist::uniform(m);
    let mut rng = StdRng::seed_from_u64(0xE170);
    (0..12).map(|_| dist.sample_set(&mut rng, r)).collect()
}

/// How many operations each E17 client keeps in flight. Pipelining is the
/// realistic way clients drive a request/reply transport — it amortizes
/// the per-op wake-ups (and, over the wire, the per-op syscalls) across a
/// window — and both transports run the identical loop, so the comparison
/// stays apples-to-apples. The window is kept well under the service's
/// per-connection queue capacities so steady-state traffic is not shaped
/// by backpressure.
const E17_WINDOW: usize = 16;

/// The loop calls `flush` after every this-many issued ops (the wire
/// transport corks its writes and flushes here; in-process flush is a
/// no-op). Must stay at most `E17_WINDOW / 2`: waits happen only with a
/// full window, so the op being waited on — issued a full window ago — is
/// always at least one flush behind and can never be stuck in the cork
/// buffer.
const E17_FLUSH_EVERY: usize = 8;

/// A deferred completion for one issued E17 op: blocks until the op's
/// reply, returning `true` if it was accepted and `false` on a `busy`
/// rejection.
type E17Waiter = Box<dyn FnOnce() -> bool>;

/// One client's E17 op loop, generic over the transport: `submit` and
/// `scan` issue one op and return `Some(waiter)` for its completion, or
/// `None` on an issue-time Busy that should be retried after draining.
/// Keeps up to [`E17_WINDOW`] ops in flight. Per-op latency is measured
/// issue-to-completion, so it includes pipeline queueing. Returns
/// (scan ns, submit ns, busy count, wall).
fn e17_client_loop(
    c: usize,
    ops: usize,
    m: usize,
    queries: &[Vec<usize>],
    mut submit: impl FnMut(usize, u64) -> Option<E17Waiter>,
    mut scan: impl FnMut(Vec<usize>) -> Option<E17Waiter>,
    mut flush: impl FnMut(),
) -> (Vec<f64>, Vec<f64>, u64, std::time::Duration) {
    use psnap_workloads::IndexDist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let dist = IndexDist::uniform(m);
    let query_popularity = IndexDist::zipf(queries.len(), 1.0);
    let mut rng = StdRng::seed_from_u64(0xE17 ^ ((c as u64) << 11));
    let mut scans = Vec::with_capacity(ops);
    let mut submits = Vec::with_capacity(ops / 8 + 1);
    let mut busy = 0u64;
    let mut window: std::collections::VecDeque<(std::time::Instant, bool, E17Waiter)> =
        std::collections::VecDeque::with_capacity(E17_WINDOW);
    let mut finish = |(t0, is_submit, waiter): (std::time::Instant, bool, E17Waiter),
                      busy: &mut u64| {
        let accepted = waiter();
        if !accepted {
            *busy += 1;
        }
        let ns = t0.elapsed().as_nanos() as f64;
        if is_submit {
            submits.push(ns);
        } else {
            scans.push(ns);
        }
    };
    let t_start = std::time::Instant::now();
    for k in 0..ops {
        let is_submit = k % 8 == 0;
        loop {
            let t0 = std::time::Instant::now();
            let issued = if is_submit {
                let component = dist.sample(&mut rng);
                let value = (k as u64) << 8 | c as u64;
                submit(component, value)
            } else {
                let components = &queries[query_popularity.sample(&mut rng)];
                scan(components.clone())
            };
            match issued {
                Some(waiter) => {
                    window.push_back((t0, is_submit, waiter));
                    break;
                }
                None => {
                    // Issue-time Busy: drain the oldest in-flight op to
                    // free capacity, then retry.
                    busy += 1;
                    match window.pop_front() {
                        Some(pending) => finish(pending, &mut busy),
                        None => std::thread::yield_now(),
                    }
                }
            }
        }
        if k % E17_FLUSH_EVERY == E17_FLUSH_EVERY - 1 {
            flush();
        }
        if window.len() >= E17_WINDOW {
            let pending = window.pop_front().expect("window is non-empty");
            finish(pending, &mut busy);
        }
    }
    flush();
    while let Some(pending) = window.pop_front() {
        finish(pending, &mut busy);
    }
    (scans, submits, busy, t_start.elapsed())
}

/// One E17 point over in-process `ClientHandle`s — the baseline the wire
/// rows are priced against.
fn e17_point_inproc(m: usize, r: usize, connections: usize, ops: usize) -> E17Measured {
    use psnap_serve::{Freshness, SubmitError};
    let (_executor, service) = e17_service(m);
    let queries = e17_queries(m, r);
    let barrier = std::sync::Barrier::new(connections);
    let mut scan_latency = Vec::new();
    let mut submit_latency = Vec::new();
    let mut busy = 0u64;
    let mut longest_wall = std::time::Duration::ZERO;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..connections {
            let client = service.client();
            let queries = &queries;
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                barrier.wait();
                e17_client_loop(
                    c,
                    ops,
                    m,
                    queries,
                    |component, value| match client.submit(component, value) {
                        Ok(ticket) => Some(Box::new(move || {
                            ticket.wait();
                            true
                        }) as E17Waiter),
                        Err(SubmitError::Busy) => None,
                        Err(SubmitError::Closed) => panic!("service closed mid-run"),
                    },
                    |components| match client.scan(components, Freshness::Fresh) {
                        Ok(ticket) => Some(Box::new(move || {
                            ticket.wait();
                            true
                        }) as E17Waiter),
                        Err(SubmitError::Busy) => None,
                        Err(SubmitError::Closed) => panic!("service closed mid-run"),
                    },
                    || {},
                )
            }));
        }
        for h in handles {
            let (scans, submits, b, wall) = h.join().expect("E17 inproc client panicked");
            scan_latency.extend(scans);
            submit_latency.extend(submits);
            busy += b;
            longest_wall = longest_wall.max(wall);
        }
    });
    service.shutdown();
    E17Measured {
        ops_per_sec: if longest_wall.is_zero() {
            0.0
        } else {
            (connections * ops) as f64 / longest_wall.as_secs_f64()
        },
        scan_latency: Summary::of(&scan_latency),
        submit_latency: Summary::of(&submit_latency),
        busy,
    }
}

/// One E17 point over loopback TCP: the same workload, every operation a
/// full wire round trip on its own connection, pipelined to the same
/// window as the in-process baseline.
fn e17_point_wire(m: usize, r: usize, connections: usize, ops: usize) -> E17Measured {
    use psnap_serve::Freshness;
    use psnap_wire::{RemoteClientHandle, WireError, WireServer, WireServerConfig};
    let (executor, service) = e17_service(m);
    let server = WireServer::serve_tcp(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig::default(),
        &executor,
    )
    .expect("E17 wire server failed to bind");
    let addr = server.local_addr().expect("tcp server has an address");
    let queries = e17_queries(m, r);
    let barrier = std::sync::Barrier::new(connections);
    let mut scan_latency = Vec::new();
    let mut submit_latency = Vec::new();
    let mut busy = 0u64;
    let mut longest_wall = std::time::Duration::ZERO;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..connections {
            let queries = &queries;
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                let client =
                    RemoteClientHandle::connect_tcp(addr).expect("E17 client failed to connect");
                client
                    .set_corked(true)
                    .expect("corking a fresh connection cannot fail");
                barrier.wait();
                let out = e17_client_loop(
                    c,
                    ops,
                    m,
                    queries,
                    |component, value| match client.submit(component, value) {
                        Ok(ticket) => Some(Box::new(move || match ticket.wait() {
                            Ok(()) => true,
                            Err(WireError::Busy) => false,
                            Err(other) => panic!("wire submit failed mid-run: {other}"),
                        }) as E17Waiter),
                        Err(WireError::Busy) => None,
                        Err(other) => panic!("wire submit failed mid-run: {other}"),
                    },
                    |components| match client.scan(components, Freshness::Fresh) {
                        Ok(ticket) => Some(Box::new(move || match ticket.wait() {
                            Ok(_) => true,
                            Err(WireError::Busy) => false,
                            Err(other) => panic!("wire scan failed mid-run: {other}"),
                        }) as E17Waiter),
                        Err(WireError::Busy) => None,
                        Err(other) => panic!("wire scan failed mid-run: {other}"),
                    },
                    || client.flush().expect("wire flush failed mid-run"),
                );
                client.close();
                out
            }));
        }
        for h in handles {
            let (scans, submits, b, wall) = h.join().expect("E17 wire client panicked");
            scan_latency.extend(scans);
            submit_latency.extend(submits);
            busy += b;
            longest_wall = longest_wall.max(wall);
        }
    });
    server.shutdown(std::time::Duration::from_secs(10));
    service.shutdown();
    E17Measured {
        ops_per_sec: if longest_wall.is_zero() {
            0.0
        } else {
            (connections * ops) as f64 / longest_wall.as_secs_f64()
        },
        scan_latency: Summary::of(&scan_latency),
        submit_latency: Summary::of(&submit_latency),
        busy,
    }
}

/// The E17 chaos run: a storm of connections submitting continuously while
/// half of them are killed mid-request, then the response-accounting audit.
fn e17_chaos(m: usize, connections: usize, ops: usize) -> E17Chaos {
    use psnap_wire::{RemoteClientHandle, WireError, WireServer, WireServerConfig};
    let (executor, service) = e17_service(m);
    let server = WireServer::serve_tcp(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig::default(),
        &executor,
    )
    .expect("E17 chaos server failed to bind");
    let addr = server.local_addr().expect("tcp server has an address");
    let kills = connections / 2;
    let mut tickets_ok = 0u64;
    let mut tickets_connection_lost = 0u64;
    let mut tickets_busy = 0u64;
    let mut tickets_hung = 0u64;
    let mut duplicate_replies = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..connections {
            handles.push(scope.spawn(move || {
                let client =
                    Arc::new(RemoteClientHandle::connect_tcp(addr).expect("chaos client connect"));
                // Victims get a killer thread that severs the connection
                // partway through the stream, so kills land mid-request.
                let killer = (c < kills).then(|| {
                    let victim = Arc::clone(&client);
                    std::thread::spawn(move || {
                        std::thread::sleep(std::time::Duration::from_micros(200 + 137 * c as u64));
                        victim.kill();
                    })
                });
                let mut tickets = Vec::new();
                for k in 0..ops {
                    match client.submit(k % 64, (k as u64) << 8 | c as u64) {
                        Ok(ticket) => tickets.push(ticket),
                        // The connection died under us: stop submitting.
                        Err(WireError::ConnectionLost(_)) => break,
                        Err(WireError::Busy) => std::thread::yield_now(),
                        Err(other) => panic!("chaos submit failed: {other}"),
                    }
                }
                let (mut ok, mut lost, mut busy, mut hung) = (0u64, 0u64, 0u64, 0u64);
                for ticket in tickets {
                    match psnap_serve::block_on_timeout(ticket, std::time::Duration::from_secs(10))
                    {
                        Some(Ok(())) => ok += 1,
                        Some(Err(WireError::ConnectionLost(_))) => lost += 1,
                        // Backpressure arrives as a resolved `busy` reply
                        // over the wire, not as a submit-time error.
                        Some(Err(WireError::Busy)) => busy += 1,
                        Some(Err(other)) => panic!("chaos ticket error: {other}"),
                        None => hung += 1,
                    }
                }
                if let Some(killer) = killer {
                    killer.join().expect("killer thread panicked");
                }
                (ok, lost, busy, hung, client.unknown_replies())
            }));
        }
        for h in handles {
            let (ok, lost, busy, hung, unknown) = h.join().expect("chaos client panicked");
            tickets_ok += ok;
            tickets_connection_lost += lost;
            tickets_busy += busy;
            tickets_hung += hung;
            duplicate_replies += unknown;
        }
    });
    // Accepted submissions of killed connections still apply and resolve
    // server-side; give the drainer a bounded window to finish.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let accounting_holds = loop {
        let stats = service.obs().stats;
        if stats.submits_ok == stats.submits_resolved {
            break true;
        }
        if std::time::Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    };
    let stats = service.obs().stats;
    server.shutdown(std::time::Duration::from_secs(10));
    service.shutdown();
    E17Chaos {
        connections,
        kills,
        tickets_ok: tickets_ok as f64,
        tickets_connection_lost: tickets_connection_lost as f64,
        tickets_busy: tickets_busy as f64,
        tickets_hung: tickets_hung as f64,
        duplicate_replies: duplicate_replies as f64,
        accepted: stats.submits_ok as f64,
        resolved: stats.submits_resolved as f64,
        accounting_holds,
    }
}

/// Picks the median-throughput run out of several repeats of one point.
/// Short points on a box where every client, reader, and worker thread
/// time-slices a handful of cores are noisy; the median keeps one
/// coherent (throughput, latency) sample instead of averaging across
/// runs with different interleavings.
fn e17_median(mut runs: Vec<E17Measured>) -> E17Measured {
    runs.sort_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec));
    let mid = runs.len() / 2;
    runs.swap_remove(mid)
}

/// Runs the E17 measurement: wire vs in-process transport across
/// connection counts, plus the connection-kill chaos audit.
pub fn e17_wire_data(effort: Effort) -> E17Data {
    let m = 256;
    let r = 16;
    let ops = effort.ops;
    // Smoke runs take one sample per point; full effort takes the median
    // of three to damp scheduler-interleaving noise.
    let repeats = if ops >= 500 { 3 } else { 1 };
    let mut points = Vec::new();
    for connections in [1usize, 4, 16, 64] {
        let inproc = e17_median(
            (0..repeats)
                .map(|_| e17_point_inproc(m, r, connections, ops))
                .collect(),
        );
        let wire = e17_median(
            (0..repeats)
                .map(|_| e17_point_wire(m, r, connections, ops))
                .collect(),
        );
        let base = inproc.ops_per_sec;
        for (transport, measured) in [("inproc", inproc), ("tcp", wire)] {
            points.push(E17Point {
                transport,
                connections,
                ops_per_sec: measured.ops_per_sec,
                scan_p50_ns: measured.scan_latency.p50,
                scan_p99_ns: measured.scan_latency.p99,
                submit_p50_ns: measured.submit_latency.p50,
                submit_p99_ns: measured.submit_latency.p99,
                busy_rejections: measured.busy as f64,
                throughput_vs_inproc: if base > 0.0 {
                    measured.ops_per_sec / base
                } else {
                    0.0
                },
            });
        }
    }
    let chaos = e17_chaos(m, 16, (ops * 4).max(64));
    E17Data {
        m,
        r,
        ops_per_client: ops,
        points,
        chaos,
    }
}

/// E17 — the wire transport: remote vs in-process throughput and latency,
/// plus connection-kill chaos accounting.
pub fn e17_wire(effort: Effort) -> Table {
    e17_wire_table(&e17_wire_data(effort))
}

/// Renders already-measured E17 data as a table (lets the harness emit the
/// markdown table and `BENCH_E17.json` from one measurement run).
pub fn e17_wire_table(data: &E17Data) -> Table {
    let mut rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            vec![
                p.transport.to_string(),
                p.connections.to_string(),
                format!("{:.0}", p.ops_per_sec / 1000.0),
                format!("{:.1}", p.scan_p50_ns / 1000.0),
                format!("{:.1}", p.scan_p99_ns / 1000.0),
                format!("{:.1}", p.submit_p50_ns / 1000.0),
                format!("{:.1}", p.submit_p99_ns / 1000.0),
                format!("{:.0}", p.busy_rejections),
                format!("{:.2}x", p.throughput_vs_inproc),
            ]
        })
        .collect();
    let chaos = &data.chaos;
    rows.push(vec![
        format!("chaos ({} kills)", chaos.kills),
        chaos.connections.to_string(),
        format!("ok={:.0}", chaos.tickets_ok),
        format!("lost={:.0}", chaos.tickets_connection_lost),
        format!(
            "busy={:.0} hung={:.0}",
            chaos.tickets_busy, chaos.tickets_hung
        ),
        format!("dup={:.0}", chaos.duplicate_replies),
        format!("acc={:.0}", chaos.accepted),
        format!("res={:.0}", chaos.resolved),
        if chaos.accounting_holds {
            "holds".to_string()
        } else {
            "VIOLATED".to_string()
        },
    ]);
    Table {
        id: "E17".into(),
        title: data.description(),
        headers: vec![
            "transport".into(),
            "connections".into(),
            "client kops/s".into(),
            "scan p50 µs".into(),
            "scan p99 µs".into(),
            "submit p50 µs".into(),
            "submit p99 µs".into(),
            "busy rejections".into(),
            "throughput vs inproc".into(),
        ],
        rows,
    }
}

/// Runs an experiment by id. Returns `None` for an unknown id.
pub fn run_experiment(id: &str, effort: Effort) -> Option<Table> {
    match id.to_ascii_uppercase().as_str() {
        "E1" => Some(e1_locality(effort)),
        "E2" => Some(e2_scan_width(effort)),
        "E3" => Some(e3_update_cost(effort)),
        "E4" => Some(e4_active_set(effort)),
        "E5" => Some(e5_register_snapshot(effort)),
        "E6" => Some(e6_portfolio(effort)),
        "E7" => Some(e7_throughput(effort)),
        "E8" => Some(e8_sharding(effort)),
        "E9" => Some(e9_cell_contention(effort)),
        "E10" => Some(e10_batched_updates(effort)),
        "E11" => Some(e11_service(effort)),
        "E12" => Some(e12_multiversion(effort)),
        "E13" => Some(e13_obs_overhead(effort)),
        "E14" => Some(e14_fastpath(effort)),
        "E15" => Some(e15_reshard(effort)),
        "E16" => Some(e16_span_tracing(effort)),
        "E17" => Some(e17_wire(effort)),
        _ => None,
    }
}

/// All experiment ids, in presentation order.
pub const ALL_EXPERIMENTS: [&str; 17] = [
    "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15",
    "E16", "E17",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let t = Table {
            id: "T".into(),
            title: "demo".into(),
            headers: vec!["a".into(), "b".into()],
            rows: vec![vec!["1".into(), "2".into()]],
        };
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("### T — demo"));
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("E99", Effort::smoke()).is_none());
    }

    #[test]
    fn e2_smoke() {
        let t = e2_scan_width(Effort { ops: 10 });
        assert_eq!(t.rows.len(), DEFAULT_R_SWEEP.len());
    }

    #[test]
    fn e4_smoke() {
        let t = e4_active_set(Effort { ops: 20 });
        assert_eq!(t.rows.len(), 4);
        // Figure 2 join is always exactly 2 steps, leave exactly 1.
        for row in &t.rows {
            assert_eq!(row[1], "2");
            assert_eq!(row[2], "1");
        }
    }

    #[test]
    fn e8_smoke_and_json_shape() {
        let data = e8_sharding_data(Effort { ops: 15 });
        // 4 shard counts × 2 distributions.
        assert_eq!(data.points.len(), 8);
        assert!(data.points.iter().all(|p| p.ops_per_sec > 0.0));
        // The 1-shard row of each distribution is its own baseline.
        for dist in ["uniform", "zipf"] {
            let first = data
                .points
                .iter()
                .find(|p| p.dist == dist && p.shards == 1)
                .expect("baseline row present");
            assert!((first.speedup_vs_unsharded - 1.0).abs() < 1e-9);
        }
        let json = data.to_json();
        assert_eq!(
            json.get("experiment").and_then(psnap_json::Json::as_str),
            Some("E8")
        );
        let points = json
            .get("points")
            .and_then(psnap_json::Json::as_array)
            .unwrap();
        assert_eq!(points.len(), 8);
        // Round-trips through the writer/parser.
        let text = json.to_string_pretty();
        assert_eq!(psnap_json::Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn e9_smoke_and_json_shape() {
        let data = e9_cell_contention_data(Effort { ops: 5 });
        // 4 thread counts × 2 distributions.
        assert_eq!(data.points.len(), 8);
        assert!(data
            .points
            .iter()
            .all(|p| p.rwlock_ops_per_sec > 0.0 && p.lockfree_ops_per_sec > 0.0));
        let json = data.to_json();
        assert_eq!(
            json.get("experiment").and_then(psnap_json::Json::as_str),
            Some("E9")
        );
        let points = json
            .get("points")
            .and_then(psnap_json::Json::as_array)
            .unwrap();
        assert_eq!(points.len(), 8);
        // Round-trips through the writer/parser.
        let text = json.to_string_pretty();
        assert_eq!(psnap_json::Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn e9_per_op_steps_are_identical_across_cells() {
        use psnap_shmem::{RwLockVersionedCell, StepScope, VersionedCell};
        // The acceptance criterion for the lock-free swing: the paper's cost
        // metric must not move. One store + one load costs exactly one write
        // step + one read step on both implementations.
        let lockfree = VersionedCell::new(0u64);
        let scope = StepScope::start();
        lockfree.store(1);
        let _ = lockfree.load();
        let lf = scope.finish();
        let baseline = RwLockVersionedCell::new(0u64);
        let scope = StepScope::start();
        baseline.store(1);
        let _ = baseline.load();
        let rw = scope.finish();
        assert_eq!(lf, rw);
        assert_eq!(lf.reads, 1);
        assert_eq!(lf.writes, 1);
    }

    #[test]
    fn e10_smoke_json_shape_and_batching_wins_on_steps() {
        let data = e10_batched_updates_data(Effort { ops: 12 });
        // 4 shard counts × 2 distributions × 4 batch sizes — the joint grid.
        assert_eq!(data.points.len(), 32);
        for shards in [1usize, 2, 4, 8] {
            assert_eq!(
                data.points.iter().filter(|p| p.shards == shards).count(),
                8,
                "shard count {shards} missing from the grid"
            );
        }
        assert!(data
            .points
            .iter()
            .all(|p| p.batched_steps_per_component > 0.0 && p.looped_steps_per_component > 0.0));
        // The acceptance bar of the batching tentpole: at batch size >= 4, at
        // least one implementation does strictly less base-object work per
        // component batched than looped.
        assert!(
            data.points
                .iter()
                .any(|p| p.batch >= 4 && p.step_speedup > 1.0),
            "batching never beat looping: {:?}",
            data.points
        );
        let json = data.to_json();
        assert_eq!(
            json.get("experiment").and_then(psnap_json::Json::as_str),
            Some("E10")
        );
        let points = json
            .get("points")
            .and_then(psnap_json::Json::as_array)
            .unwrap();
        assert_eq!(points.len(), 32);
        assert!(points.iter().all(|p| p.get("shards").is_some()));
        let text = json.to_string_pretty();
        assert_eq!(psnap_json::Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn e11_smoke_json_shape_and_coalescing_wins() {
        let data = e11_service_data(Effort { ops: 40 });
        // 2 backends × 2 distributions × 2 client counts × 3 modes.
        assert_eq!(data.points.len(), 24);
        assert!(data.points.iter().all(|p| p.ops_per_sec > 0.0));
        // Baselines never coalesce; their ratio is exactly 1 scan per
        // backing scan and their relative throughput is 1 by construction.
        for p in data.points.iter().filter(|p| p.mode == "none") {
            assert!((p.coalesce_ratio - 1.0).abs() < 1e-9, "{p:?}");
            assert!((p.throughput_vs_uncoalesced - 1.0).abs() < 1e-9);
        }
        // The acceptance bar of the service tentpole, asserted loosely here
        // because this is a tiny smoke run on an arbitrary CI host and both
        // quantities are wall-clock-dependent (the strict version is what
        // the full-effort BENCH_E11.json records): with >= 8 clients,
        // coalescing must merge requests somewhere (ratio > 1) and beat the
        // no-coalescing baseline somewhere.
        let at_8: Vec<_> = data
            .points
            .iter()
            .filter(|p| p.clients >= 8 && p.mode != "none")
            .collect();
        assert!(!at_8.is_empty());
        assert!(
            at_8.iter().any(|p| p.coalesce_ratio > 1.0),
            "coalescing never merged at 8 clients: {at_8:?}"
        );
        assert!(
            at_8.iter().any(|p| p.throughput_vs_uncoalesced > 1.0),
            "coalescing never beat the baseline at 8 clients: {at_8:?}"
        );
        // Latency percentiles are populated and ordered.
        assert!(data
            .points
            .iter()
            .all(|p| p.scan_p99_ns >= p.scan_p50_ns && p.scan_p50_ns > 0.0));
        let json = data.to_json();
        assert_eq!(
            json.get("experiment").and_then(psnap_json::Json::as_str),
            Some("E11")
        );
        let points = json
            .get("points")
            .and_then(psnap_json::Json::as_array)
            .unwrap();
        assert_eq!(points.len(), 24);
        let text = json.to_string_pretty();
        assert_eq!(psnap_json::Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn e12_smoke_json_shape_and_mv_tail_is_bounded() {
        let data = e12_multiversion_data(Effort { ops: 25 });
        // 3 shard counts × 2 paths.
        assert_eq!(data.points.len(), 6);
        assert!(data
            .points
            .iter()
            .all(|p| p.scan_steps_mean > 0.0 && p.scan_p99_ns >= p.scan_p50_ns));
        for p in data.points.iter().filter(|p| p.path == "coordinated") {
            assert!((p.steps_p99_vs_coordinated - 1.0).abs() < 1e-9, "{p:?}");
        }
        // The acceptance bar of the multiversioning tentpole, asserted on
        // the host-independent metric: under churn the multiversioned scan's
        // steps p99 stays at or below the retry/fallback baseline's (the
        // baseline tail carries validation retries and fallback drains; the
        // one-shot read carries only its bounded chain walks). Asserted for
        // the multi-shard rows — the coordinated-fallback machinery the
        // tentpole replaces only exists there; at 1 shard the baseline is
        // the already-wait-free Figure 3 object and the row is
        // informational. A small tolerance absorbs smoke-effort sampling
        // noise; the full-effort BENCH_E12.json records the strict
        // comparison.
        for p in data
            .points
            .iter()
            .filter(|p| p.path == "mv" && p.shards >= 2)
        {
            assert!(
                p.steps_p99_vs_coordinated <= 1.10,
                "mv steps p99 above the coordinated baseline: {p:?}"
            );
        }
        let json = data.to_json();
        assert_eq!(
            json.get("experiment").and_then(psnap_json::Json::as_str),
            Some("E12")
        );
        let points = json
            .get("points")
            .and_then(psnap_json::Json::as_array)
            .unwrap();
        assert_eq!(points.len(), 6);
        let text = json.to_string_pretty();
        assert_eq!(psnap_json::Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn e14_smoke_json_shape_and_stale_fastpath_skips_backing_scans() {
        let data = e14_fastpath_data(Effort { ops: 32 });
        // 2 backends × 3 stale fractions × 2 client counts × 4 modes.
        assert_eq!(data.points.len(), 48);
        assert!(data.points.iter().all(|p| p.ops_per_sec > 0.0));
        // The acceptance bar of the fast-path tentpole, host-independent
        // half: on the multiversioned backend a pure-stale mix is absorbed
        // entirely by the mv and cache tiers — zero backing union scans —
        // and the mv tier does real work. Version-history-free backends
        // never report mv service.
        for p in data
            .points
            .iter()
            .filter(|p| p.backend == "mv-sharded-k4" && p.stale_frac == 1.0)
        {
            assert_eq!(p.backing_scans, 0.0, "{p:?}");
            assert_eq!(p.served_backing, 0.0, "{p:?}");
            assert!(p.mv_hit_ratio > 0.0, "{p:?}");
        }
        for p in data.points.iter().filter(|p| p.backend == "fig3-cas") {
            assert_eq!(p.served_mv, 0.0, "{p:?}");
            assert_eq!(p.mv_hit_ratio, 0.0, "{p:?}");
        }
        // Baselines are their own reference point.
        for p in data.points.iter().filter(|p| p.mode == "none") {
            assert!((p.throughput_vs_none - 1.0).abs() < 1e-9, "{p:?}");
        }
        // The wall-clock half (adaptive tracks the best fixed window) is
        // asserted loosely — this is a tiny smoke run on an arbitrary CI
        // host; the full-effort BENCH_E14.json records the strict sweep.
        let adaptive: Vec<_> = data
            .points
            .iter()
            .filter(|p| p.mode == "adaptive")
            .collect();
        assert_eq!(adaptive.len(), 12);
        assert!(adaptive.iter().all(|p| p.throughput_vs_best_fixed > 0.0));
        assert!(
            adaptive.iter().any(|p| p.throughput_vs_best_fixed >= 1.0),
            "adaptive never reached the best fixed window: {adaptive:?}"
        );
        assert!(data
            .points
            .iter()
            .all(|p| p.scan_p99_ns >= p.scan_p50_ns && p.scan_p50_ns > 0.0));
        let json = data.to_json();
        assert_eq!(
            json.get("experiment").and_then(psnap_json::Json::as_str),
            Some("E14")
        );
        let points = json
            .get("points")
            .and_then(psnap_json::Json::as_array)
            .unwrap();
        assert_eq!(points.len(), 48);
        let text = json.to_string_pretty();
        assert_eq!(psnap_json::Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn e15_smoke_reshards_apply_and_no_scan_tears() {
        let data = e15_reshard_data(Effort { ops: 24 });
        // 2 backends × 2 Zipf skews.
        assert_eq!(data.points.len(), 4);
        for p in &data.points {
            // The hard acceptance bar, host-independent: migration moves
            // every value exactly, so no scan ever tears or fails — on the
            // live multiversioned path *and* the drain-and-rebuild baseline.
            assert_eq!(p.torn_scans, 0, "{p:?}");
            assert_eq!(p.failed_scans, 0, "{p:?}");
            // The storm really migrated under traffic.
            assert!(p.reshards >= 1, "{p:?}");
            assert!(p.generation >= p.reshards, "{p:?}");
            assert_eq!(p.shards_before, 2, "{p:?}");
            assert!(p.baseline_p99_ns >= p.baseline_p50_ns, "{p:?}");
            assert!(p.reshard_p99_ns >= p.reshard_p50_ns, "{p:?}");
            assert!(p.worst_stall_ns >= p.reshard_p99_ns, "{p:?}");
        }
        let json = data.to_json();
        assert_eq!(
            json.get("experiment").and_then(psnap_json::Json::as_str),
            Some("E15")
        );
        let points = json
            .get("points")
            .and_then(psnap_json::Json::as_array)
            .unwrap();
        assert_eq!(points.len(), 4);
        let text = json.to_string_pretty();
        assert_eq!(psnap_json::Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn e16_smoke_spans_attribute_stages_and_dump_the_induced_anomaly() {
        // Structural half of the step claim, checked deterministically: with
        // no concurrent scanners the updater's step count is a pure function
        // of the workload, so off-vs-on must be *exactly* equal (spans never
        // call steps::record). The grid's aggregate runs under scanners,
        // where helping makes step counts noisy — that one is reported, not
        // asserted.
        psnap_obs::set_trace_enabled(true);
        let measured = e16_point(ImplKind::Cas, 64, 4, 16, 2, 0, None);
        psnap_obs::set_trace_enabled(false);
        psnap_obs::set_span_enabled(false);
        assert_eq!(
            measured.off_steps_per_component, measured.on_steps_per_component,
            "span collection perturbed the paper's step metric"
        );

        let data = e16_span_tracing_data(Effort { ops: 8 });
        // 4 shard counts × 2 distributions × 4 batch sizes.
        assert_eq!(data.points.len(), 32);
        for p in &data.points {
            assert!(p.off_comps_per_sec > 0.0, "{p:?}");
            assert!(p.on_comps_per_sec > 0.0, "{p:?}");
            assert!(p.sampled_comps_per_sec > 0.0, "{p:?}");
            assert!((0.0..=1.0).contains(&p.trimmed_fraction), "{p:?}");
        }
        // Part B read real trees and produced the full stage breakdown.
        assert_eq!(data.stages.len(), 5);
        assert!(data.trees_captured > 0);
        let total = data.stages.last().unwrap();
        assert_eq!(total.stage, "total");
        assert!(total.count > 0);
        for s in &data.stages {
            if s.count > 0 {
                assert!(s.p99_ns >= s.p50_ns, "{s:?}");
            }
        }
        let queue = &data.stages[0];
        assert_eq!(queue.stage, "queue_wait");
        assert!(queue.count > 0, "served scans always have a queue-wait leg");
        // Part C: the 1ns SLO fired, and the frozen dump carries the
        // triggering request's own tree and survives psnap-json exactly.
        assert_eq!(data.anomaly_reason, "latency_slo");
        assert!(data.anomaly_dump_trees >= 1);
        assert!(data.triggering_tree_present);
        assert!(data.dump_round_trips);

        let json = data.to_json();
        assert_eq!(
            json.get("experiment").and_then(psnap_json::Json::as_str),
            Some("E16")
        );
        let points = json
            .get("points")
            .and_then(psnap_json::Json::as_array)
            .unwrap();
        assert_eq!(points.len(), 32);
        let text = json.to_string_pretty();
        assert_eq!(psnap_json::Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn e17_smoke_json_shape_and_chaos_accounting_holds() {
        let data = e17_wire_data(Effort { ops: 24 });
        // 4 connection counts × 2 transports.
        assert_eq!(data.points.len(), 8);
        for p in &data.points {
            assert!(p.ops_per_sec > 0.0, "{p:?}");
            assert!(p.scan_p99_ns >= p.scan_p50_ns, "{p:?}");
            assert!(p.transport == "inproc" || p.transport == "tcp", "{p:?}");
        }
        for pair in data.points.chunks(2) {
            assert_eq!(pair[0].transport, "inproc");
            assert_eq!(pair[0].connections, pair[1].connections);
            assert!((pair[0].throughput_vs_inproc - 1.0).abs() < 1e-9);
            assert!(pair[1].throughput_vs_inproc > 0.0);
        }
        // The chaos acceptance criteria: kills interrupted some requests,
        // yet no response was lost or duplicated and the server-side
        // accepted == resolved invariant held.
        let chaos = &data.chaos;
        assert!(chaos.kills > 0);
        assert!(chaos.tickets_ok > 0.0, "no request survived at all");
        assert_eq!(
            chaos.tickets_hung, 0.0,
            "a ticket never resolved: lost response"
        );
        assert_eq!(
            chaos.duplicate_replies, 0.0,
            "duplicated/misattributed replies"
        );
        assert!(
            chaos.accounting_holds,
            "server accepted != resolved after kills"
        );

        let json = data.to_json();
        assert_eq!(
            json.get("experiment").and_then(psnap_json::Json::as_str),
            Some("E17")
        );
        let points = json
            .get("points")
            .and_then(psnap_json::Json::as_array)
            .unwrap();
        assert_eq!(points.len(), 8);
        assert!(json.get("chaos").is_some());
        let text = json.to_string_pretty();
        assert_eq!(psnap_json::Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn e6_portfolio_partial_scans_are_always_consistent() {
        let outcome = portfolio_consistency_run(
            MarketConfig {
                stocks: 64,
                portfolios: 4,
                holdings_per_portfolio: 6,
                ..Default::default()
            },
            150,
        );
        assert_eq!(
            outcome.snapshot_violations, 0,
            "partial scans must never tear"
        );
        assert_eq!(outcome.valuations, 150);
        assert!(outcome.snapshot_scan_steps.mean < outcome.full_scan_steps.mean);
    }
}
