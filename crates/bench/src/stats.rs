//! Small summary-statistics helper for experiment tables.

/// Summary statistics of a sample of per-operation measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile (the service-latency tail metric of E11).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Returns the zero summary for an empty sample.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN measurements"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let pct = |q: f64| sorted[((count as f64 - 1.0) * q).round() as usize];
        Summary {
            count,
            mean,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: sorted[count - 1],
        }
    }

    /// Summarizes integer samples (step counts).
    pub fn of_u64(samples: &[u64]) -> Summary {
        let as_f64: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&as_f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_zero() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.p50, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn known_distribution() {
        let samples: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = Summary::of(&samples);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.0).abs() <= 1.0);
        assert!((s.p95 - 95.0).abs() <= 1.0);
        assert!((s.p99 - 99.0).abs() <= 1.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn of_u64_matches_of() {
        let a = Summary::of_u64(&[1, 2, 3, 4]);
        let b = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = Summary::of(&[9.0, 1.0, 5.0]);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.p50, 5.0);
    }
}
