//! The measurement runner behind every experiment: runs a scanner/updater mix
//! against one implementation and records, per operation, the number of
//! base-object steps (the paper's cost metric) and the wall-clock latency.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use psnap_core::{PartialSnapshot, ProcessId};
use psnap_shmem::StepScope;
use psnap_workloads::IndexDist;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats::Summary;

/// One measurement point: the fixed parameters of a single run.
#[derive(Clone, Debug)]
pub struct PointConfig {
    /// Number of components of the object.
    pub m: usize,
    /// Components per partial scan.
    pub r: usize,
    /// Number of updater processes.
    pub updaters: usize,
    /// Number of scanner processes.
    pub scanners: usize,
    /// Updates performed by each updater.
    pub ops_per_updater: usize,
    /// Scans performed by each scanner.
    pub ops_per_scanner: usize,
    /// Components written atomically per updater operation: `1` issues plain
    /// `update` calls, `k > 1` issues `update_many` batches of `k` distinct
    /// components (the E10 axis; steps and latency are recorded per batch).
    pub update_batch: usize,
    /// If set, updaters only write components `0..k` (used to force update
    /// pressure onto the scanned components for worst-case experiments).
    pub update_range: Option<usize>,
    /// If set, components are chosen Zipf-distributed with this skew (hot
    /// components attract most traffic); otherwise uniformly.
    pub zipf_s: Option<f64>,
    /// Seed for component selection.
    pub seed: u64,
}

impl PointConfig {
    /// A balanced default configuration, customized by the experiments.
    pub fn new(m: usize, r: usize, updaters: usize, scanners: usize, ops: usize) -> Self {
        PointConfig {
            m,
            r,
            updaters,
            scanners,
            ops_per_updater: ops,
            ops_per_scanner: ops,
            update_batch: 1,
            update_range: None,
            zipf_s: None,
            seed: 0x5eed,
        }
    }

    /// The same configuration with Zipf-distributed component selection.
    pub fn with_zipf(mut self, s: f64) -> Self {
        self.zipf_s = Some(s);
        self
    }

    /// The same configuration with every updater op an atomic `update_many`
    /// of `batch` distinct components.
    pub fn with_update_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "a batch writes at least one component");
        self.update_batch = batch;
        self
    }
}

/// The measurements taken at one point for one implementation.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Base-object steps per scan.
    pub scan_steps: Summary,
    /// Base-object steps per update.
    pub update_steps: Summary,
    /// Scan latency in nanoseconds.
    pub scan_latency_ns: Summary,
    /// Update latency in nanoseconds.
    pub update_latency_ns: Summary,
    /// Wall-clock duration of the whole run.
    pub wall_time: Duration,
    /// Total operations completed.
    pub total_ops: usize,
}

impl PointResult {
    /// Aggregate throughput in operations per second.
    pub fn throughput_ops_per_sec(&self) -> f64 {
        if self.wall_time.is_zero() {
            return 0.0;
        }
        self.total_ops as f64 / self.wall_time.as_secs_f64()
    }
}

struct OpSamples {
    steps: Vec<u64>,
    latency_ns: Vec<f64>,
}

/// Runs one point against `snapshot` and collects the measurements.
///
/// Updaters use process ids `0..updaters`; scanners use
/// `updaters..updaters+scanners`. The object must have been built for at least
/// that many processes and `m` components.
pub fn run_point(snapshot: &Arc<dyn PartialSnapshot<u64>>, cfg: &PointConfig) -> PointResult {
    assert!(snapshot.components() >= cfg.m);
    assert!(snapshot.max_processes() >= cfg.updaters + cfg.scanners);
    let stop = Arc::new(AtomicBool::new(false));
    let start_barrier = Arc::new(std::sync::Barrier::new(cfg.updaters + cfg.scanners + 1));

    let mut updater_handles = Vec::new();
    for u in 0..cfg.updaters {
        let snapshot = Arc::clone(snapshot);
        let cfg = cfg.clone();
        let barrier = Arc::clone(&start_barrier);
        updater_handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (u as u64) << 1);
            let range = cfg.update_range.unwrap_or(cfg.m).max(1);
            let dist = match cfg.zipf_s {
                Some(s) => IndexDist::zipf(range, s),
                None => IndexDist::uniform(range),
            };
            let mut steps = Vec::with_capacity(cfg.ops_per_updater);
            let mut latency = Vec::with_capacity(cfg.ops_per_updater);
            barrier.wait();
            for k in 0..cfg.ops_per_updater {
                let value = (k as u64 + 1) * 1000 + u as u64;
                if cfg.update_batch > 1 {
                    let writes: Vec<(usize, u64)> = dist
                        .sample_set(&mut rng, cfg.update_batch)
                        .into_iter()
                        .map(|c| (c, value))
                        .collect();
                    let scope = StepScope::start();
                    let t0 = Instant::now();
                    snapshot.update_many(ProcessId(u), &writes);
                    latency.push(t0.elapsed().as_nanos() as f64);
                    steps.push(scope.finish().total());
                } else {
                    let component = dist.sample(&mut rng);
                    let scope = StepScope::start();
                    let t0 = Instant::now();
                    snapshot.update(ProcessId(u), component, value);
                    latency.push(t0.elapsed().as_nanos() as f64);
                    steps.push(scope.finish().total());
                }
            }
            OpSamples {
                steps,
                latency_ns: latency,
            }
        }));
    }

    let mut scanner_handles = Vec::new();
    for s in 0..cfg.scanners {
        let snapshot = Arc::clone(snapshot);
        let cfg = cfg.clone();
        let barrier = Arc::clone(&start_barrier);
        scanner_handles.push(std::thread::spawn(move || {
            let pid = cfg.updaters + s;
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xABCD ^ ((s as u64) << 17));
            let dist = match cfg.zipf_s {
                Some(skew) => IndexDist::zipf(cfg.m, skew),
                None => IndexDist::uniform(cfg.m),
            };
            let mut steps = Vec::with_capacity(cfg.ops_per_scanner);
            let mut latency = Vec::with_capacity(cfg.ops_per_scanner);
            barrier.wait();
            for _ in 0..cfg.ops_per_scanner {
                let components = dist.sample_set(&mut rng, cfg.r);
                let scope = StepScope::start();
                let t0 = Instant::now();
                let values = snapshot.scan(ProcessId(pid), &components);
                latency.push(t0.elapsed().as_nanos() as f64);
                steps.push(scope.finish().total());
                debug_assert_eq!(values.len(), components.len());
            }
            OpSamples {
                steps,
                latency_ns: latency,
            }
        }));
    }

    start_barrier.wait();
    let run_start = Instant::now();
    let update_samples: Vec<OpSamples> = updater_handles
        .into_iter()
        .map(|h| h.join().expect("updater thread panicked"))
        .collect();
    let scan_samples: Vec<OpSamples> = scanner_handles
        .into_iter()
        .map(|h| h.join().expect("scanner thread panicked"))
        .collect();
    let wall_time = run_start.elapsed();
    stop.store(true, Ordering::Relaxed);

    let collect_steps = |samples: &[OpSamples]| -> Vec<u64> {
        samples
            .iter()
            .flat_map(|s| s.steps.iter().copied())
            .collect()
    };
    let collect_latency = |samples: &[OpSamples]| -> Vec<f64> {
        samples
            .iter()
            .flat_map(|s| s.latency_ns.iter().copied())
            .collect()
    };
    let update_steps = collect_steps(&update_samples);
    let scan_steps = collect_steps(&scan_samples);
    let total_ops = update_steps.len() + scan_steps.len();
    // Feed the per-implementation step distributions into the global obs
    // registry, so a harness registry scrape carries one step histogram per
    // implementation name accumulated over every point it ran.
    if psnap_obs::enabled() {
        let registry = psnap_obs::Registry::global();
        let name = snapshot.name();
        let scan_hist = registry.histogram(&format!("bench.{name}.scan.steps"));
        let update_hist = registry.histogram(&format!("bench.{name}.update.steps"));
        for &v in &scan_steps {
            scan_hist.record(v);
        }
        for &v in &update_steps {
            update_hist.record(v);
        }
    }
    PointResult {
        scan_steps: Summary::of_u64(&scan_steps),
        update_steps: Summary::of_u64(&update_steps),
        scan_latency_ns: Summary::of(&collect_latency(&scan_samples)),
        update_latency_ns: Summary::of(&collect_latency(&update_samples)),
        wall_time,
        total_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implementations::ImplKind;

    #[test]
    fn run_point_collects_all_samples() {
        let snapshot = ImplKind::Cas.build(32, 4, 0);
        let cfg = PointConfig::new(32, 4, 2, 2, 50);
        let result = run_point(&snapshot, &cfg);
        assert_eq!(result.scan_steps.count, 100);
        assert_eq!(result.update_steps.count, 100);
        assert_eq!(result.total_ops, 200);
        assert!(
            result.scan_steps.mean >= 4.0,
            "a scan reads at least r registers"
        );
        assert!(result.throughput_ops_per_sec() > 0.0);
    }

    #[test]
    fn scanner_only_and_updater_only_points_work() {
        let snapshot = ImplKind::Register.build(16, 4, 0);
        let scan_only = run_point(&snapshot, &PointConfig::new(16, 4, 0, 2, 20));
        assert_eq!(scan_only.update_steps.count, 0);
        assert_eq!(scan_only.scan_steps.count, 40);

        let update_only = run_point(&snapshot, &PointConfig::new(16, 4, 2, 0, 20));
        assert_eq!(update_only.scan_steps.count, 0);
        assert_eq!(update_only.update_steps.count, 40);
    }

    #[test]
    fn zipf_points_run_and_collect_samples() {
        let snapshot = ImplKind::SHARDED_CAS_4.build(64, 4, 0);
        let cfg = PointConfig::new(64, 8, 2, 2, 40).with_zipf(0.9);
        let result = run_point(&snapshot, &cfg);
        assert_eq!(result.scan_steps.count, 80);
        assert_eq!(result.update_steps.count, 80);
    }

    #[test]
    fn update_range_limits_update_targets() {
        // Smoke test: with a restricted range the run still completes and
        // produces samples (the functional effect is covered by E2).
        let snapshot = ImplKind::Cas.build(64, 3, 0);
        let mut cfg = PointConfig::new(64, 8, 2, 1, 30);
        cfg.update_range = Some(8);
        let result = run_point(&snapshot, &cfg);
        assert_eq!(result.update_steps.count, 60);
        assert_eq!(result.scan_steps.count, 30);
    }
}
