//! The experiment harness: regenerates the E1–E7 tables of EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! harness [--quick] <experiment id | all> [more ids...]
//! ```
//!
//! `--quick` runs each point with a small number of operations (for smoke
//! testing the harness itself); without it, the full effort used for
//! EXPERIMENTS.md is applied.

use psnap_bench::{run_experiment, Effort, ALL_EXPERIMENTS};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = Effort::full();
    args.retain(|a| {
        if a == "--quick" {
            effort = Effort::smoke();
            false
        } else {
            true
        }
    });
    if args.is_empty() {
        eprintln!("usage: harness [--quick] <E1..E7 | all> [more ids...]");
        std::process::exit(2);
    }
    let ids: Vec<String> = if args.iter().any(|a| a.eq_ignore_ascii_case("all")) {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    for id in ids {
        match run_experiment(&id, effort) {
            Some(table) => {
                println!("{}", table.to_markdown());
            }
            None => {
                eprintln!("unknown experiment id: {id} (expected one of {ALL_EXPERIMENTS:?})");
                std::process::exit(2);
            }
        }
    }
}
