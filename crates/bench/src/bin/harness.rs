//! The experiment harness: regenerates the E1–E10 tables of EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! harness [--quick] [--json] <experiment id | all> [more ids...]
//! ```
//!
//! `--quick` runs each point with a small number of operations (for smoke
//! testing the harness itself); without it, the full effort used for
//! EXPERIMENTS.md is applied. `--json` additionally writes machine-readable
//! results for the experiments that define a JSON schema (E8 →
//! `BENCH_E8.json`, E9 → `BENCH_E9.json`, E10 → `BENCH_E10.json`, E11 →
//! `BENCH_E11.json`, E12 → `BENCH_E12.json`, E13 → `BENCH_E13.json` plus a
//! `BENCH_E13_REGISTRY.json` scrape of the live metric registry, E14 →
//! `BENCH_E14.json`, E15 → `BENCH_E15.json`, E16 → `BENCH_E16.json`, E17 → `BENCH_E17.json`), so the
//! performance trajectory of the sharded store, the lock-free cell, the
//! batched-update path, the service frontend, the multiversioned scan path,
//! the observability layer itself, the fast-path serving tiers, the
//! online-resharding path and the span-tracing layer can be tracked across
//! commits. JSON files are written atomically (temp file
//! in the same directory, then rename), so an interrupted run can never
//! leave a truncated `BENCH_*.json` behind.

use psnap_bench::{
    e10_batched_updates_data, e11_service_data, e12_multiversion_data, e13_obs_overhead_data,
    e14_fastpath_data, e15_reshard_data, e16_span_tracing_data, e17_wire_data, e8_sharding_data,
    e9_cell_contention_data, run_experiment, Effort, ALL_EXPERIMENTS,
};

/// Writes `contents` to `path` atomically: the bytes land in a temporary
/// sibling file first and only a successful rename publishes them, so a
/// crash mid-write leaves either the old file or the new one, never a
/// truncated hybrid.
fn write_atomically(path: &str, contents: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = Effort::full();
    let mut json = false;
    args.retain(|a| match a.as_str() {
        "--quick" => {
            effort = Effort::smoke();
            false
        }
        "--json" => {
            json = true;
            false
        }
        _ => true,
    });
    if args.is_empty() {
        eprintln!("usage: harness [--quick] [--json] <E1..E17 | all> [more ids...]");
        std::process::exit(2);
    }
    let ids: Vec<String> = if args.iter().any(|a| a.eq_ignore_ascii_case("all")) {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    for id in ids {
        // Experiments with a JSON schema: run the measurement once and
        // derive both the JSON document and the table from the same data.
        let measured_with_json = match id.to_ascii_uppercase().as_str() {
            "E8" if json => {
                let data = e8_sharding_data(effort);
                Some((
                    "BENCH_E8.json",
                    data.to_json(),
                    psnap_bench::experiments::e8_sharding_table(&data),
                ))
            }
            "E9" if json => {
                let data = e9_cell_contention_data(effort);
                Some((
                    "BENCH_E9.json",
                    data.to_json(),
                    psnap_bench::experiments::e9_cell_contention_table(&data),
                ))
            }
            "E10" if json => {
                let data = e10_batched_updates_data(effort);
                Some((
                    "BENCH_E10.json",
                    data.to_json(),
                    psnap_bench::experiments::e10_batched_updates_table(&data),
                ))
            }
            "E11" if json => {
                let data = e11_service_data(effort);
                Some((
                    "BENCH_E11.json",
                    data.to_json(),
                    psnap_bench::experiments::e11_service_table(&data),
                ))
            }
            "E12" if json => {
                let data = e12_multiversion_data(effort);
                Some((
                    "BENCH_E12.json",
                    data.to_json(),
                    psnap_bench::experiments::e12_multiversion_table(&data),
                ))
            }
            "E13" if json => {
                let data = e13_obs_overhead_data(effort);
                // The workload just ran fully instrumented; dump the global
                // registry alongside the overhead numbers so a harness run
                // also exercises (and preserves) one real registry scrape.
                let registry = psnap_obs::Registry::global();
                psnap_shmem::metrics::register_metrics(registry);
                write_atomically(
                    "BENCH_E13_REGISTRY.json",
                    &registry.to_json().to_string_pretty(),
                )
                .unwrap_or_else(|e| panic!("failed to write BENCH_E13_REGISTRY.json: {e}"));
                eprintln!("wrote BENCH_E13_REGISTRY.json");
                Some((
                    "BENCH_E13.json",
                    data.to_json(),
                    psnap_bench::experiments::e13_obs_overhead_table(&data),
                ))
            }
            "E14" if json => {
                let data = e14_fastpath_data(effort);
                Some((
                    "BENCH_E14.json",
                    data.to_json(),
                    psnap_bench::experiments::e14_fastpath_table(&data),
                ))
            }
            "E15" if json => {
                let data = e15_reshard_data(effort);
                Some((
                    "BENCH_E15.json",
                    data.to_json(),
                    psnap_bench::experiments::e15_reshard_table(&data),
                ))
            }
            "E16" if json => {
                let data = e16_span_tracing_data(effort);
                Some((
                    "BENCH_E16.json",
                    data.to_json(),
                    psnap_bench::experiments::e16_span_tracing_table(&data),
                ))
            }
            "E17" if json => {
                let data = e17_wire_data(effort);
                Some((
                    "BENCH_E17.json",
                    data.to_json(),
                    psnap_bench::experiments::e17_wire_table(&data),
                ))
            }
            _ => None,
        };
        if let Some((path, doc, table)) = measured_with_json {
            // The file is written before the table prints so an early-closed
            // stdout (e.g. `| head`) cannot lose the machine-readable results.
            write_atomically(path, &doc.to_string_pretty())
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            eprintln!("wrote {path}");
            println!("{}", table.to_markdown());
            continue;
        }
        match run_experiment(&id, effort) {
            Some(table) => {
                println!("{}", table.to_markdown());
            }
            None => {
                eprintln!("unknown experiment id: {id} (expected one of {ALL_EXPERIMENTS:?})");
                std::process::exit(2);
            }
        }
    }
}
