//! Benchmarks and the experiment harness for the partial snapshot
//! reproduction.
//!
//! The paper's quantitative claims (Theorems 1–3) are stated in the
//! base-object step model, so the primary measurement tool here is the step
//! counter of `psnap-shmem`, driven by the [`runner`] over the scanner/updater
//! mixes defined in `psnap-workloads`. The [`experiments`] module regenerates
//! every table of EXPERIMENTS.md (E1–E17); the Criterion benches under
//! `benches/` provide wall-clock companions to the same sweeps.
//!
//! Regenerate a table with, for example:
//!
//! ```text
//! cargo run -p psnap-bench --release --bin harness -- e1
//! cargo run -p psnap-bench --release --bin harness -- all
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod implementations;
pub mod runner;
pub mod stats;

pub use experiments::{
    e10_batched_updates_data, e11_service_data, e12_multiversion_data, e13_obs_overhead_data,
    e14_fastpath_data, e15_reshard_data, e16_span_tracing_data, e17_wire_data, e8_sharding_data,
    e9_cell_contention_data, run_experiment, E10Data, E10Point, E11Data, E11Point, E12Data,
    E12Point, E14Data, E14Point, E15Data, E15Point, E16Data, E16Point, E16Stage, E17Chaos, E17Data,
    E17Point, E8Data, E8Point, E9Data, E9Point, Effort, Table, ALL_EXPERIMENTS,
};
pub use implementations::ImplKind;
pub use runner::{run_point, PointConfig, PointResult};
pub use stats::Summary;
