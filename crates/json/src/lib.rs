//! A minimal JSON value type, writer and parser.
//!
//! The workspace builds hermetically (no crates.io, hence no serde), but the
//! workload descriptions and the experiment harness need machine-readable
//! output (`BENCH_E8.json`, sweep round-trips). This crate provides just
//! enough JSON for that: a [`Json`] tree, a compact and a pretty writer, and
//! a recursive-descent parser. Structs that need (de)serialization implement
//! explicit `to_json` / `from_json` conversions — a few lines each, with the
//! benefit that the wire format is spelled out in code rather than derived.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are ordered (BTreeMap) so output is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as usize, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    /// Encodes a `u64` without loss. Numbers are stored as `f64`, which is
    /// exact only up to 2^53; larger values are written as a decimal string
    /// so wire payloads never silently round. Decode with
    /// [`Json::as_u64_precise`].
    pub fn u64(v: u64) -> Json {
        const MAX_SAFE: u64 = 1 << 53;
        if v <= MAX_SAFE {
            Json::Num(v as f64)
        } else {
            Json::Str(v.to_string())
        }
    }

    /// Decodes a value written by [`Json::u64`]: either an integral number
    /// or a decimal string. Strings with signs, leading zeros, or any
    /// non-digit are rejected so the accepted grammar stays canonical.
    pub fn as_u64_precise(&self) -> Option<u64> {
        match self {
            Json::Num(_) => self.as_u64(),
            Json::Str(s) => {
                if s.is_empty() || (s.len() > 1 && s.starts_with('0')) {
                    return None;
                }
                if !s.bytes().all(|b| b.is_ascii_digit()) {
                    return None;
                }
                s.parse::<u64>().ok()
            }
            _ => None,
        }
    }

    /// The value as &str, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close): (&str, String, String) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Trailing whitespace is allowed; trailing
    /// non-whitespace input is an error.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError {
                pos,
                message: "trailing input after document".into(),
            });
        }
        Ok(value)
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity literal; `null` keeps the document valid
        // (matching serde_json's default behaviour for non-finite floats).
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(pos: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        pos,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected '{}'", c as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected '{word}'")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let scalar = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: JSON encodes non-BMP characters
                            // as a \uD8xx\uDCxx pair; combine them.
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err(err(*pos, "unpaired surrogate"));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(err(*pos, "invalid low surrogate"));
                            }
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        out.push(
                            char::from_u32(scalar)
                                .ok_or_else(|| err(*pos, "invalid \\u code point"))?,
                        );
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid UTF-8"));
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, ParseError> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| err(at, "truncated \\u escape"))?;
    let hex = std::str::from_utf8(hex).map_err(|_| err(at, "invalid \\u escape"))?;
    u32::from_str_radix(hex, 16).map_err(|_| err(at, "invalid \\u escape"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, format!("invalid number '{text}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let doc = Json::obj([
            ("id", Json::Str("E8".into())),
            ("n", Json::Num(42.0)),
            ("half", Json::Num(0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "points",
                Json::arr([Json::Num(1.0), Json::Num(2.0), Json::Num(3.0)]),
            ),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "failed on: {text}");
        }
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(42.0).to_string_compact(), "42");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
        assert_eq!(Json::Num(-3.0).to_string_compact(), "-3");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}é漢".into());
        let text = s.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), s);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 3, "b": [1, "x"], "s": "hi"}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("a").and_then(Json::as_usize), Some(3));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(
            doc.get("b").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn precise_u64_roundtrips_above_2_pow_53() {
        for v in [
            0u64,
            1,
            (1 << 53) - 1,
            1 << 53,
            (1 << 53) + 1,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let enc = Json::u64(v);
            let text = enc.to_string_compact();
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.as_u64_precise(), Some(v), "value {v} via {text}");
        }
        // Values above 2^53 take the string form; at or below stay numeric.
        assert!(matches!(Json::u64(1 << 53), Json::Num(_)));
        assert!(matches!(Json::u64((1 << 53) + 1), Json::Str(_)));
    }

    #[test]
    fn precise_u64_rejects_non_canonical() {
        for bad in [
            "",
            "-1",
            "+1",
            "01",
            "1.5",
            "1e3",
            " 1",
            "abc",
            "18446744073709551616",
        ] {
            assert_eq!(
                Json::Str(bad.into()).as_u64_precise(),
                None,
                "should reject {bad:?}"
            );
        }
        assert_eq!(Json::Num(1.5).as_u64_precise(), None);
        assert_eq!(Json::Num(-1.0).as_u64_precise(), None);
        assert_eq!(Json::Null.as_u64_precise(), None);
        assert_eq!(Json::Num(42.0).as_u64_precise(), Some(42));
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = Json::arr([Json::Num(x)]);
            let text = doc.to_string_compact();
            assert_eq!(text, "[null]");
            assert_eq!(Json::parse(&text).unwrap(), Json::arr([Json::Null]));
        }
    }

    #[test]
    fn surrogate_pairs_parse() {
        // \uD83D\uDE00 is the JSON escape pair for U+1F600, as emitted by
        // serde_json / Python / JavaScript for non-BMP characters.
        let doc = Json::parse(r#""smile: \uD83D\uDE00!""#).unwrap();
        assert_eq!(doc, Json::Str("smile: \u{1F600}!".into()));
        // Unpaired or malformed surrogates are rejected, not mangled.
        assert!(Json::parse(r#""\uD83D""#).is_err());
        assert!(Json::parse(r#""\uD83Dx""#).is_err());
        assert!(Json::parse(r#""\uD83DA""#).is_err());
        // A lone low surrogate is also invalid.
        assert!(Json::parse(r#""\uDE00""#).is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
        let e = Json::parse("nul").unwrap_err();
        assert!(e.to_string().contains("null"));
    }

    #[test]
    fn whitespace_tolerant() {
        let doc = Json::parse(" \n\t{ \"k\" : [ 1 , 2 ] }\r\n ").unwrap();
        assert_eq!(
            doc,
            Json::obj([("k", Json::arr([Json::Num(1.0), Json::Num(2.0)]))])
        );
    }
}
