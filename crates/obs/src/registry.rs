//! The process-wide metric registry: namespaced families, partition
//! invariants, text + JSON exposition.
//!
//! Metrics are created (or re-registered) under dot-separated names —
//! `serve.scans_ok`, `shmem.mv.live_versions` — and read back as one sorted
//! catalog. Components that own their metric structs (a [`SnapshotService`],
//! a sharded store) register the *same* `Arc` handles they record into, so
//! the registry is a naming layer, never a second copy of the data.
//!
//! **Partition invariants** make the stats discipline of the service and the
//! sharded store checkable at the registry level: an invariant declares that
//! the counters on its left side must sum to the counters on its right side
//! (at quiescence), e.g. `scans_ok == served_backing + served_cache +
//! served_empty`. [`Registry::check_invariants`] evaluates every declared
//! invariant and reports the violations.
//!
//! [`SnapshotService`]: ../../psnap_serve/service/struct.SnapshotService.html

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use psnap_json::Json;

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A named metric handle held by the registry.
#[derive(Clone)]
pub enum Metric {
    /// A monotone counter.
    Counter(Arc<Counter>),
    /// A signed level gauge.
    Gauge(Arc<Gauge>),
    /// A log2 histogram.
    Histogram(Arc<Histogram>),
}

/// A point-in-time read of one registered metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricSnapshot {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// `sum(left) == sum(right)` over counter names; missing names count 0.
struct Invariant {
    name: String,
    left: Vec<String>,
    right: Vec<String>,
}

#[derive(Default)]
struct Inner {
    metrics: BTreeMap<String, Metric>,
    invariants: Vec<Invariant>,
}

/// A namespace of metrics plus the invariants declared over them.
///
/// Most code uses the process-wide [`Registry::global`]; tests that need
/// isolation construct their own.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter registered under `name`, created if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` holds a metric of a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.lock();
        match inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// The gauge registered under `name`, created if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` holds a metric of a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.lock();
        match inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// The histogram registered under `name`, created if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` holds a metric of a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.lock();
        match inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// Registers an existing metric handle under `name`, replacing whatever
    /// was there (last registration wins — re-starting a service re-points
    /// the family at the live instance's handles).
    pub fn register(&self, name: &str, metric: Metric) {
        self.lock().metrics.insert(name.to_string(), metric);
    }

    /// Declares (or replaces, by `name`) the partition invariant
    /// `sum(left) == sum(right)` over registered counter totals. Gauge or
    /// histogram names are rejected at check time; unregistered names read
    /// as 0, so an invariant may be declared before its counters.
    pub fn add_invariant(&self, name: &str, left: &[&str], right: &[&str]) {
        let mut inner = self.lock();
        inner.invariants.retain(|i| i.name != name);
        inner.invariants.push(Invariant {
            name: name.to_string(),
            left: left.iter().map(|s| s.to_string()).collect(),
            right: right.iter().map(|s| s.to_string()).collect(),
        });
    }

    fn side_sum(inner: &Inner, names: &[String]) -> Result<u64, String> {
        let mut sum = 0u64;
        for name in names {
            match inner.metrics.get(name) {
                None => {}
                Some(Metric::Counter(c)) => sum += c.get(),
                Some(_) => return Err(format!("{name} is not a counter")),
            }
        }
        Ok(sum)
    }

    /// Evaluates every declared invariant; returns one human-readable line
    /// per violation (empty means all hold). Partition invariants only
    /// *must* hold at quiescence — between a counter increment and its
    /// partner's the sums legitimately differ.
    pub fn check_invariants(&self) -> Vec<String> {
        let inner = self.lock();
        let mut violations = Vec::new();
        for inv in &inner.invariants {
            let left = Self::side_sum(&inner, &inv.left);
            let right = Self::side_sum(&inner, &inv.right);
            match (left, right) {
                (Ok(l), Ok(r)) if l == r => {}
                (Ok(l), Ok(r)) => violations.push(format!(
                    "invariant {} violated: {} ({l}) != {} ({r})",
                    inv.name,
                    inv.left.join("+"),
                    inv.right.join("+"),
                )),
                (Err(e), _) | (_, Err(e)) => {
                    violations.push(format!("invariant {} malformed: {e}", inv.name))
                }
            }
        }
        violations
    }

    /// Panics with every violation if any declared invariant fails. Call at
    /// quiescent points (after a drain, a shutdown, a test's join).
    pub fn assert_invariants(&self) {
        let violations = self.check_invariants();
        assert!(
            violations.is_empty(),
            "registry invariants violated:\n{}",
            violations.join("\n")
        );
    }

    /// Point-in-time reads of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let inner = self.lock();
        inner
            .metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Text exposition: one line per metric, sorted by name — counters and
    /// gauges as `name value`, histograms as `name count=.. sum=.. max=..
    /// p50=.. p99=..`.
    pub fn dump_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            match value {
                MetricSnapshot::Counter(v) => out.push_str(&format!("{name} {v}\n")),
                MetricSnapshot::Gauge(v) => out.push_str(&format!("{name} {v}\n")),
                MetricSnapshot::Histogram(h) => out.push_str(&format!(
                    "{name} count={} sum={} max={} p50={} p99={}\n",
                    h.count, h.sum, h.max, h.p50, h.p99
                )),
            }
        }
        out
    }

    /// JSON exposition: an object keyed by metric name; histograms expand
    /// into `{count, sum, max, p50, p99}` objects. Invariant checks ride
    /// along under `"invariant_violations"`.
    pub fn to_json(&self) -> Json {
        let mut metrics = Vec::new();
        for (name, value) in self.snapshot() {
            let v = match value {
                MetricSnapshot::Counter(v) => Json::Num(v as f64),
                MetricSnapshot::Gauge(v) => Json::Num(v as f64),
                MetricSnapshot::Histogram(h) => Json::obj([
                    ("count", Json::Num(h.count as f64)),
                    ("sum", Json::Num(h.sum as f64)),
                    ("max", Json::Num(h.max as f64)),
                    ("p50", Json::Num(h.p50 as f64)),
                    ("p99", Json::Num(h.p99 as f64)),
                ]),
            };
            metrics.push((name, v));
        }
        Json::obj([
            (
                "metrics".to_string(),
                Json::Obj(metrics.into_iter().collect()),
            ),
            (
                "invariant_violations".to_string(),
                Json::arr(self.check_invariants().into_iter().map(Json::Str)),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.inc();
        b.inc();
        assert_eq!(r.counter("x.hits").get(), 2);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn invariants_partition() {
        let r = Registry::new();
        r.counter("in").add(5);
        r.counter("out_a").add(3);
        r.counter("out_b").add(2);
        r.add_invariant("flow", &["in"], &["out_a", "out_b"]);
        assert!(r.check_invariants().is_empty());
        r.counter("out_b").inc();
        let violations = r.check_invariants();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("flow"));
    }

    #[test]
    fn exposition_lists_every_metric() {
        let r = Registry::new();
        r.counter("a.count").add(7);
        r.gauge("a.depth").add(-2);
        r.histogram("a.latency").record(100);
        let text = r.dump_text();
        assert!(text.contains("a.count 7"));
        assert!(text.contains("a.depth -2"));
        assert!(text.contains("a.latency count=1 sum=100 max=100"));
        let json = r.to_json().to_string_pretty();
        assert!(json.contains("\"a.count\""));
        assert!(json.contains("\"invariant_violations\""));
    }

    #[test]
    fn register_existing_handle_is_live() {
        let r = Registry::new();
        let c = Arc::new(Counter::new());
        r.register("ext.ops", Metric::Counter(Arc::clone(&c)));
        c.add(9);
        assert_eq!(r.counter("ext.ops").get(), 9);
    }
}
