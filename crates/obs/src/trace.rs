//! Bounded per-thread trace rings, drained into one merged timeline.
//!
//! Every thread that emits gets its own fixed-capacity ring; an emit locks
//! only the emitter's ring (uncontended in steady state — the only other
//! party is a drain), pushes one timestamped event, and on overflow drops
//! the **oldest** event and counts the drop. [`drain_timeline`] empties
//! every ring into a single timeline sorted by timestamp, carrying the total
//! overflow count so a truncated trace is never mistaken for a quiet one.
//!
//! Timestamps are nanoseconds since the first trace-related call of the
//! process — comparable across threads, meaningless across processes.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use psnap_json::Json;

/// Default per-thread ring capacity (see [`set_ring_capacity`]).
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// The event vocabulary of the snapshot stack, one variant per decision
/// point worth seeing on a timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A scanner announced itself / its timestamp (`a` = scan timestamp or
    /// announce round).
    ScanAnnounce,
    /// An optimistic cross-shard scan round failed validation (`a` = round).
    ScanRetry,
    /// A scan fell back to the coordinated path (`a` = rounds burned).
    ScanFallback,
    /// A reader help-finalized a pending single write (`a` = timestamp it
    /// assigned).
    HelpFinalize,
    /// A batched update committed (`a` = writes in the batch).
    BatchCommit,
    /// The global reclamation epoch advanced (`a` = new epoch).
    EpochAdvance,
    /// A request entered a service queue (`a` = 0 ingest / 1 scan,
    /// `b` = queue depth after the push).
    QueuePush,
    /// A drain collected queued work (`a` = 0 ingest / 1 scan, `b` = items
    /// drained).
    QueueDrain,
    /// The scan server coalesced pending requests into one backing scan
    /// (`a` = requests merged, `b` = deduplicated components read).
    Coalesce,
    /// A scan request was answered (`a` = 0 backing / 1 cache / 2 empty).
    ScanServe,
    /// A register chain was pruned (`a` = versions unlinked, `b` = chain
    /// length kept).
    Prune,
    /// A live reshard retired one partition-map generation for the next
    /// (`a` = new generation, `b` = components migrated).
    Reshard,
    /// A causal span began (`span` = its id, `a` = parent span id,
    /// `b` = [`SpanKind`](crate::span::SpanKind) code).
    SpanBegin,
    /// A causal span ended (same arguments as [`SpanBegin`]).
    ///
    /// [`SpanBegin`]: TraceKind::SpanBegin
    SpanEnd,
}

impl TraceKind {
    /// Every kind, in [`index`](TraceKind::index) order.
    pub const ALL: [TraceKind; TraceKind::COUNT] = [
        TraceKind::ScanAnnounce,
        TraceKind::ScanRetry,
        TraceKind::ScanFallback,
        TraceKind::HelpFinalize,
        TraceKind::BatchCommit,
        TraceKind::EpochAdvance,
        TraceKind::QueuePush,
        TraceKind::QueueDrain,
        TraceKind::Coalesce,
        TraceKind::ScanServe,
        TraceKind::Prune,
        TraceKind::Reshard,
        TraceKind::SpanBegin,
        TraceKind::SpanEnd,
    ];

    /// Number of kinds (the width of per-kind drop accounting).
    pub const COUNT: usize = 14;

    /// Dense index of this kind (indexes [`Timeline::dropped_by_kind`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name used in exposition.
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceKind::ScanAnnounce => "scan_announce",
            TraceKind::ScanRetry => "scan_retry",
            TraceKind::ScanFallback => "scan_fallback",
            TraceKind::HelpFinalize => "help_finalize",
            TraceKind::BatchCommit => "batch_commit",
            TraceKind::EpochAdvance => "epoch_advance",
            TraceKind::QueuePush => "queue_push",
            TraceKind::QueueDrain => "queue_drain",
            TraceKind::Coalesce => "coalesce",
            TraceKind::ScanServe => "scan_serve",
            TraceKind::Prune => "prune",
            TraceKind::Reshard => "reshard",
            TraceKind::SpanBegin => "span_begin",
            TraceKind::SpanEnd => "span_end",
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One timestamped event. The meaning of `a` and `b` is per-[`TraceKind`];
/// unused arguments are 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process trace clock started.
    pub at_ns: u64,
    /// Dense index of the emitting thread ([`crate::thread_index`]).
    pub thread: usize,
    /// What happened.
    pub kind: TraceKind,
    /// The causal span this event belongs to (0 = none): the id of the
    /// span [entered](crate::span::enter) on the emitting thread, or —
    /// for [`SpanBegin`](TraceKind::SpanBegin) /
    /// [`SpanEnd`](TraceKind::SpanEnd) — the span the event is about.
    pub span: u64,
    /// First argument (see [`TraceKind`]).
    pub a: u64,
    /// Second argument (see [`TraceKind`]).
    pub b: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12}ns t{:<3} {:<13} span={} a={} b={}",
            self.at_ns, self.thread, self.kind, self.span, self.a, self.b
        )
    }
}

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    /// Overflow drops broken down by the dropped event's kind, so a
    /// flooded ring still tells you *what* it lost.
    dropped_by_kind: [u64; TraceKind::COUNT],
}

/// All rings ever created, so a drain reaches threads that have exited.
static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());

/// Capacity applied to rings created after the last [`set_ring_capacity`].
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

/// Event collection switch, **off by default**: metrics are an always-on
/// production surface (priced by E13), but every trace event costs a clock
/// read and a ring push on a hot path — a debugging tool you switch on for
/// the window you care about, not a tax on every operation.
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns event collection on or off process-wide (independent of the metric
/// switch, though [`crate::set_enabled`]`(false)` also suppresses events).
pub fn set_trace_enabled(enabled: bool) {
    TRACE_ENABLED.store(enabled, Ordering::SeqCst);
}

/// Whether event collection is currently enabled.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

fn clock() -> &'static Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now)
}

/// Nanoseconds on the process trace clock (comparable across threads,
/// meaningless across processes). Shared by the span and flight layers so
/// every timestamp in a dump lives on one axis.
pub fn now_ns() -> u64 {
    clock().elapsed().as_nanos() as u64
}

thread_local! {
    static MY_RING: Arc<Mutex<Ring>> = {
        let ring = Arc::new(Mutex::new(Ring {
            events: VecDeque::new(),
            capacity: RING_CAPACITY.load(Ordering::Relaxed).max(1),
            dropped: 0,
            dropped_by_kind: [0; TraceKind::COUNT],
        }));
        RINGS.lock().unwrap_or_else(|e| e.into_inner()).push(Arc::clone(&ring));
        ring
    };
}

/// Sets the capacity of rings created from now on (existing rings keep
/// theirs). Call before the traffic of interest starts.
pub fn set_ring_capacity(capacity: usize) {
    RING_CAPACITY.store(capacity.max(1), Ordering::Relaxed);
}

/// Emits one event into the calling thread's ring (no-op unless
/// [`set_trace_enabled`]`(true)` and recording is not
/// [disabled](crate::set_enabled)). On overflow the oldest event is dropped
/// and accounted.
#[inline]
pub fn emit(kind: TraceKind, a: u64, b: u64) {
    emit_spanned(kind, crate::span::current(), a, b);
}

/// Like [`emit`], with an explicit span id instead of the thread's
/// [current](crate::span::current) one (used by the span layer for its own
/// begin/end events, whose subject span is not the entered one).
#[inline]
pub fn emit_spanned(kind: TraceKind, span: u64, a: u64, b: u64) {
    if !trace_enabled() || !crate::enabled() {
        return;
    }
    emit_spanned_at(kind, span, a, b, now_ns());
}

/// Like [`emit_spanned`] with the timestamp already in hand: the span layer
/// reads the clock once per edge and shares it between the interval
/// bookkeeping and the ring event, instead of paying two reads.
#[inline]
pub(crate) fn emit_spanned_at(kind: TraceKind, span: u64, a: u64, b: u64, at_ns: u64) {
    if !trace_enabled() || !crate::enabled() {
        return;
    }
    let thread = crate::thread_index();
    // `try_with`: an emit from inside a thread-local destructor (epoch
    // reclamation during thread exit) finds the ring already destroyed;
    // dropping that event is better than aborting the thread.
    let _ = MY_RING.try_with(|ring| {
        let mut ring = ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.events.len() == ring.capacity {
            if let Some(oldest) = ring.events.pop_front() {
                ring.dropped += 1;
                ring.dropped_by_kind[oldest.kind.index()] += 1;
            }
        }
        ring.events.push_back(TraceEvent {
            at_ns,
            thread,
            kind,
            span,
            a,
            b,
        });
    });
}

/// The merged timeline of every thread's drained events.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// Events sorted by timestamp (ties in emit order per thread).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow since the last drain.
    pub dropped: u64,
    /// [`dropped`](Timeline::dropped) broken down by the dropped event's
    /// kind, indexed by [`TraceKind::index`].
    pub dropped_by_kind: [u64; TraceKind::COUNT],
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline {
            events: Vec::new(),
            dropped: 0,
            dropped_by_kind: [0; TraceKind::COUNT],
        }
    }
}

impl Timeline {
    /// JSON exposition of the timeline.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "events",
                Json::arr(self.events.iter().map(|e| {
                    Json::obj([
                        ("at_ns", Json::Num(e.at_ns as f64)),
                        ("thread", Json::Num(e.thread as f64)),
                        ("kind", Json::Str(e.kind.as_str().to_string())),
                        ("span", Json::Num(e.span as f64)),
                        ("a", Json::Num(e.a as f64)),
                        ("b", Json::Num(e.b as f64)),
                    ])
                })),
            ),
            ("dropped", Json::Num(self.dropped as f64)),
            (
                "dropped_by_kind",
                Json::obj(TraceKind::ALL.iter().filter_map(|kind| {
                    let n = self.dropped_by_kind[kind.index()];
                    (n > 0).then(|| (kind.as_str(), Json::Num(n as f64)))
                })),
            ),
        ])
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for event in &self.events {
            writeln!(f, "{event}")?;
        }
        write!(
            f,
            "({} events, {} dropped)",
            self.events.len(),
            self.dropped
        )?;
        for kind in TraceKind::ALL {
            let n = self.dropped_by_kind[kind.index()];
            if n > 0 {
                write!(f, "\n  dropped {kind}: {n}")?;
            }
        }
        Ok(())
    }
}

/// Empties every thread's ring (and its overflow count) into one merged,
/// timestamp-sorted [`Timeline`]. Events emitted concurrently with the
/// drain land in the next one.
pub fn drain_timeline() -> Timeline {
    let rings: Vec<Arc<Mutex<Ring>>> = RINGS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(Arc::clone)
        .collect();
    let mut timeline = Timeline::default();
    for ring in rings {
        let mut ring = ring.lock().unwrap_or_else(|e| e.into_inner());
        timeline.events.extend(ring.events.drain(..));
        timeline.dropped += ring.dropped;
        ring.dropped = 0;
        for (total, per_ring) in timeline
            .dropped_by_kind
            .iter_mut()
            .zip(ring.dropped_by_kind.iter_mut())
        {
            *total += *per_ring;
            *per_ring = 0;
        }
    }
    timeline.events.sort_by_key(|e| e.at_ns);
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring store is process-global and a drain empties every ring, so
    // the draining tests serialize against each other and filter their own
    // events by a marker value.
    static DRAIN_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn events_merge_in_timestamp_order() {
        let _serial = DRAIN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_trace_enabled(true);
        const MARK: u64 = 0xE1E1;
        emit(TraceKind::ScanAnnounce, MARK, 1);
        std::thread::spawn(|| emit(TraceKind::BatchCommit, MARK, 2))
            .join()
            .unwrap();
        emit(TraceKind::Prune, MARK, 3);
        let timeline = drain_timeline();
        let mine: Vec<&TraceEvent> = timeline.events.iter().filter(|e| e.a == MARK).collect();
        assert_eq!(mine.len(), 3);
        assert!(timeline.events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        // The two threads involved have distinct indices.
        assert_ne!(
            mine[0].thread,
            mine.iter().find(|e| e.b == 2).unwrap().thread
        );
        let text = timeline.to_string();
        assert!(text.contains("batch_commit"));
    }

    #[test]
    fn overflow_drops_oldest_and_accounts() {
        let _serial = DRAIN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_trace_enabled(true);
        // A dedicated thread gets a fresh ring with a small capacity.
        set_ring_capacity(8);
        std::thread::spawn(|| {
            // Two kinds flood the ring; the drop accounting must say which
            // kinds the overflow discarded, not just how many events.
            for i in 0..6u64 {
                emit(TraceKind::Coalesce, 0xF00D, i);
            }
            for i in 0..20u64 {
                emit(TraceKind::QueuePush, 0xF00D, i);
            }
            let timeline = drain_timeline();
            let mine: Vec<&TraceEvent> = timeline.events.iter().filter(|e| e.a == 0xF00D).collect();
            // Exactly the capacity survived, and they are the newest.
            assert_eq!(mine.len(), 8);
            assert!(mine
                .iter()
                .all(|e| e.kind == TraceKind::QueuePush && e.b >= 12));
            assert!(timeline.dropped >= 18);
            assert_eq!(timeline.dropped_by_kind[TraceKind::Coalesce.index()], 6);
            assert!(timeline.dropped_by_kind[TraceKind::QueuePush.index()] >= 12);
            assert_eq!(timeline.dropped_by_kind[TraceKind::Reshard.index()], 0);
            let json = timeline.to_json();
            let drops = json.get("dropped_by_kind").unwrap();
            assert_eq!(drops.get("coalesce").and_then(Json::as_u64), Some(6));
            assert!(drops.get("reshard").is_none());
            assert!(timeline.to_string().contains("dropped coalesce: 6"));
        })
        .join()
        .unwrap();
        set_ring_capacity(DEFAULT_RING_CAPACITY);
    }
}
