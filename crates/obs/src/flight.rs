//! The flight recorder: a bounded ring of recently completed span trees,
//! frozen into a dump when an anomaly fires.
//!
//! Production incidents are diagnosed from the instants *around* the
//! anomaly, which are gone by the time anyone attaches a debugger. The
//! recorder keeps the recent past on hand at all times: every [`Span`] that
//! ends is routed here, reassembled into its request's tree when the tree's
//! root ends, and the last [`DEFAULT_TREE_CAPACITY`] whole trees ride in a
//! process-wide ring. An **anomaly trigger** ([`trigger`]) freezes that
//! ring — plus a [`Registry`] metrics snapshot — into an immutable
//! [`FlightDump`], exportable as [`psnap_json`] (round-trippable) or as
//! Chrome trace-event JSON (`chrome://tracing`, Perfetto).
//!
//! Triggers are **armed** explicitly ([`set_armed`]): the serve layer fires
//! them on latency-SLO breaches, `Busy` backpressure bursts, accepted
//! reshards, and stuck partition-invariant violations (the periodic
//! auditor); the shard layer fires on torn-validation scan fallbacks; tests
//! and the sim chaos layer call [`trigger`] directly. Disarmed, a trigger
//! is one relaxed load.
//!
//! This is the paper's discipline applied to the system's own telemetry:
//! capture a consistent cut of a live system without stopping it.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use psnap_json::Json;

use crate::span::SpanKind;
use crate::Registry;

/// Completed trees kept by default (see [`set_tree_capacity`]).
pub const DEFAULT_TREE_CAPACITY: usize = 256;

/// Unfinished trees (roots with ended children but a live root span) kept
/// before the oldest is evicted and its spans counted as dropped.
const PENDING_CAPACITY: usize = 1024;

/// Frozen dumps kept (newest kept, oldest evicted).
const DUMP_CAPACITY: usize = 8;

/// One ended span, as collected into trees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's id.
    pub id: u64,
    /// The parent span's id (0 for a root).
    pub parent: u64,
    /// The tree's root span id (== `id` for a root).
    pub root: u64,
    /// Pipeline stage.
    pub kind: SpanKind,
    /// Begin, nanoseconds on the process trace clock.
    pub begin_ns: u64,
    /// End, nanoseconds on the process trace clock.
    pub end_ns: u64,
    /// Dense index of the thread the span ended on.
    pub thread: usize,
    /// Kind-specific argument (see [`SpanKind`]).
    pub a: u64,
    /// Kind-specific argument (see [`SpanKind`]).
    pub b: u64,
}

impl SpanRecord {
    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Num(self.id as f64)),
            ("parent", Json::Num(self.parent as f64)),
            ("root", Json::Num(self.root as f64)),
            ("kind", Json::Str(self.kind.as_str().to_string())),
            ("begin_ns", Json::Num(self.begin_ns as f64)),
            ("end_ns", Json::Num(self.end_ns as f64)),
            ("thread", Json::Num(self.thread as f64)),
            ("a", Json::Num(self.a as f64)),
            ("b", Json::Num(self.b as f64)),
        ])
    }

    fn from_json(json: &Json) -> Option<SpanRecord> {
        Some(SpanRecord {
            id: json.get("id")?.as_u64()?,
            parent: json.get("parent")?.as_u64()?,
            root: json.get("root")?.as_u64()?,
            kind: SpanKind::parse(json.get("kind")?.as_str()?)?,
            begin_ns: json.get("begin_ns")?.as_u64()?,
            end_ns: json.get("end_ns")?.as_u64()?,
            thread: json.get("thread")?.as_usize()?,
            a: json.get("a")?.as_u64()?,
            b: json.get("b")?.as_u64()?,
        })
    }
}

/// One request's completed span tree: the root span first, then every
/// descendant sorted by begin time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanTree {
    /// Root first, descendants by begin time.
    pub spans: Vec<SpanRecord>,
}

impl SpanTree {
    /// The root span.
    pub fn root(&self) -> &SpanRecord {
        &self.spans[0]
    }

    /// Whole-tree wall time: the root span's duration.
    pub fn duration_ns(&self) -> u64 {
        self.root().duration_ns()
    }

    /// The spans of one stage, in begin order.
    pub fn spans_of(&self, kind: SpanKind) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// JSON exposition (inverse of [`SpanTree::from_json`]).
    pub fn to_json(&self) -> Json {
        Json::arr(self.spans.iter().map(SpanRecord::to_json))
    }

    /// Parses a tree serialized by [`SpanTree::to_json`].
    pub fn from_json(json: &Json) -> Option<SpanTree> {
        let spans: Vec<SpanRecord> = json
            .as_array()?
            .iter()
            .map(SpanRecord::from_json)
            .collect::<Option<_>>()?;
        if spans.is_empty() {
            return None;
        }
        Some(SpanTree { spans })
    }
}

struct Collector {
    /// Ended non-root spans awaiting their tree's root, keyed by root id.
    pending: BTreeMap<u64, Vec<SpanRecord>>,
    /// Completed trees, oldest first.
    completed: VecDeque<SpanTree>,
    tree_capacity: usize,
    /// Spans lost to pending-table eviction (root never ended, or ended
    /// before a straggling child).
    dropped_spans: u64,
    /// Span `Vec`s recycled from evicted trees, so steady-state collection
    /// (ring full, every root end evicts the oldest tree) does not pay an
    /// allocation per completed span tree. Capped at [`FREELIST_CAPACITY`].
    free: Vec<Vec<SpanRecord>>,
}

/// Recycled tree buffers kept (see [`Collector::free`]).
const FREELIST_CAPACITY: usize = 64;

static COLLECTOR: Mutex<Collector> = Mutex::new(Collector {
    pending: BTreeMap::new(),
    completed: VecDeque::new(),
    tree_capacity: DEFAULT_TREE_CAPACITY,
    dropped_spans: 0,
    free: Vec::new(),
});

fn collector() -> std::sync::MutexGuard<'static, Collector> {
    COLLECTOR.lock().unwrap_or_else(|e| e.into_inner())
}

/// Routes one ended span into the collector (called by [`Span`]'s drop;
/// not meant for direct use).
///
/// [`Span`]: crate::span::Span
pub fn record(record: SpanRecord) {
    let mut c = collector();
    if record.id == record.root {
        // The root ended: its tree is complete (children end inside their
        // parent's interval by construction — stages that outlive the
        // request's answer are ended before the answer is fanned out).
        let mut spans = c.free.pop().unwrap_or_default();
        spans.push(record);
        let root = spans[0].id;
        if let Some(mut children) = c.pending.remove(&root) {
            children.sort_by_key(|s| s.begin_ns);
            spans.append(&mut children);
        }
        c.completed.push_back(SpanTree { spans });
        while c.completed.len() > c.tree_capacity {
            if let Some(tree) = c.completed.pop_front() {
                if c.free.len() < FREELIST_CAPACITY {
                    let mut spans = tree.spans;
                    spans.clear();
                    c.free.push(spans);
                }
            }
        }
    } else {
        c.pending.entry(record.root).or_default().push(record);
        while c.pending.len() > PENDING_CAPACITY {
            // Oldest root id ≈ oldest tree: ids are allocated in blocks,
            // close enough for an eviction order.
            let (&oldest, _) = c.pending.iter().next().expect("pending non-empty");
            let evicted = c.pending.remove(&oldest).unwrap_or_default();
            c.dropped_spans += evicted.len() as u64;
        }
    }
}

/// Clones the recently completed trees, oldest first.
pub fn recent_trees() -> Vec<SpanTree> {
    collector().completed.iter().cloned().collect()
}

/// Spans lost so far to pending-table eviction.
pub fn dropped_spans() -> u64 {
    collector().dropped_spans
}

/// Sets how many completed trees the recorder keeps (existing overflow is
/// evicted immediately). Clamped to ≥ 1.
pub fn set_tree_capacity(capacity: usize) {
    let mut c = collector();
    c.tree_capacity = capacity.max(1);
    while c.completed.len() > c.tree_capacity {
        c.completed.pop_front();
    }
}

/// Clears every collected tree, pending span, stored dump, and drop count.
/// For tests and experiment phases sharing one process.
pub fn reset() {
    let mut c = collector();
    c.pending.clear();
    c.completed.clear();
    c.dropped_spans = 0;
    drop(c);
    dumps_store().clear();
}

/// Why a dump was frozen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnomalyKind {
    /// A cross-shard scan failed optimistic validation and fell back (the
    /// torn-view near-miss the paper's epoch validation exists to catch).
    TornScan,
    /// A burst of consecutive `Busy` backpressure rejections.
    BusyBurst,
    /// An accepted online reshard migration.
    Reshard,
    /// A request's latency exceeded the configured SLO.
    LatencySlo,
    /// A registry partition invariant stayed violated across auditor ticks.
    InvariantViolation,
}

impl AnomalyKind {
    /// Every kind.
    pub const ALL: [AnomalyKind; 5] = [
        AnomalyKind::TornScan,
        AnomalyKind::BusyBurst,
        AnomalyKind::Reshard,
        AnomalyKind::LatencySlo,
        AnomalyKind::InvariantViolation,
    ];

    /// Stable lowercase name used in exposition.
    pub fn as_str(&self) -> &'static str {
        match self {
            AnomalyKind::TornScan => "torn_scan",
            AnomalyKind::BusyBurst => "busy_burst",
            AnomalyKind::Reshard => "reshard",
            AnomalyKind::LatencySlo => "latency_slo",
            AnomalyKind::InvariantViolation => "invariant_violation",
        }
    }

    /// Inverse of [`as_str`](AnomalyKind::as_str).
    pub fn parse(s: &str) -> Option<AnomalyKind> {
        AnomalyKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A frozen cut of the recorder at the moment an anomaly fired.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightDump {
    /// What fired.
    pub reason: AnomalyKind,
    /// Free-form trigger detail (the violated invariant, the slow
    /// request's latency, ...).
    pub detail: String,
    /// When it fired, nanoseconds on the process trace clock.
    pub at_ns: u64,
    /// The completed trees at freeze time, oldest first.
    pub trees: Vec<SpanTree>,
    /// A registry metrics snapshot ([`Registry::to_json`]), or `Null` when
    /// no registry was supplied.
    pub metrics: Json,
    /// Spans the collector had dropped before the freeze.
    pub dropped_spans: u64,
}

impl FlightDump {
    /// JSON exposition (inverse of [`FlightDump::from_json`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("reason", Json::Str(self.reason.as_str().to_string())),
            ("detail", Json::Str(self.detail.clone())),
            ("at_ns", Json::Num(self.at_ns as f64)),
            ("trees", Json::arr(self.trees.iter().map(SpanTree::to_json))),
            ("metrics", self.metrics.clone()),
            ("dropped_spans", Json::Num(self.dropped_spans as f64)),
        ])
    }

    /// Parses a dump serialized by [`FlightDump::to_json`].
    pub fn from_json(json: &Json) -> Option<FlightDump> {
        Some(FlightDump {
            reason: AnomalyKind::parse(json.get("reason")?.as_str()?)?,
            detail: json.get("detail")?.as_str()?.to_string(),
            at_ns: json.get("at_ns")?.as_u64()?,
            trees: json
                .get("trees")?
                .as_array()?
                .iter()
                .map(SpanTree::from_json)
                .collect::<Option<_>>()?,
            metrics: json.get("metrics")?.clone(),
            dropped_spans: json.get("dropped_spans")?.as_u64()?,
        })
    }

    /// The dump's spans in Chrome trace-event JSON (the `chrome://tracing`
    /// / Perfetto format): one complete (`"ph": "X"`) event per span,
    /// timestamps and durations in microseconds, thread index as `tid`,
    /// span identity and arguments under `args`.
    pub fn to_chrome_trace(&self) -> Json {
        let events = self.trees.iter().flat_map(|tree| {
            tree.spans.iter().map(|s| {
                Json::obj([
                    ("name", Json::Str(s.kind.as_str().to_string())),
                    ("cat", Json::Str("psnap".to_string())),
                    ("ph", Json::Str("X".to_string())),
                    ("ts", Json::Num(s.begin_ns as f64 / 1000.0)),
                    ("dur", Json::Num(s.duration_ns() as f64 / 1000.0)),
                    ("pid", Json::Num(1.0)),
                    ("tid", Json::Num(s.thread as f64)),
                    (
                        "args",
                        Json::obj([
                            ("span", Json::Num(s.id as f64)),
                            ("parent", Json::Num(s.parent as f64)),
                            ("root", Json::Num(s.root as f64)),
                            ("a", Json::Num(s.a as f64)),
                            ("b", Json::Num(s.b as f64)),
                        ]),
                    ),
                ])
            })
        });
        Json::obj([
            ("traceEvents", Json::arr(events)),
            ("displayTimeUnit", Json::Str("ms".to_string())),
            (
                "otherData",
                Json::obj([
                    ("reason", Json::Str(self.reason.as_str().to_string())),
                    ("detail", Json::Str(self.detail.clone())),
                ]),
            ),
        ])
    }
}

/// Anomaly triggers armed? Off by default: arming is a deployment decision
/// (dumps clone the whole tree ring), not a side effect of span collection.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Cumulative dumps frozen since process start (monotone; survives
/// [`reset`] eviction of the stored dumps).
static TOTAL_DUMPS: AtomicU64 = AtomicU64::new(0);

static DUMPS: Mutex<Vec<FlightDump>> = Mutex::new(Vec::new());

fn dumps_store() -> std::sync::MutexGuard<'static, Vec<FlightDump>> {
    DUMPS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms or disarms anomaly triggers process-wide.
pub fn set_armed(armed: bool) {
    ARMED.store(armed, Ordering::SeqCst);
}

/// Whether anomaly triggers are currently armed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Fires an anomaly: freezes the completed-tree ring and a metrics
/// snapshot of `registry` (if any) into a [`FlightDump`], stores it (the
/// last [`DUMP_CAPACITY`] are kept, readable via [`dumps`]), and returns
/// it. Returns `None` when triggers are [disarmed](set_armed).
pub fn trigger(
    reason: AnomalyKind,
    detail: String,
    registry: Option<&Registry>,
) -> Option<FlightDump> {
    if !armed() {
        return None;
    }
    let (trees, dropped_spans) = {
        let c = collector();
        (c.completed.iter().cloned().collect(), c.dropped_spans)
    };
    let dump = FlightDump {
        reason,
        detail,
        at_ns: crate::trace::now_ns(),
        trees,
        metrics: registry.map(Registry::to_json).unwrap_or(Json::Null),
        dropped_spans,
    };
    TOTAL_DUMPS.fetch_add(1, Ordering::Relaxed);
    let mut dumps = dumps_store();
    dumps.push(dump.clone());
    let excess = dumps.len().saturating_sub(DUMP_CAPACITY);
    if excess > 0 {
        dumps.drain(..excess);
    }
    Some(dump)
}

/// Clones the stored dumps, oldest first.
pub fn dumps() -> Vec<FlightDump> {
    dumps_store().clone()
}

/// Removes and returns the stored dumps, oldest first.
pub fn take_dumps() -> Vec<FlightDump> {
    std::mem::take(&mut *dumps_store())
}

/// Cumulative dumps frozen since process start.
pub fn dump_count() -> u64 {
    TOTAL_DUMPS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector and dump store are process-global; tests that reset or
    // count serialize against each other.
    static FLIGHT_LOCK: Mutex<()> = Mutex::new(());

    fn rec(id: u64, parent: u64, root: u64, kind: SpanKind, begin: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            root,
            kind,
            begin_ns: begin,
            end_ns: end,
            thread: 0,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn trees_assemble_root_first_children_by_begin_time() {
        let _serial = FLIGHT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        record(rec(1002, 1001, 1001, SpanKind::Merge, 30, 40));
        record(rec(1003, 1001, 1001, SpanKind::QueueWait, 10, 20));
        record(rec(1001, 0, 1001, SpanKind::ScanRequest, 5, 50));
        let trees = recent_trees();
        assert_eq!(trees.len(), 1);
        let kinds: Vec<SpanKind> = trees[0].spans.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SpanKind::ScanRequest, SpanKind::QueueWait, SpanKind::Merge]
        );
        assert_eq!(trees[0].duration_ns(), 45);
        reset();
    }

    #[test]
    fn tree_ring_is_bounded() {
        let _serial = FLIGHT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_tree_capacity(4);
        for i in 0..10u64 {
            let id = 2000 + i;
            record(rec(id, 0, id, SpanKind::Ingest, i, i + 1));
        }
        let trees = recent_trees();
        assert_eq!(trees.len(), 4);
        assert_eq!(trees[0].root().id, 2006);
        set_tree_capacity(DEFAULT_TREE_CAPACITY);
        reset();
    }

    #[test]
    fn dump_round_trips_through_json_and_exports_chrome_trace() {
        let _serial = FLIGHT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_armed(true);
        record(rec(3002, 3001, 3001, SpanKind::BackingScan, 12, 34));
        record(rec(3001, 0, 3001, SpanKind::ScanRequest, 10, 40));
        let registry = Registry::new();
        registry.counter("t.hits").add(7);
        let dump = trigger(
            AnomalyKind::LatencySlo,
            "scan took 30ns against a 1ns SLO".to_string(),
            Some(&registry),
        )
        .expect("armed trigger returns a dump");
        set_armed(false);

        let json = dump.to_json();
        let text = json.to_string_pretty();
        let reparsed = Json::parse(&text).expect("dump JSON parses");
        let restored = FlightDump::from_json(&reparsed).expect("dump deserializes");
        assert_eq!(restored, dump);

        let chrome = dump.to_chrome_trace();
        let events = chrome.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) == Some("X")));
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("scan_request")));
        reset();
    }

    #[test]
    fn disarmed_triggers_are_silent() {
        let _serial = FLIGHT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_armed(false);
        assert!(trigger(AnomalyKind::TornScan, String::new(), None).is_none());
    }
}
