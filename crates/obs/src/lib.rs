//! Live observability for the partial snapshot stack.
//!
//! The paper's whole contribution is a *cost model* — yet before this crate
//! the repo could only see its costs offline, through harness runs. This
//! crate makes the running system observable, with the same discipline the
//! step counters in `psnap-shmem::steps` established: **recording must never
//! perturb the algorithms being measured**. Concretely:
//!
//! * [`Counter`] and [`Gauge`] are striped across cache-line-padded
//!   per-thread cells — a record is one relaxed atomic add on a cell no
//!   other running thread normally touches, aggregated only on read;
//! * [`Histogram`] buckets values by log2 (one relaxed add per record) and
//!   tracks the exact maximum on the side, so `p50`/`p99`/`max` come out of
//!   a read without any recording-side sorting;
//! * [`trace`] keeps a bounded ring of timestamped events *per thread*
//!   (scan announce/retry/fallback, help-finalize, batch commit, epoch
//!   advance, queue push/drain, coalesce decisions), drained on demand into
//!   one merged timeline — overflow drops the oldest events and is
//!   accounted, never silent. Event collection is **opt-in**
//!   ([`set_trace_enabled`]): each event costs a clock read and a ring
//!   push, a price worth paying for a debugging window but not on every
//!   production operation;
//! * [`Registry`] names metrics into process-wide families, carries
//!   declarative **partition invariants** over its counters (e.g. every
//!   accepted scan is served by exactly one path), and exposes everything
//!   as text or [`psnap_json`] for scraping;
//! * [`span`] adds *causality* on top of the flat event stream: a
//!   [`Span`] is a (id, parent, kind) triple whose begin/end ride the
//!   existing trace rings, and a [`SpanContext`] crosses threads with a
//!   request so one client scan yields a tree spanning submitter, scan
//!   server, and executor workers. Span collection is opt-in
//!   ([`set_span_enabled`]) on top of the trace switch;
//! * [`flight`] is the flight recorder: a bounded process-wide ring of
//!   recently completed span trees plus a registry snapshot, frozen into a
//!   [`FlightDump`] (exportable as Chrome trace-event JSON) when an
//!   [anomaly trigger](flight::trigger) fires.
//!
//! The whole layer sits behind one global switch ([`set_enabled`]): when
//! disabled, every record path is a single relaxed load and an early
//! return, which is what experiment E13 measures the enabled layer against
//! (and E16 for the span layer).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod flight;
pub mod metric;
pub mod registry;
pub mod span;
pub mod trace;

pub use flight::{AnomalyKind, FlightDump, SpanRecord, SpanTree};
pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot, RateTracker};
pub use registry::{Metric, MetricSnapshot, Registry};
pub use span::{
    set_span_enabled, set_span_sample_every, span_enabled, span_sample_every, Span, SpanContext,
    SpanKind,
};
pub use trace::{set_trace_enabled, trace_enabled, Timeline, TraceEvent, TraceKind};

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Global recording switch, on by default. Reads are always allowed; when
/// off, every record path returns after one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns recording on or off process-wide. Disabling mid-run freezes every
/// metric where it stands (partition invariants still hold — all the legs
/// of a partition stop together). Used by experiment E13 to price the
/// instrumentation itself.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::SeqCst);
}

/// Whether recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static NEXT_THREAD_INDEX: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_INDEX: usize = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
}

/// A small dense id for the calling thread, assigned on first use. Indexes
/// the counter stripes and labels trace events; unrelated to the paper's
/// process-id space. During thread exit (the id's slot already destroyed)
/// it degrades to 0 — records still land, on a shared stripe.
#[inline]
pub fn thread_index() -> usize {
    THREAD_INDEX.try_with(|i| *i).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_indices_are_distinct() {
        let mine = thread_index();
        let other = std::thread::spawn(thread_index).join().unwrap();
        assert_ne!(mine, other);
        // Stable within a thread.
        assert_eq!(mine, thread_index());
    }

    #[test]
    fn disabling_freezes_counters() {
        let c = Counter::new();
        c.add(3);
        set_enabled(false);
        c.add(5);
        set_enabled(true);
        c.add(4);
        assert_eq!(c.get(), 7);
    }
}
