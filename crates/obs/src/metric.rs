//! The metric primitives: striped counters and gauges, log2 histograms.
//!
//! All three follow the `steps.rs` discipline: recording is a handful of
//! nanoseconds on a per-thread cache line and never takes a lock, loops, or
//! synchronizes with readers; aggregation work happens entirely on the read
//! side. None of them count as base-object steps — observing the system
//! costs zero in the paper's cost model by construction.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Stripes per counter/gauge. Threads hash onto stripes by their dense
/// [`thread_index`](crate::thread_index); with more live threads than
/// stripes two threads may share a line, which costs throughput on that
/// stripe, never correctness.
const STRIPES: usize = 32;

/// One cache line per stripe so concurrent recorders never false-share.
#[repr(align(64))]
#[derive(Default)]
struct StripeU64(AtomicU64);

#[repr(align(64))]
#[derive(Default)]
struct StripeI64(AtomicI64);

#[inline]
fn stripe() -> usize {
    crate::thread_index() % STRIPES
}

/// A monotone event counter, striped per thread and summed on read.
#[derive(Default)]
pub struct Counter {
    stripes: [StripeU64; STRIPES],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` (one relaxed add on the calling thread's stripe).
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.stripes[stripe()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across all stripes. Concurrent with recording the
    /// total is a valid value the counter held at some recent instant.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A signed level gauge (queue depths, live-version counts): striped
/// increments and decrements, summed on read.
#[derive(Default)]
pub struct Gauge {
    stripes: [StripeI64; STRIPES],
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Adds `n` to the level.
    #[inline]
    pub fn add(&self, n: i64) {
        if !crate::enabled() {
            return;
        }
        self.stripes[stripe()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the level.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current level. Because increments and matching decrements may
    /// land on different threads' stripes, individual stripes go negative;
    /// only the sum is meaningful.
    pub fn get(&self) -> i64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Histogram buckets: bucket 0 holds the value 0, bucket `i >= 1` holds
/// `[2^(i-1), 2^i - 1]` — 65 buckets cover all of `u64`.
const BUCKETS: usize = 65;

#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket.
#[inline]
fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A log2-bucketed histogram of `u64` samples (latencies in nanoseconds,
/// step counts, chain lengths).
///
/// Recording is two relaxed adds plus a relaxed `fetch_max`. Quantiles are
/// resolved from the buckets on read: `percentile(q)` returns the upper
/// bound of the bucket holding the `q`-th sample, clamped by the exact
/// maximum — so `max` is exact, and `p50`/`p99` are exact up to the 2×
/// bucket resolution (always an upper bound, never an underestimate).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A point-in-time read of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact maximum sample (0 when empty).
    pub max: u64,
    /// Median (bucket upper bound, clamped by `max`).
    pub p50: u64,
    /// 99th percentile (bucket upper bound, clamped by `max`).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding that sample, clamped by the exact maximum. 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// A consistent-enough point-in-time read (individual fields may lag
    /// each other by in-flight records; each is monotone).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.percentile(0.50),
            p99: self.percentile(0.99),
        }
    }
}

/// Differentiates a vector of cumulative-monotone counter readings into
/// **windowed rates** (EWMA-smoothed deltas per observation tick).
///
/// [`Counter`]s only ever go up, which makes `{prefix}.heat.k` useless as a
/// load signal on its own: a shard that was hot an hour ago and idle since
/// still dominates the totals. Feeding successive [`Counter::get`] readings
/// through [`observe`](RateTracker::observe) yields per-entry rates over
/// the recent past instead — the signal a reshard policy (or any
/// controller) actually wants. Smoothing is a standard exponentially
/// weighted moving average, `rate ← α·delta + (1−α)·rate`, the same family
/// as the serve layer's coalescing-window controller.
///
/// The tracker is plain mutable state for a single observer (the stats
/// reporter / reshard driver tick) — it takes no locks and is not meant to
/// be shared. The observed vector may **grow** between ticks (a split
/// appends a shard): new entries start with zero history. It never shrinks;
/// merged-away entries simply decay toward zero.
#[derive(Debug, Clone)]
pub struct RateTracker {
    alpha: f64,
    last: Vec<u64>,
    rates: Vec<f64>,
    primed: bool,
}

impl RateTracker {
    /// A tracker smoothing with factor `alpha` in `(0, 1]` — `1.0` means
    /// "last window only", smaller values remember more history.
    pub fn new(alpha: f64) -> RateTracker {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA factor must be in (0, 1], got {alpha}"
        );
        RateTracker {
            alpha,
            last: Vec::new(),
            rates: Vec::new(),
            primed: false,
        }
    }

    /// Folds one reading of the cumulative totals into the rates and
    /// returns the updated rate slice (aligned with `totals` by index).
    ///
    /// The first observation only primes the baseline (rates stay zero):
    /// counters existing before the tracker must not register their whole
    /// history as one infinite-rate spike. Entries appended after priming
    /// are treated the same way — their first delta is measured from zero,
    /// which is correct for freshly created (zero-valued) counters like a
    /// split's new shard.
    pub fn observe(&mut self, totals: &[u64]) -> &[f64] {
        if totals.len() > self.last.len() {
            self.last.resize(totals.len(), 0);
            self.rates.resize(totals.len(), 0.0);
        }
        if !self.primed {
            self.last[..totals.len()].copy_from_slice(totals);
            self.primed = true;
            return &self.rates;
        }
        for (i, &total) in totals.iter().enumerate() {
            // saturating: a counter handle swapped for a fresh one (rare,
            // e.g. diagnostics resets) reads as a quiet window, not a
            // u64-wrapping spike.
            let delta = total.saturating_sub(self.last[i]) as f64;
            self.last[i] = total;
            self.rates[i] = self.alpha * delta + (1.0 - self.alpha) * self.rates[i];
        }
        &self.rates
    }

    /// The current rate estimates (per observation tick).
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_levels() {
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        g.dec();
        g.inc();
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn buckets_partition_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 5, 1023, 1024, 1025, u64::MAX] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper(b));
            if b > 0 {
                assert!(v > bucket_upper(b - 1));
            }
        }
    }

    #[test]
    fn histogram_quantiles_and_max() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.max, 100);
        // p50 falls in bucket [32, 63]; the upper bound is 63.
        assert_eq!(snap.p50, 63);
        // p99 falls in the [64, 127] bucket, clamped by the exact max.
        assert_eq!(snap.p99, 100);
        assert!((snap.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        let snap = h.snapshot();
        assert_eq!(snap, HistogramSnapshot::default());
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn single_sample_quantiles_are_exact_bounds() {
        let h = Histogram::new();
        h.record(1000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.max, 1000);
        // Bucket [512, 1023] upper bound 1023, clamped by max 1000.
        assert_eq!(snap.p50, 1000);
        assert_eq!(snap.p99, 1000);
    }

    #[test]
    fn rate_tracker_differentiates_and_smooths() {
        let mut t = RateTracker::new(0.5);
        // Priming: pre-existing totals are a baseline, not a spike.
        assert_eq!(t.observe(&[1000, 0]), &[0.0, 0.0]);
        assert_eq!(t.observe(&[1100, 10]), &[50.0, 5.0]);
        // Second identical delta converges toward it.
        assert_eq!(t.observe(&[1200, 20]), &[75.0, 7.5]);
        // Quiet window decays.
        assert_eq!(t.observe(&[1200, 20]), &[37.5, 3.75]);
    }

    #[test]
    fn rate_tracker_accepts_appended_entries() {
        let mut t = RateTracker::new(1.0);
        t.observe(&[10]);
        // A split appended a shard whose counter starts cold.
        assert_eq!(t.observe(&[30, 5]), &[20.0, 5.0]);
        assert_eq!(t.observe(&[30, 12]), &[0.0, 7.0]);
    }

    #[test]
    fn rate_tracker_treats_counter_regression_as_quiet() {
        let mut t = RateTracker::new(1.0);
        t.observe(&[100]);
        assert_eq!(t.observe(&[40]), &[0.0], "regression must not wrap");
        assert_eq!(t.observe(&[50]), &[10.0]);
    }

    #[test]
    #[should_panic(expected = "EWMA factor")]
    fn rate_tracker_rejects_zero_alpha() {
        let _ = RateTracker::new(0.0);
    }
}
