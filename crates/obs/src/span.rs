//! Causal spans over the trace ring: who caused what, across threads.
//!
//! The flat [`trace`](crate::trace) events say *that* a retry or a commit
//! happened; they cannot say which client request it happened *for*. A
//! [`Span`] is a timed interval with an identity (`id`), a cause (`parent`),
//! and a tree (`root`): the serve layer opens a root span per client
//! request, hands its [`SpanContext`] across queues and executor workers,
//! and opens child spans around each pipeline stage. Begin/end are ordinary
//! [`TraceEvent`](crate::TraceEvent)s (kinds
//! [`SpanBegin`](crate::TraceKind::SpanBegin) /
//! [`SpanEnd`](crate::TraceKind::SpanEnd)), so spans ride the existing
//! per-thread rings; ended spans are additionally collected into whole
//! per-request trees by the [`flight`](crate::flight) recorder.
//!
//! Everything here follows the obs discipline of not perturbing what it
//! measures:
//!
//! * ids come from a **block-striped atomic** — one global `fetch_add`
//!   hands each thread a block of [`ID_BLOCK`] ids, so allocating a span id
//!   is a thread-local bump in steady state;
//! * the whole layer is **opt-in** ([`set_span_enabled`]); disabled, every
//!   constructor returns an inert span (id 0) and every method is an early
//!   return;
//! * cross-thread causality is **explicit**: a [`SpanContext`] is `Copy`
//!   and travels inside the work item (a queue entry, a coalesced batch, a
//!   union job), never through hidden global state. The only ambient state
//!   is the per-thread *current* span ([`current`] / [`enter`]), which
//!   exists so deep layers (shard scan retries, batch commits, epoch
//!   advances) stamp their flat events with the span that caused them
//!   without threading arguments through every signature.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::trace::{self, TraceKind};

/// Ids handed to a thread per global `fetch_add` (see [`Span`] docs).
pub const ID_BLOCK: u64 = 256;

/// The stage vocabulary of the serve pipeline, one variant per interval
/// worth attributing latency to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// Root of one client scan: submit to answer. End args: `a` = serving
    /// tier (0 backing / 1 cache / 2 empty / 3 mv), `b` = latency ns.
    ScanRequest,
    /// Root of one client submission: submit to applied.
    Ingest,
    /// Time an accepted request sat in its queue before a drain.
    QueueWait,
    /// A coalescing window the request waited through (`a` = window ns).
    Window,
    /// One union backing scan (`a` = requests in the job, `b` = deduped
    /// components scanned).
    BackingScan,
    /// A freshness-relaxed request served from the version chains
    /// (`scan_stale`; `a` = timestamp of the cut).
    StaleRead,
    /// Per-request fan-out of a union's results (assemble + complete).
    Merge,
    /// One `update_many` chunk applied by the ingestion drainer
    /// (`a` = writes applied, `b` = writes coalesced away).
    Apply,
    /// One accepted reshard operation (`a` = new generation).
    Reshard,
    /// One flight-auditor tick (`a` = invariant violations seen).
    Audit,
    /// Root of one wire-protocol request, opened at frame decode: the
    /// in-process request tree (queue wait, window, backing scan, ...)
    /// hangs beneath it (`a` = request opcode, `b` = payload bytes).
    WireRequest,
}

impl SpanKind {
    /// Every kind, in `code()` order.
    pub const ALL: [SpanKind; 11] = [
        SpanKind::ScanRequest,
        SpanKind::Ingest,
        SpanKind::QueueWait,
        SpanKind::Window,
        SpanKind::BackingScan,
        SpanKind::StaleRead,
        SpanKind::Merge,
        SpanKind::Apply,
        SpanKind::Reshard,
        SpanKind::Audit,
        SpanKind::WireRequest,
    ];

    /// Stable lowercase name used in exposition.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::ScanRequest => "scan_request",
            SpanKind::Ingest => "ingest",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Window => "window",
            SpanKind::BackingScan => "backing_scan",
            SpanKind::StaleRead => "stale_read",
            SpanKind::Merge => "merge",
            SpanKind::Apply => "apply",
            SpanKind::Reshard => "reshard",
            SpanKind::Audit => "audit",
            SpanKind::WireRequest => "wire_request",
        }
    }

    /// Numeric code carried in the `b` argument of span begin/end events
    /// (1-based; 0 means "no kind").
    pub fn code(&self) -> u64 {
        *self as u64 + 1
    }

    /// Inverse of [`code`](SpanKind::code).
    pub fn from_code(code: u64) -> Option<SpanKind> {
        SpanKind::ALL.get(code.checked_sub(1)? as usize).copied()
    }

    /// Inverse of [`as_str`](SpanKind::as_str).
    pub fn parse(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The identity a span hands to work that crosses a thread boundary: its
/// own id (to parent children under) and its tree's root id (so the flight
/// recorder reassembles the tree without walking parents). `id == 0` means
/// "no span" (the layer was disabled when the work was submitted).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanContext {
    /// This span's id (0 = none).
    pub id: u64,
    /// The root span's id of this span's tree (0 = none).
    pub root: u64,
}

impl SpanContext {
    /// The "no span" context.
    pub const NONE: SpanContext = SpanContext { id: 0, root: 0 };

    /// Whether this context names a real span.
    pub fn is_some(&self) -> bool {
        self.id != 0
    }
}

/// Span collection switch, **off by default** — same rationale as the trace
/// switch: every span costs two clock reads, two ring pushes, and one
/// flight-collector push, a debugging/attribution tool rather than an
/// always-on tax. E16 prices exactly this switch.
static SPAN_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns span collection on or off process-wide. Spans begun while enabled
/// still end (and are collected) if the switch flips mid-flight.
pub fn set_span_enabled(enabled: bool) {
    SPAN_ENABLED.store(enabled, Ordering::SeqCst);
}

/// Whether span collection is currently enabled.
#[inline]
pub fn span_enabled() -> bool {
    SPAN_ENABLED.load(Ordering::Relaxed)
}

/// Root sampling divisor: record one root per `n` root creations per
/// thread. Children follow their parent's decision (a sampled-out root is
/// inert, so its whole tree is), which keeps every *recorded* tree
/// complete. The default of 1 records every root — right for request-scale
/// sites (the serve pipeline); high-frequency sites that would otherwise
/// span sub-microsecond operations (e.g. every raw store batch) use a
/// larger divisor to bound the collection tax, trading attribution
/// coverage for overhead. E16 prices both settings.
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(1);

/// Sets the root sampling divisor (0 is treated as 1: record every root).
pub fn set_span_sample_every(n: u64) {
    SAMPLE_EVERY.store(n.max(1), Ordering::SeqCst);
}

/// The current root sampling divisor.
#[inline]
pub fn span_sample_every() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

thread_local! {
    /// Per-thread root-creation counter driving the sampling decision.
    static ROOT_TICK: Cell<u64> = const { Cell::new(0) };
}

/// Global id block allocator; a thread takes `ID_BLOCK` ids per touch.
static NEXT_BLOCK: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(next, end)` of the calling thread's current id block.
    static MY_IDS: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

fn next_id() -> u64 {
    MY_IDS
        .try_with(|cell| {
            let (next, end) = cell.get();
            if next < end {
                cell.set((next + 1, end));
                next
            } else {
                let start = NEXT_BLOCK.fetch_add(ID_BLOCK, Ordering::Relaxed);
                cell.set((start + 1, start + ID_BLOCK));
                start
            }
        })
        // Thread exit: the block cell is gone; pay one shared fetch_add.
        .unwrap_or_else(|_| NEXT_BLOCK.fetch_add(ID_BLOCK, Ordering::Relaxed))
}

thread_local! {
    /// The span "currently executing" on this thread (see [`enter`]).
    static CURRENT: Cell<SpanContext> = const { Cell::new(SpanContext::NONE) };
}

/// The id of the span currently entered on this thread (0 = none). Every
/// [`trace::emit`] stamps this onto its event, which is how shard-level
/// events (scan retries, batch commits, reshards) gain a span argument
/// without any signature change.
#[inline]
pub fn current() -> u64 {
    CURRENT.try_with(Cell::get).unwrap_or(SpanContext::NONE).id
}

/// The full context of the span currently entered on this thread
/// ([`SpanContext::NONE`] when none). This is what lets a transport layer
/// root a request tree at frame decode: it enters the decode-time span, and
/// anything beneath that would otherwise begin a fresh root (see
/// [`Span::root_or_child`]) parents into the entered tree instead.
#[inline]
pub fn current_context() -> SpanContext {
    CURRENT.try_with(Cell::get).unwrap_or(SpanContext::NONE)
}

/// Marks `ctx` as the thread's current span until the guard drops (the
/// previous current span is restored). Used around backing-object calls so
/// events emitted underneath attribute to the request being served.
pub fn enter(ctx: SpanContext) -> EnterGuard {
    let prev = current_context();
    let _ = CURRENT.try_with(|c| c.set(ctx));
    EnterGuard { prev }
}

/// Restores the previously current span on drop (see [`enter`]).
pub struct EnterGuard {
    prev: SpanContext,
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        let _ = CURRENT.try_with(|c| c.set(self.prev));
    }
}

/// A timed causal interval. Begin is the constructor; end is `Drop` (or
/// [`end`](Span::end) to end early and keep control of the timing). Both
/// edges emit trace events; the end additionally hands a record to the
/// [`flight`](crate::flight) collector, which reassembles whole trees.
///
/// A span constructed while the layer is disabled is inert: id 0, no
/// events, no collection — so holding spans in request structs costs
/// nothing in production unless the switch is on.
#[derive(Debug)]
pub struct Span {
    ctx: SpanContext,
    parent: u64,
    kind: SpanKind,
    begin_ns: u64,
    a: u64,
    b: u64,
}

impl Span {
    /// Begins a root span: its own id is its tree's root. Subject to the
    /// sampling divisor (see [`set_span_sample_every`]) — a sampled-out
    /// root is inert, and so is its whole tree.
    pub fn root(kind: SpanKind) -> Span {
        if !span_enabled() || !crate::enabled() {
            return Span::inert(kind);
        }
        let every = span_sample_every();
        if every > 1 {
            let tick = ROOT_TICK
                .try_with(|c| {
                    let t = c.get().wrapping_add(1);
                    c.set(t);
                    t
                })
                .unwrap_or(0);
            if !tick.is_multiple_of(every) {
                return Span::inert(kind);
            }
        }
        let id = next_id();
        Span::begin(SpanContext { id, root: id }, 0, kind)
    }

    /// Begins a root span — unless a span is currently
    /// [entered](crate::span::enter) on this thread, in which case the new
    /// span parents under it instead of starting a tree of its own. This is
    /// the seam a transport uses to root request trees at frame decode:
    /// in-process callers have no ambient span and get ordinary sampled
    /// roots, while a wire server enters its decode-time span and the whole
    /// in-process tree (ingest / scan request and everything beneath)
    /// assembles under the wire root.
    pub fn root_or_child(kind: SpanKind) -> Span {
        let ambient = current_context();
        if ambient.is_some() {
            Span::child(ambient, kind)
        } else {
            Span::root(kind)
        }
    }

    /// Begins a child span under `parent` (inert if `parent` is, so a
    /// disabled tree never grows live branches).
    pub fn child(parent: SpanContext, kind: SpanKind) -> Span {
        if !parent.is_some() || !span_enabled() || !crate::enabled() {
            return Span::inert(kind);
        }
        let id = next_id();
        Span::begin(
            SpanContext {
                id,
                root: parent.root,
            },
            parent.id,
            kind,
        )
    }

    fn inert(kind: SpanKind) -> Span {
        Span {
            ctx: SpanContext::NONE,
            parent: 0,
            kind,
            begin_ns: 0,
            a: 0,
            b: 0,
        }
    }

    fn begin(ctx: SpanContext, parent: u64, kind: SpanKind) -> Span {
        let begin_ns = trace::now_ns();
        trace::emit_spanned_at(TraceKind::SpanBegin, ctx.id, parent, kind.code(), begin_ns);
        Span {
            ctx,
            parent,
            kind,
            begin_ns,
            a: 0,
            b: 0,
        }
    }

    /// This span's context, for parenting children (possibly on another
    /// thread — the context is `Copy` and travels inside work items).
    pub fn context(&self) -> SpanContext {
        self.ctx
    }

    /// Whether this span is live (the layer was enabled at begin).
    pub fn is_recording(&self) -> bool {
        self.ctx.is_some()
    }

    /// Sets the kind-specific arguments carried on the end event and the
    /// collected record.
    pub fn set_args(&mut self, a: u64, b: u64) {
        self.a = a;
        self.b = b;
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.ctx.is_some() {
            return;
        }
        let end_ns = trace::now_ns();
        trace::emit_spanned_at(
            TraceKind::SpanEnd,
            self.ctx.id,
            self.parent,
            self.kind.code(),
            end_ns,
        );
        crate::flight::record(crate::flight::SpanRecord {
            id: self.ctx.id,
            parent: self.parent,
            root: self.ctx.root,
            kind: self.kind,
            begin_ns: self.begin_ns,
            end_ns,
            thread: crate::thread_index(),
            a: self.a,
            b: self.b,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        set_span_enabled(false);
        let root = Span::root(SpanKind::ScanRequest);
        assert!(!root.is_recording());
        assert_eq!(root.context(), SpanContext::NONE);
        let child = Span::child(root.context(), SpanKind::Merge);
        assert!(!child.is_recording());
    }

    #[test]
    fn ids_are_unique_across_threads() {
        set_span_enabled(true);
        let mine: Vec<u64> = (0..ID_BLOCK * 2).map(|_| next_id()).collect();
        let theirs: Vec<u64> =
            std::thread::spawn(|| (0..ID_BLOCK * 2).map(|_| next_id()).collect())
                .join()
                .unwrap();
        let mut all: Vec<u64> = mine.iter().chain(theirs.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), (ID_BLOCK * 4) as usize);
        set_span_enabled(false);
    }

    #[test]
    fn enter_restores_the_previous_span() {
        let outer = SpanContext { id: 41, root: 41 };
        let inner = SpanContext { id: 42, root: 41 };
        assert_eq!(current(), 0);
        {
            let _g1 = enter(outer);
            assert_eq!(current(), 41);
            {
                let _g2 = enter(inner);
                assert_eq!(current(), 42);
            }
            assert_eq!(current(), 41);
        }
        assert_eq!(current(), 0);
    }

    #[test]
    fn sampling_records_one_root_in_n() {
        set_span_enabled(true);
        set_span_sample_every(4);
        let recording = (0..8)
            .filter(|_| {
                let span = Span::root(SpanKind::Apply);
                let live = span.is_recording();
                // Forget rather than drop: this test counts sampling
                // decisions and must not race other tests' assertions on
                // the shared flight collector.
                std::mem::forget(span);
                live
            })
            .count();
        set_span_sample_every(1);
        set_span_enabled(false);
        // 8 consecutive roots at a divisor of 4 sample exactly 2,
        // whatever phase the thread's tick counter started at.
        assert_eq!(recording, 2);
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_code(kind.code()), Some(kind));
            assert_eq!(SpanKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SpanKind::from_code(0), None);
        assert_eq!(SpanKind::from_code(999), None);
    }
}
