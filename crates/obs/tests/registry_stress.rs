//! Concurrency stress for the metric layer: striped counters and log2
//! histograms must lose no records under hammering from many threads, and
//! the trace rings must account every overflow drop exactly.

use std::sync::Arc;
use std::thread;

use psnap_obs::{trace, Registry, TraceKind};

const THREADS: usize = 8;
const OPS: u64 = 20_000;

#[test]
fn concurrent_counter_hammering_is_exact() {
    let registry = Arc::new(Registry::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let registry = Arc::clone(&registry);
        handles.push(thread::spawn(move || {
            let counter = registry.counter("stress.hits");
            let gauge = registry.gauge("stress.level");
            for i in 0..OPS {
                counter.inc();
                counter.add(2);
                // Gauge goes up by (t + 1) and down by t per iteration, so
                // the final level is exactly THREADS * OPS.
                gauge.add(t as i64 + 1);
                gauge.sub(t as i64);
                let _ = i;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        registry.counter("stress.hits").get(),
        THREADS as u64 * OPS * 3
    );
    assert_eq!(
        registry.gauge("stress.level").get(),
        THREADS as i64 * OPS as i64
    );
}

#[test]
fn concurrent_histogram_hammering_is_exact() {
    let registry = Arc::new(Registry::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let registry = Arc::clone(&registry);
        handles.push(thread::spawn(move || {
            let hist = registry.histogram("stress.samples");
            for i in 0..OPS {
                // Every thread records 1..=OPS, so count, sum and max are
                // exactly predictable.
                hist.record(i + 1);
                let _ = t;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let snap = registry.histogram("stress.samples").snapshot();
    assert_eq!(snap.count, THREADS as u64 * OPS);
    assert_eq!(snap.sum, THREADS as u64 * (OPS * (OPS + 1) / 2));
    assert_eq!(snap.max, OPS);
    // Quantiles are bucket upper bounds clamped by the exact max: p50 of
    // 1..=20000 lands in the bucket covering 16384..=32767, clamped to max.
    assert!(snap.p50 >= OPS / 2);
    assert!(snap.p99 >= snap.p50);
    assert!(snap.p99 <= snap.max);
}

#[test]
fn partition_invariant_holds_under_concurrent_paired_increments() {
    let registry = Arc::new(Registry::new());
    registry.add_invariant("stress.partition", &["total"], &["path_a", "path_b"]);
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let registry = Arc::clone(&registry);
        handles.push(thread::spawn(move || {
            let total = registry.counter("total");
            let a = registry.counter("path_a");
            let b = registry.counter("path_b");
            for i in 0..OPS {
                total.inc();
                if (i + t as u64).is_multiple_of(3) {
                    a.inc();
                } else {
                    b.inc();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // At quiescence the partition must balance exactly.
    registry.assert_invariants();
    assert_eq!(
        registry.counter("path_a").get() + registry.counter("path_b").get(),
        THREADS as u64 * OPS
    );
}

#[test]
fn trace_ring_overflow_accounts_every_drop() {
    // A dedicated thread gets a fresh ring at the small capacity; everything
    // it emits beyond capacity must surface in the timeline's drop count.
    trace::set_trace_enabled(true);
    trace::set_ring_capacity(64);
    const EMITS: u64 = 1000;
    const MARK: u64 = 0x0B5_0DD;
    thread::spawn(|| {
        for i in 0..EMITS {
            trace::emit(TraceKind::QueuePush, MARK, i);
        }
        let timeline = trace::drain_timeline();
        let mine: Vec<_> = timeline.events.iter().filter(|e| e.a == MARK).collect();
        // Exactly the capacity survived, and they are the newest emits.
        assert_eq!(mine.len(), 64);
        assert!(mine.iter().all(|e| e.b >= EMITS - 64));
        assert!(timeline.dropped >= EMITS - 64);
    })
    .join()
    .unwrap();
    trace::set_ring_capacity(trace::DEFAULT_RING_CAPACITY);
}
