//! Process identities.
//!
//! The algorithms in the paper are written for processes `p_0, p_1, …` with
//! dense integer identifiers; per-process single-writer registers (the
//! announcement arrays `A[1..n]` / `S[1..n]`) are indexed by these identifiers.
//! In this reproduction a *process* is an OS thread that has registered itself
//! with [`register`] (usually done by the scenario runner in `psnap-sim` or by
//! the high-level object handles in `psnap-core`).

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Identifier of a process (thread) participating in an algorithm.
///
/// Process ids are small dense integers, exactly as in the paper, so that they
/// can index per-process announcement registers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Returns the id as an index usable with per-process arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

thread_local! {
    static CURRENT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Global source of fresh process ids, used when a thread asks for an identity
/// without being assigned one explicitly.
static NEXT_AUTO_ID: AtomicUsize = AtomicUsize::new(0);

/// Registers the calling thread as process `pid` until the returned guard is
/// dropped.
///
/// Nested registration is allowed (the previous identity is restored on drop),
/// which keeps the scenario runner simple when it layers helpers.
pub fn register(pid: ProcessId) -> ProcessGuard {
    let previous = CURRENT.with(|c| c.replace(Some(pid.0)));
    ProcessGuard { previous }
}

/// Returns the identity of the calling thread.
///
/// If the thread has not been registered explicitly, a fresh id is allocated
/// and installed; this makes the base objects usable from ad-hoc threads in
/// examples without ceremony while still giving every thread a distinct id.
pub fn current() -> ProcessId {
    CURRENT.with(|c| match c.get() {
        Some(id) => ProcessId(id),
        None => {
            let id = NEXT_AUTO_ID.fetch_add(1, Ordering::Relaxed) + AUTO_ID_BASE;
            c.set(Some(id));
            ProcessId(id)
        }
    })
}

/// Auto-assigned ids start high so that they never collide with the dense ids
/// handed out by scenario runners (which start at zero).
const AUTO_ID_BASE: usize = 1 << 20;

/// Returns the identity of the calling thread if it has one, without
/// allocating a fresh id.
pub fn current_opt() -> Option<ProcessId> {
    CURRENT.with(|c| c.get().map(ProcessId))
}

/// Guard restoring the previous thread identity when dropped.
#[must_use = "the registration lasts only while the guard is alive"]
pub struct ProcessGuard {
    previous: Option<usize>,
}

impl Drop for ProcessGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_restore() {
        {
            let _g = register(ProcessId(3));
            assert_eq!(current(), ProcessId(3));
            {
                let _g2 = register(ProcessId(7));
                assert_eq!(current(), ProcessId(7));
            }
            assert_eq!(current(), ProcessId(3));
        }
        // After all guards are dropped the thread falls back to an auto id,
        // which is stable for the rest of the thread's life.
        let auto = current();
        assert!(auto.index() >= AUTO_ID_BASE);
        assert_eq!(current(), auto);
    }

    #[test]
    fn auto_ids_are_distinct_across_threads() {
        let handles: Vec<_> = (0..4).map(|_| std::thread::spawn(current)).collect();
        let mut ids: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn current_opt_does_not_allocate() {
        std::thread::spawn(|| {
            assert_eq!(current_opt(), None);
            let _g = register(ProcessId(1));
            assert_eq!(current_opt(), Some(ProcessId(1)));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn display_format() {
        assert_eq!(ProcessId(5).to_string(), "p5");
    }
}
