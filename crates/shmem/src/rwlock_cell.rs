//! The lock-guarded `VersionedCell` implementation that PR 1 shipped,
//! retained verbatim as the **E9 contention baseline**.
//!
//! [`RwLockVersionedCell`] has exactly the interface and semantics of
//! [`VersionedCell`](crate::VersionedCell) — same stamps, same step
//! accounting, same `Versioned` handles — but guards the handle swing with a
//! `std::sync::RwLock` instead of swinging an atomic pointer. At the level of
//! the paper's model the two are indistinguishable (each operation is one
//! linearizable base-object step either way); at the hardware level the lock
//! serializes all writers and puts a contended lock word (and, under
//! contention, a futex syscall) on every read. Experiment E9 measures exactly
//! that difference. **Algorithm code must use
//! [`VersionedCell`](crate::VersionedCell)**; this type exists only so the
//! benchmark can keep comparing against the lock-based design it replaced.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::steps::{self, OpKind};
use crate::versioned::Versioned;

/// The PR-1 lock-guarded register / compare&swap object (E9 baseline only).
pub struct RwLockVersionedCell<T> {
    inner: RwLock<Versioned<T>>,
    next_stamp: AtomicU64,
}

impl<T: Send + Sync + 'static> RwLockVersionedCell<T> {
    /// Creates a cell holding `initial` (stamp 0).
    pub fn new(initial: T) -> Self {
        Self::from_arc(Arc::new(initial))
    }

    /// Creates a cell holding an already-shared record.
    pub fn from_arc(initial: Arc<T>) -> Self {
        RwLockVersionedCell {
            inner: RwLock::new(Versioned::from_parts(0, initial)),
            next_stamp: AtomicU64::new(1),
        }
    }

    fn fresh_stamp(&self) -> u64 {
        self.next_stamp.fetch_add(1, Ordering::Relaxed)
    }

    fn read_guard(&self) -> RwLockReadGuard<'_, Versioned<T>> {
        // A panicking writer cannot leave a torn record (the critical section
        // only swaps whole `Versioned`s), so poisoning is ignored.
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_guard(&self) -> RwLockWriteGuard<'_, Versioned<T>> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Atomically reads the current record.
    pub fn load(&self) -> Versioned<T> {
        steps::record(OpKind::Read);
        self.read_guard().clone()
    }

    /// Atomically replaces the current record with `value`.
    pub fn store(&self, value: T) {
        self.store_arc(Arc::new(value));
    }

    /// Atomically replaces the current record with an already-shared record.
    pub fn store_arc(&self, value: Arc<T>) {
        steps::record(OpKind::Write);
        let mut guard = self.write_guard();
        *guard = Versioned::from_parts(self.fresh_stamp(), value);
    }

    /// Atomically installs `new` if and only if the cell still holds the exact
    /// record previously observed as `expected`.
    pub fn compare_and_swap(
        &self,
        expected: &Versioned<T>,
        new: T,
    ) -> Result<Versioned<T>, Versioned<T>> {
        self.compare_and_swap_arc(expected, Arc::new(new))
    }

    /// Like [`compare_and_swap`](Self::compare_and_swap) but takes an
    /// already-shared record.
    pub fn compare_and_swap_arc(
        &self,
        expected: &Versioned<T>,
        new: Arc<T>,
    ) -> Result<Versioned<T>, Versioned<T>> {
        steps::record(OpKind::Cas);
        let mut guard = self.write_guard();
        if guard.stamp() != expected.stamp() {
            return Err(guard.clone());
        }
        *guard = Versioned::from_parts(self.fresh_stamp(), new);
        Ok(guard.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_cell_semantics() {
        let cell = RwLockVersionedCell::new(1u32);
        let v1 = cell.load();
        let v2 = cell.load();
        assert!(v1.same_version(&v2));
        cell.store(2);
        let v3 = cell.load();
        assert!(!v1.same_version(&v3));
        assert_eq!(*v3.value(), 2);
        // CAS from a stale version fails and reports the winner; retrying
        // with the reported version succeeds.
        let err = cell.compare_and_swap(&v1, 9).unwrap_err();
        assert_eq!(*err.value(), 2);
        let installed = cell.compare_and_swap(&err, 9).expect("cas from current");
        assert_eq!(*installed.value(), 9);
    }

    #[test]
    fn baseline_counts_steps_identically() {
        let cell = RwLockVersionedCell::new(0u8);
        let scope = crate::steps::StepScope::start();
        let v = cell.load();
        cell.store(1);
        let _ = cell.compare_and_swap(&v, 2);
        let report = scope.finish();
        assert_eq!(report.reads, 1);
        assert_eq!(report.writes, 1);
        assert_eq!(report.cas, 1);
    }
}
