//! A lock-free, growable array with stable element addresses.
//!
//! The active set algorithm of Figure 2 uses an array `I[1..]` "of registers,
//! each element of which stores the id of one active process". The array is
//! unbounded: the paper explicitly leaves space reclamation as an open
//! question and assumes a fresh slot per `join`. [`SegmentedArray`] provides
//! exactly that: an array indexed from 0 whose slots are allocated lazily in
//! geometrically growing segments. Slots never move once allocated, so a
//! reference to a slot remains valid for the lifetime of the array, and
//! allocation of new segments is lock-free (competing allocators race with a
//! single compare-exchange; losers free their segment).
//!
//! The companion type [`WordRegister`] is a step-counted single-word
//! read/write register — the element type used for `I[1..]`.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use crate::steps::{self, OpKind};

/// Number of slots in segment 0. Segment `s` holds `BASE << s` slots.
const BASE: usize = 64;
/// Maximum number of segments; total capacity is `BASE * (2^MAX_SEGMENTS - 1)`,
/// which exceeds any realistic execution length.
const MAX_SEGMENTS: usize = 40;

/// A lock-free growable array of `T` with stable addresses.
///
/// Elements are created with `T::default()` the first time their segment is
/// touched. Typical element types are atomics ([`WordRegister`],
/// `AtomicU64`, …), so interior mutability is provided by the element itself.
pub struct SegmentedArray<T> {
    segments: Box<[AtomicPtr<T>]>,
}

impl<T: Default> SegmentedArray<T> {
    /// Creates an empty array (no segments allocated yet).
    pub fn new() -> Self {
        let segments: Vec<AtomicPtr<T>> = (0..MAX_SEGMENTS)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        SegmentedArray {
            segments: segments.into_boxed_slice(),
        }
    }

    /// Maps a flat index to (segment, offset within segment).
    #[inline]
    fn locate(index: usize) -> (usize, usize) {
        // Segment s covers indices [BASE*(2^s - 1), BASE*(2^(s+1) - 1)).
        let block = index / BASE + 1;
        let seg = (usize::BITS - 1 - block.leading_zeros()) as usize;
        let seg_start = BASE * ((1usize << seg) - 1);
        (seg, index - seg_start)
    }

    #[inline]
    fn segment_len(seg: usize) -> usize {
        BASE << seg
    }

    fn segment_ptr(&self, seg: usize) -> *mut T {
        let slot = &self.segments[seg];
        let existing = slot.load(Ordering::Acquire);
        if !existing.is_null() {
            return existing;
        }
        // Allocate a fresh segment and race to install it.
        let len = Self::segment_len(seg);
        let mut fresh: Vec<T> = Vec::with_capacity(len);
        fresh.resize_with(len, T::default);
        let boxed: Box<[T]> = fresh.into_boxed_slice();
        let raw = Box::into_raw(boxed) as *mut T;
        match slot.compare_exchange(
            std::ptr::null_mut(),
            raw,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => raw,
            Err(winner) => {
                // Another thread installed its segment first; free ours.
                // Safety: `raw` came from Box::into_raw of a Box<[T]> of `len`
                // elements and was never shared.
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(raw, len)));
                }
                winner
            }
        }
    }

    /// Returns a reference to slot `index`, allocating its segment if needed.
    pub fn get(&self, index: usize) -> &T {
        let (seg, off) = Self::locate(index);
        assert!(seg < MAX_SEGMENTS, "SegmentedArray index out of range");
        let base = self.segment_ptr(seg);
        // Safety: `base` points to a live segment of `segment_len(seg)`
        // elements that is never freed while `self` is alive, and `off` is in
        // bounds by construction of `locate`.
        unsafe { &*base.add(off) }
    }
}

impl<T: Default> Default for SegmentedArray<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for SegmentedArray<T> {
    fn drop(&mut self) {
        for (seg, slot) in self.segments.iter().enumerate() {
            let ptr = slot.load(Ordering::Relaxed);
            if !ptr.is_null() {
                let len = Self::segment_len_any(seg);
                // Safety: installed segments were created by Box::into_raw with
                // exactly `len` elements and are freed exactly once, here.
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, len)));
                }
            }
        }
    }
}

impl<T> SegmentedArray<T> {
    #[inline]
    fn segment_len_any(seg: usize) -> usize {
        BASE << seg
    }
}

unsafe impl<T: Send + Sync> Send for SegmentedArray<T> {}
unsafe impl<T: Send + Sync> Sync for SegmentedArray<T> {}

/// A single-word read/write register with step accounting.
///
/// This is the element type of the `I[1..]` array in Figure 2: a register that
/// holds either a process id (encoded as `id + 1`) or 0 when the slot is
/// vacant. Encoding is left to the caller; the register just stores a `u64`.
#[derive(Debug, Default)]
pub struct WordRegister {
    word: AtomicU64,
}

impl WordRegister {
    /// Creates a register holding `initial`.
    pub fn new(initial: u64) -> Self {
        WordRegister {
            word: AtomicU64::new(initial),
        }
    }

    /// Reads the register (one [`OpKind::Read`] step).
    pub fn read(&self) -> u64 {
        steps::record(OpKind::Read);
        self.word.load(Ordering::Acquire)
    }

    /// Writes the register (one [`OpKind::Write`] step).
    pub fn write(&self, value: u64) {
        steps::record(OpKind::Write);
        self.word.store(value, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn locate_covers_indices_contiguously() {
        // Index 0..BASE are in segment 0, the next 2*BASE in segment 1, etc.
        let mut expected_seg = 0usize;
        let mut remaining = BASE;
        let mut offset = 0usize;
        for index in 0..10_000usize {
            if remaining == 0 {
                expected_seg += 1;
                remaining = BASE << expected_seg;
                offset = 0;
            }
            let (seg, off) = SegmentedArray::<WordRegister>::locate(index);
            assert_eq!(seg, expected_seg, "index {index}");
            assert_eq!(off, offset, "index {index}");
            remaining -= 1;
            offset += 1;
        }
    }

    #[test]
    fn slots_are_default_initialized_and_stable() {
        let arr: SegmentedArray<WordRegister> = SegmentedArray::new();
        assert_eq!(arr.get(0).read(), 0);
        assert_eq!(arr.get(500).read(), 0);
        arr.get(500).write(7);
        assert_eq!(arr.get(500).read(), 7);
        // The address of a slot never changes.
        let p1 = arr.get(500) as *const WordRegister;
        let _ = arr.get(5000);
        let p2 = arr.get(500) as *const WordRegister;
        assert_eq!(p1, p2);
    }

    #[test]
    fn sparse_indices_allocate_independent_segments() {
        let arr: SegmentedArray<WordRegister> = SegmentedArray::new();
        arr.get(1_000_000).write(42);
        assert_eq!(arr.get(1_000_000).read(), 42);
        assert_eq!(arr.get(0).read(), 0);
    }

    #[test]
    fn concurrent_first_touch_is_safe() {
        // Many threads race to touch the same fresh segment; exactly one
        // segment must win and all writes must land in it.
        let arr: Arc<SegmentedArray<WordRegister>> = Arc::new(SegmentedArray::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let arr = Arc::clone(&arr);
                thread::spawn(move || {
                    for i in 0..200u64 {
                        let idx = (i * 8 + t) as usize;
                        arr.get(idx).write(idx as u64 + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for idx in 0..1600usize {
            assert_eq!(arr.get(idx).read(), idx as u64 + 1);
        }
    }

    #[test]
    fn word_register_counts_steps() {
        let reg = WordRegister::new(3);
        let scope = crate::steps::StepScope::start();
        assert_eq!(reg.read(), 3);
        reg.write(4);
        assert_eq!(reg.read(), 4);
        let report = scope.finish();
        assert_eq!(report.reads, 2);
        assert_eq!(report.writes, 1);
    }
}
