//! `VersionedCell`: a lock-free atomic register over large immutable records
//! that also supports compare&swap.
//!
//! The paper's algorithms store records of the form `(value, view, counter,
//! id)` in a single register or compare&swap object. Such records are far too
//! large for a hardware word, so — exactly as the paper suggests — the cell
//! stores a pointer to an immutable heap record and swings that pointer
//! atomically:
//!
//! * [`load`](VersionedCell::load) is **one acquire load of the pointer**
//!   (wait-free; the cell word itself is never written by a read);
//! * [`store`](VersionedCell::store) is one atomic `swap` of the pointer;
//! * [`compare_and_swap`](VersionedCell::compare_and_swap) is one hardware
//!   `compare_exchange` on the pointer.
//!
//! Each operation is a single linearizable base-object step, so the step
//! accounting (the paper's cost metric) is identical to the earlier
//! `RwLock`-guarded implementation — but no operation ever blocks, spins on a
//! lock word, or makes a syscall, which is what lets throughput keep scaling
//! with threads (experiment E9; [`RwLockVersionedCell`](crate::rwlock_cell)
//! is that earlier implementation, retained as the E9 baseline).
//!
//! Records unlinked by `store`/`compare_and_swap` are reclaimed through the
//! vendored epoch scheme of [`crate::epoch`]: every operation runs under an
//! epoch pin, and an unlinked record is only freed once no pinned thread can
//! still dereference it. Values themselves are `Arc`s inside the record, so a
//! [`Versioned`] handle returned by `load` remains valid arbitrarily long
//! after the register is overwritten — and after the record that carried it
//! has been reclaimed.
//!
//! Every installed record carries a *stamp* that is unique within the cell.
//! Two loads returning equal stamps therefore guarantee that the register held
//! that exact record for the whole interval between the loads (the property
//! the paper obtains by tagging writes with `(id, counter)`), and
//! [`VersionedCell::compare_and_swap`] succeeds exactly when the register
//! still holds the record the caller previously loaded. There is no ABA
//! window at either level: stamps are never reused, and the epoch pin keeps a
//! compared pointer from being freed and reallocated mid-operation.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use crate::epoch;
use crate::steps::{self, OpKind};

/// A value read from a [`VersionedCell`], together with the version stamp it
/// had when it was read.
///
/// `Versioned` is cheap to clone (it clones an `Arc`) and is the token passed
/// back to [`VersionedCell::compare_and_swap`] as the expected old value.
#[derive(Debug)]
pub struct Versioned<T> {
    stamp: u64,
    value: Arc<T>,
}

// Manual impl: cloning a version handle only clones the `Arc`, so it must not
// require `T: Clone` (a derived impl would add that bound).
impl<T> Clone for Versioned<T> {
    fn clone(&self) -> Self {
        Versioned {
            stamp: self.stamp,
            value: Arc::clone(&self.value),
        }
    }
}

impl<T> Versioned<T> {
    /// Assembles a version handle. Used by this crate's register
    /// implementations ([`VersionedCell`], the `RwLock` baseline).
    pub(crate) fn from_parts(stamp: u64, value: Arc<T>) -> Self {
        Versioned { stamp, value }
    }

    /// The record that was stored in the cell.
    #[inline]
    pub fn value(&self) -> &T {
        &self.value
    }

    /// A shared handle to the record.
    #[inline]
    pub fn arc(&self) -> Arc<T> {
        Arc::clone(&self.value)
    }

    /// The version stamp: unique per cell and never reused, so equal stamps
    /// mean the identical install. Stamps increase in allocation order, which
    /// matches install order for non-overlapping operations (and along any
    /// chain of successful compare&swaps); two *concurrent* stores may commit
    /// in the opposite order of their stamps — concurrent writes to a
    /// register have no inherent order, and nothing in the paper's algorithms
    /// compares stamps for magnitude.
    #[inline]
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Returns true if `self` and `other` were read from the same install of
    /// the same cell (i.e. the register provably did not change in between).
    #[inline]
    pub fn same_version(&self, other: &Versioned<T>) -> bool {
        self.stamp == other.stamp
    }
}

impl<T> std::ops::Deref for Versioned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

/// The immutable heap record a cell points at. The stamp is embedded in the
/// record, so a single pointer load observes `(stamp, value)` atomically.
struct Record<T> {
    stamp: u64,
    value: Arc<T>,
}

/// A lock-free atomic register / compare&swap object over immutable records
/// of type `T`.
///
/// * [`load`](VersionedCell::load) is the paper's `read` (one step, kind
///   [`OpKind::Read`]).
/// * [`store`](VersionedCell::store) is the paper's `write` (one step, kind
///   [`OpKind::Write`]).
/// * [`compare_and_swap`](VersionedCell::compare_and_swap) is the paper's
///   `compare&swap(old, new)` (one step, kind [`OpKind::Cas`]), where `old` is
///   identified by the version previously returned from `load`.
///
/// All three operations are linearizable; each is one base-object step of the
/// cost model, and each is a single hardware operation on the cell's pointer
/// word (`load` / `swap` / `compare_exchange`).
pub struct VersionedCell<T> {
    ptr: AtomicPtr<Record<T>>,
    next_stamp: AtomicU64,
}

// Safety: the cell hands out `Arc<T>` clones across threads (needs
// `T: Send + Sync`) and defers record drops to arbitrary threads (needs
// `T: Send`). The pointer itself is only mutated atomically.
unsafe impl<T: Send + Sync> Send for VersionedCell<T> {}
unsafe impl<T: Send + Sync> Sync for VersionedCell<T> {}

impl<T: Send + Sync + 'static> VersionedCell<T> {
    /// Creates a cell holding `initial` (stamp 0).
    pub fn new(initial: T) -> Self {
        Self::from_arc(Arc::new(initial))
    }

    /// Creates a cell holding an already-shared record.
    pub fn from_arc(initial: Arc<T>) -> Self {
        VersionedCell {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(Record {
                stamp: 0,
                value: initial,
            }))),
            next_stamp: AtomicU64::new(1),
        }
    }

    fn fresh_stamp(&self) -> u64 {
        // Internal bookkeeping, not a base-object step of the algorithm.
        self.next_stamp.fetch_add(1, Ordering::Relaxed)
    }

    /// Reads the current record **without** recording a base-object step.
    ///
    /// Diagnostic reads (the `Debug` impl, test assertions, monitoring) must
    /// not perturb the paper's step accounting: debug-printing a cell in the
    /// middle of a measured operation would otherwise inject a spurious
    /// [`OpKind::Read`]. This is not part of the paper's object interface —
    /// algorithm code uses [`load`](Self::load).
    pub fn peek(&self) -> Versioned<T> {
        let guard = epoch::pin();
        let rec = unsafe { &*self.ptr.load(Ordering::Acquire) };
        let v = Versioned::from_parts(rec.stamp, Arc::clone(&rec.value));
        drop(guard);
        v
    }

    /// Atomically reads the current record.
    pub fn load(&self) -> Versioned<T> {
        steps::record(OpKind::Read);
        self.peek()
    }

    /// Atomically replaces the current record with `value`.
    pub fn store(&self, value: T) {
        self.store_arc(Arc::new(value));
    }

    /// Atomically replaces the current record with an already-shared record.
    pub fn store_arc(&self, value: Arc<T>) {
        steps::record(OpKind::Write);
        let fresh = Box::into_raw(Box::new(Record {
            stamp: self.fresh_stamp(),
            value,
        }));
        let old = self.ptr.swap(fresh, Ordering::AcqRel);
        // No epoch pin: a pure write never dereferences the displaced
        // record, and `retire` only needs the unlink (the swap above) to
        // have happened first.
        // Safety: `old` was just unlinked by the swap and is never retired
        // twice (each install retires exactly the record it displaced).
        unsafe { epoch::retire(old) };
    }

    /// Atomically installs `new` if and only if the cell still holds the exact
    /// record previously observed as `expected`.
    ///
    /// On success returns the freshly installed version; on failure returns
    /// the record currently stored (which the caller may use as the next
    /// `expected`, or simply to observe the value that won).
    pub fn compare_and_swap(
        &self,
        expected: &Versioned<T>,
        new: T,
    ) -> Result<Versioned<T>, Versioned<T>> {
        self.compare_and_swap_arc(expected, Arc::new(new))
    }

    /// Like [`compare_and_swap`](Self::compare_and_swap) but takes an
    /// already-shared record.
    pub fn compare_and_swap_arc(
        &self,
        expected: &Versioned<T>,
        new: Arc<T>,
    ) -> Result<Versioned<T>, Versioned<T>> {
        steps::record(OpKind::Cas);
        let guard = epoch::pin();
        let current = self.ptr.load(Ordering::Acquire);
        // Safety: protected by the pin — `current` cannot be freed (or freed
        // and reallocated, which is what rules out pointer ABA below) while
        // this thread is pinned.
        let current_rec = unsafe { &*current };
        if current_rec.stamp != expected.stamp {
            return Err(Versioned::from_parts(
                current_rec.stamp,
                Arc::clone(&current_rec.value),
            ));
        }
        let stamp = self.fresh_stamp();
        let installed = Versioned::from_parts(stamp, Arc::clone(&new));
        let fresh = Box::into_raw(Box::new(Record { stamp, value: new }));
        match self
            .ptr
            .compare_exchange(current, fresh, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(old) => {
                // Safety: `old` (== `current`) was just unlinked by this CAS.
                unsafe { guard.defer_drop(old) };
                Ok(installed)
            }
            Err(winner) => {
                // Our record was never published: free it directly.
                // Safety: `fresh` was allocated above and never shared.
                drop(unsafe { Box::from_raw(fresh) });
                // Safety: `winner` is protected by the pin, as above.
                let winner_rec = unsafe { &*winner };
                Err(Versioned::from_parts(
                    winner_rec.stamp,
                    Arc::clone(&winner_rec.value),
                ))
            }
        }
    }
}

impl<T> Drop for VersionedCell<T> {
    fn drop(&mut self) {
        // Exclusive access: no concurrent operation can hold the current
        // record, and all displaced records went through `defer_drop`.
        let current = *self.ptr.get_mut();
        drop(unsafe { Box::from_raw(current) });
    }
}

impl<T: Send + Sync + 'static + std::fmt::Debug> std::fmt::Debug for VersionedCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `peek`, not `load`: formatting a cell must not count as a
        // base-object step of the algorithm being measured.
        let v = self.peek();
        f.debug_struct("VersionedCell")
            .field("stamp", &v.stamp())
            .field("value", v.value())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn load_store_roundtrip() {
        let cell = VersionedCell::new(10u64);
        assert_eq!(*cell.load().value(), 10);
        cell.store(20);
        assert_eq!(*cell.load().value(), 20);
        cell.store(30);
        let v = cell.load();
        assert_eq!(*v.value(), 30);
        assert!(v.stamp() >= 2);
    }

    #[test]
    fn stamps_identify_versions() {
        let cell = VersionedCell::new(String::from("a"));
        let v1 = cell.load();
        let v2 = cell.load();
        assert!(v1.same_version(&v2));
        cell.store(String::from("b"));
        let v3 = cell.load();
        assert!(!v1.same_version(&v3));
        // Storing an equal value still produces a distinct version — this is
        // what rules out ABA, mirroring the paper's (id, counter) tag.
        cell.store(String::from("b"));
        let v4 = cell.load();
        assert_eq!(v3.value(), v4.value());
        assert!(!v3.same_version(&v4));
    }

    #[test]
    fn cas_succeeds_only_on_current_version() {
        let cell = VersionedCell::new(1u32);
        let old = cell.load();
        let installed = cell.compare_and_swap(&old, 2).expect("cas should succeed");
        assert_eq!(*installed.value(), 2);
        // A second CAS with the stale expected version must fail and report
        // the winning value.
        let err = cell.compare_and_swap(&old, 3).unwrap_err();
        assert_eq!(*err.value(), 2);
        assert_eq!(*cell.load().value(), 2);
    }

    #[test]
    fn cas_failure_returns_usable_expected() {
        let cell = VersionedCell::new(0u32);
        let stale = cell.load();
        cell.store(5);
        let current = cell.compare_and_swap(&stale, 9).unwrap_err();
        // Retrying with the returned current version succeeds.
        cell.compare_and_swap(&current, 9).expect("retry succeeds");
        assert_eq!(*cell.load().value(), 9);
    }

    #[test]
    fn values_survive_overwrite() {
        let cell = VersionedCell::new(vec![1, 2, 3]);
        let v = cell.load();
        cell.store(vec![4]);
        cell.store(vec![5]);
        // The record obtained before the overwrites is still intact.
        assert_eq!(v.value(), &vec![1, 2, 3]);
    }

    #[test]
    fn values_survive_overwrite_past_reclamation() {
        // Like `values_survive_overwrite`, but with enough overwrites that
        // the records the handles came from are retired *and collected*: the
        // `Arc` inside the handle, not the record's lifetime, keeps the value
        // alive.
        let cell = VersionedCell::new(vec![1u64, 2, 3]);
        let early = cell.load();
        for i in 0..5_000u64 {
            cell.store(vec![i]);
        }
        crate::epoch::flush();
        assert_eq!(early.value(), &vec![1, 2, 3]);
        assert_eq!(*cell.load().value(), vec![4_999]);
    }

    #[test]
    fn steps_are_counted() {
        let cell = VersionedCell::new(0u8);
        let scope = crate::steps::StepScope::start();
        let v = cell.load();
        cell.store(1);
        let v2 = cell.load();
        let _ = cell.compare_and_swap(&v, 2); // fails, still one CAS step
        let _ = cell.compare_and_swap(&v2, 3);
        let report = scope.finish();
        assert_eq!(report.reads, 2);
        assert_eq!(report.writes, 1);
        assert_eq!(report.cas, 2);
    }

    #[test]
    fn peek_and_debug_do_not_count_steps() {
        let cell = VersionedCell::new(7u32);
        let scope = crate::steps::StepScope::start();
        let peeked = cell.peek();
        let text = format!("{cell:?}");
        let report = scope.finish();
        assert_eq!(*peeked.value(), 7);
        assert!(text.contains("VersionedCell"));
        assert!(text.contains('7'));
        assert_eq!(
            report.total(),
            0,
            "diagnostic reads must not perturb step accounting"
        );
        // A peeked version is a real version: it can seed a successful CAS.
        cell.compare_and_swap(&peeked, 8).expect("peek is current");
    }

    #[test]
    fn concurrent_cas_elects_exactly_one_winner_per_round() {
        // Many threads repeatedly try to CAS from the value they last saw to a
        // tagged new value; every version observed must have been installed by
        // exactly one successful CAS.
        const THREADS: usize = 8;
        const ATTEMPTS: usize = 200;
        let cell = Arc::new(VersionedCell::new((usize::MAX, 0usize)));
        let successes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let cell = Arc::clone(&cell);
            let successes = Arc::clone(&successes);
            handles.push(thread::spawn(move || {
                for a in 0..ATTEMPTS {
                    let cur = cell.load();
                    if cell.compare_and_swap(&cur, (t, a)).is_ok() {
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = successes.load(Ordering::Relaxed);
        assert!(total >= 1);
        assert!(total <= THREADS * ATTEMPTS);
        // Every successful install consumed at least one fresh stamp, so the
        // final stamp is never smaller than the number of winners.
        let final_version = cell.load();
        assert!(final_version.stamp() as usize >= total);
        // And the winning value must be one that some thread actually tried
        // to install.
        let (winner_thread, winner_attempt) = *final_version.value();
        assert!(winner_thread < THREADS && winner_attempt < ATTEMPTS);
    }

    #[test]
    fn concurrent_stores_and_loads_never_tear() {
        // Writers store (i, i * 31) pairs; readers must never observe a torn
        // record, because records are immutable.
        let cell = Arc::new(VersionedCell::new((0u64, 0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(thread::spawn(move || {
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    cell.store((i, i.wrapping_mul(31)));
                    i += 4;
                }
            }));
        }
        let mut seen = HashSet::new();
        for _ in 0..20_000 {
            let v = cell.load();
            let (a, b) = *v.value();
            assert_eq!(b, a.wrapping_mul(31), "torn read observed");
            seen.insert(v.stamp());
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn stamps_strictly_increase_across_installs() {
        let cell = VersionedCell::new(0u32);
        let mut last = cell.load().stamp();
        for i in 1..100u32 {
            cell.store(i);
            let s = cell.load().stamp();
            assert!(s > last);
            last = s;
        }
    }

    #[test]
    fn from_arc_shares_the_record() {
        let record = Arc::new(vec![1u8, 2, 3]);
        let cell = VersionedCell::from_arc(Arc::clone(&record));
        let loaded = cell.load();
        assert!(Arc::ptr_eq(&loaded.arc(), &record));
    }
}
