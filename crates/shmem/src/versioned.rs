//! `VersionedCell`: an atomic register over large immutable records that also
//! supports compare&swap.
//!
//! The paper's algorithms store records of the form `(value, view, counter,
//! id)` in a single register or compare&swap object. Such records are far too
//! large for a hardware word, so — exactly as the paper suggests — the cell
//! stores a handle to an immutable heap record and swings that handle
//! atomically. Records are `Arc`s, so readers obtain an owned handle and
//! results remain valid arbitrarily long after the register is overwritten.
//!
//! The handle swing is guarded by a `std::sync::RwLock` whose critical
//! sections are a handful of instructions (clone an `Arc` / swap a field).
//! This workspace builds hermetically, so the epoch-based reclamation a
//! lock-free pointer swing would need is not available; at the level of the
//! paper's model this makes no difference — a `VersionedCell` operation is a
//! single linearizable base-object step either way, and the step accounting
//! (the paper's cost metric) is unchanged. `RwLock` keeps concurrent readers
//! fully parallel, which is what the scan-heavy algorithms need.
//!
//! Every installed record carries a *stamp* that is unique within the cell.
//! Two loads returning equal stamps therefore guarantee that the register held
//! that exact record for the whole interval between the loads (the property
//! the paper obtains by tagging writes with `(id, counter)`), and
//! [`VersionedCell::compare_and_swap`] succeeds exactly when the register
//! still holds the record the caller previously loaded — there is no ABA
//! window.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::steps::{self, OpKind};

/// A value read from a [`VersionedCell`], together with the version stamp it
/// had when it was read.
///
/// `Versioned` is cheap to clone (it clones an `Arc`) and is the token passed
/// back to [`VersionedCell::compare_and_swap`] as the expected old value.
#[derive(Debug)]
pub struct Versioned<T> {
    stamp: u64,
    value: Arc<T>,
}

// Manual impl: cloning a version handle only clones the `Arc`, so it must not
// require `T: Clone` (a derived impl would add that bound).
impl<T> Clone for Versioned<T> {
    fn clone(&self) -> Self {
        Versioned {
            stamp: self.stamp,
            value: Arc::clone(&self.value),
        }
    }
}

impl<T> Versioned<T> {
    /// The record that was stored in the cell.
    #[inline]
    pub fn value(&self) -> &T {
        &self.value
    }

    /// A shared handle to the record.
    #[inline]
    pub fn arc(&self) -> Arc<T> {
        Arc::clone(&self.value)
    }

    /// The version stamp: unique per cell, strictly increasing across
    /// successful installs.
    #[inline]
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Returns true if `self` and `other` were read from the same install of
    /// the same cell (i.e. the register provably did not change in between).
    #[inline]
    pub fn same_version(&self, other: &Versioned<T>) -> bool {
        self.stamp == other.stamp
    }
}

impl<T> std::ops::Deref for Versioned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

/// An atomic register / compare&swap object over immutable records of type `T`.
///
/// * [`load`](VersionedCell::load) is the paper's `read` (one step, kind
///   [`OpKind::Read`]).
/// * [`store`](VersionedCell::store) is the paper's `write` (one step, kind
///   [`OpKind::Write`]).
/// * [`compare_and_swap`](VersionedCell::compare_and_swap) is the paper's
///   `compare&swap(old, new)` (one step, kind [`OpKind::Cas`]), where `old` is
///   identified by the version previously returned from `load`.
///
/// All three operations are linearizable; each is one base-object step of the
/// cost model.
pub struct VersionedCell<T> {
    inner: RwLock<Versioned<T>>,
    next_stamp: AtomicU64,
}

impl<T: Send + Sync + 'static> VersionedCell<T> {
    /// Creates a cell holding `initial` (stamp 0).
    pub fn new(initial: T) -> Self {
        Self::from_arc(Arc::new(initial))
    }

    /// Creates a cell holding an already-shared record.
    pub fn from_arc(initial: Arc<T>) -> Self {
        VersionedCell {
            inner: RwLock::new(Versioned {
                stamp: 0,
                value: initial,
            }),
            next_stamp: AtomicU64::new(1),
        }
    }

    fn fresh_stamp(&self) -> u64 {
        // Internal bookkeeping, not a base-object step of the algorithm.
        self.next_stamp.fetch_add(1, Ordering::Relaxed)
    }

    fn read_guard(&self) -> RwLockReadGuard<'_, Versioned<T>> {
        // A panicking writer cannot leave a torn record (the critical section
        // only swaps whole `Versioned`s), so poisoning is ignored.
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_guard(&self) -> RwLockWriteGuard<'_, Versioned<T>> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Atomically reads the current record.
    pub fn load(&self) -> Versioned<T> {
        steps::record(OpKind::Read);
        self.read_guard().clone()
    }

    /// Atomically replaces the current record with `value`.
    pub fn store(&self, value: T) {
        self.store_arc(Arc::new(value));
    }

    /// Atomically replaces the current record with an already-shared record.
    pub fn store_arc(&self, value: Arc<T>) {
        steps::record(OpKind::Write);
        let mut guard = self.write_guard();
        *guard = Versioned {
            stamp: self.fresh_stamp(),
            value,
        };
    }

    /// Atomically installs `new` if and only if the cell still holds the exact
    /// record previously observed as `expected`.
    ///
    /// On success returns the freshly installed version; on failure returns
    /// the record currently stored (which the caller may use as the next
    /// `expected`, or simply to observe the value that won).
    pub fn compare_and_swap(
        &self,
        expected: &Versioned<T>,
        new: T,
    ) -> Result<Versioned<T>, Versioned<T>> {
        self.compare_and_swap_arc(expected, Arc::new(new))
    }

    /// Like [`compare_and_swap`](Self::compare_and_swap) but takes an
    /// already-shared record.
    pub fn compare_and_swap_arc(
        &self,
        expected: &Versioned<T>,
        new: Arc<T>,
    ) -> Result<Versioned<T>, Versioned<T>> {
        steps::record(OpKind::Cas);
        let mut guard = self.write_guard();
        if guard.stamp != expected.stamp {
            return Err(guard.clone());
        }
        *guard = Versioned {
            stamp: self.fresh_stamp(),
            value: new,
        };
        Ok(guard.clone())
    }
}

impl<T: Send + Sync + 'static + std::fmt::Debug> std::fmt::Debug for VersionedCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.load();
        f.debug_struct("VersionedCell")
            .field("stamp", &v.stamp())
            .field("value", v.value())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn load_store_roundtrip() {
        let cell = VersionedCell::new(10u64);
        assert_eq!(*cell.load().value(), 10);
        cell.store(20);
        assert_eq!(*cell.load().value(), 20);
        cell.store(30);
        let v = cell.load();
        assert_eq!(*v.value(), 30);
        assert!(v.stamp() >= 2);
    }

    #[test]
    fn stamps_identify_versions() {
        let cell = VersionedCell::new(String::from("a"));
        let v1 = cell.load();
        let v2 = cell.load();
        assert!(v1.same_version(&v2));
        cell.store(String::from("b"));
        let v3 = cell.load();
        assert!(!v1.same_version(&v3));
        // Storing an equal value still produces a distinct version — this is
        // what rules out ABA, mirroring the paper's (id, counter) tag.
        cell.store(String::from("b"));
        let v4 = cell.load();
        assert_eq!(v3.value(), v4.value());
        assert!(!v3.same_version(&v4));
    }

    #[test]
    fn cas_succeeds_only_on_current_version() {
        let cell = VersionedCell::new(1u32);
        let old = cell.load();
        let installed = cell.compare_and_swap(&old, 2).expect("cas should succeed");
        assert_eq!(*installed.value(), 2);
        // A second CAS with the stale expected version must fail and report
        // the winning value.
        let err = cell.compare_and_swap(&old, 3).unwrap_err();
        assert_eq!(*err.value(), 2);
        assert_eq!(*cell.load().value(), 2);
    }

    #[test]
    fn cas_failure_returns_usable_expected() {
        let cell = VersionedCell::new(0u32);
        let stale = cell.load();
        cell.store(5);
        let current = cell.compare_and_swap(&stale, 9).unwrap_err();
        // Retrying with the returned current version succeeds.
        cell.compare_and_swap(&current, 9).expect("retry succeeds");
        assert_eq!(*cell.load().value(), 9);
    }

    #[test]
    fn values_survive_overwrite() {
        let cell = VersionedCell::new(vec![1, 2, 3]);
        let v = cell.load();
        cell.store(vec![4]);
        cell.store(vec![5]);
        // The record obtained before the overwrites is still intact.
        assert_eq!(v.value(), &vec![1, 2, 3]);
    }

    #[test]
    fn steps_are_counted() {
        let cell = VersionedCell::new(0u8);
        let scope = crate::steps::StepScope::start();
        let v = cell.load();
        cell.store(1);
        let v2 = cell.load();
        let _ = cell.compare_and_swap(&v, 2); // fails, still one CAS step
        let _ = cell.compare_and_swap(&v2, 3);
        let report = scope.finish();
        assert_eq!(report.reads, 2);
        assert_eq!(report.writes, 1);
        assert_eq!(report.cas, 2);
    }

    #[test]
    fn concurrent_cas_elects_exactly_one_winner_per_round() {
        // Many threads repeatedly try to CAS from the value they last saw to a
        // tagged new value; every version observed must have been installed by
        // exactly one successful CAS.
        const THREADS: usize = 8;
        const ATTEMPTS: usize = 200;
        let cell = Arc::new(VersionedCell::new((usize::MAX, 0usize)));
        let successes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let cell = Arc::clone(&cell);
            let successes = Arc::clone(&successes);
            handles.push(thread::spawn(move || {
                for a in 0..ATTEMPTS {
                    let cur = cell.load();
                    if cell.compare_and_swap(&cur, (t, a)).is_ok() {
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = successes.load(Ordering::Relaxed);
        assert!(total >= 1);
        assert!(total <= THREADS * ATTEMPTS);
        // Every successful install consumed at least one fresh stamp, so the
        // final stamp is never smaller than the number of winners.
        let final_version = cell.load();
        assert!(final_version.stamp() as usize >= total);
        // And the winning value must be one that some thread actually tried
        // to install.
        let (winner_thread, winner_attempt) = *final_version.value();
        assert!(winner_thread < THREADS && winner_attempt < ATTEMPTS);
    }

    #[test]
    fn concurrent_stores_and_loads_never_tear() {
        // Writers store (i, i * 31) pairs; readers must never observe a torn
        // record, because records are immutable.
        let cell = Arc::new(VersionedCell::new((0u64, 0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(thread::spawn(move || {
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    cell.store((i, i.wrapping_mul(31)));
                    i += 4;
                }
            }));
        }
        let mut seen = HashSet::new();
        for _ in 0..20_000 {
            let v = cell.load();
            let (a, b) = *v.value();
            assert_eq!(b, a.wrapping_mul(31), "torn read observed");
            seen.insert(v.stamp());
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn stamps_strictly_increase_across_installs() {
        let cell = VersionedCell::new(0u32);
        let mut last = cell.load().stamp();
        for i in 1..100u32 {
            cell.store(i);
            let s = cell.load().stamp();
            assert!(s > last);
            last = s;
        }
    }

    #[test]
    fn from_arc_shares_the_record() {
        let record = Arc::new(vec![1u8, 2, 3]);
        let cell = VersionedCell::from_arc(Arc::clone(&record));
        let loaded = cell.load();
        assert!(Arc::ptr_eq(&loaded.arc(), &record));
    }
}
