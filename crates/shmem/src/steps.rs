//! Step accounting in the paper's cost model.
//!
//! The paper measures the cost of an implemented operation as the number of
//! base-object operations (reads, writes, compare&swaps, fetch&increments) the
//! process performs. Every base object in this crate reports each operation it
//! executes to a thread-local counter; higher layers wrap an implemented
//! operation in a [`StepScope`] to obtain the exact step count of that single
//! operation. Counters are thread-local `Cell`s, so accounting adds only a few
//! nanoseconds per base-object operation and never introduces synchronization
//! that could perturb the algorithms being measured.

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// The kinds of base-object operations distinguished by the cost model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// A read of a register (or of a CAS / fetch&increment object's value).
    Read,
    /// A write to a register.
    Write,
    /// A compare&swap operation (successful or not).
    Cas,
    /// A fetch&increment operation.
    FetchInc,
}

impl OpKind {
    /// All operation kinds, in a fixed order (used for reporting).
    pub const ALL: [OpKind; 4] = [OpKind::Read, OpKind::Write, OpKind::Cas, OpKind::FetchInc];
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Cas => "cas",
            OpKind::FetchInc => "fetch_inc",
        };
        f.write_str(s)
    }
}

/// A snapshot of the per-kind step counters.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct StepReport {
    /// Number of register/CAS/F&I reads.
    pub reads: u64,
    /// Number of register writes.
    pub writes: u64,
    /// Number of compare&swap operations.
    pub cas: u64,
    /// Number of fetch&increment operations.
    pub fetch_incs: u64,
}

impl StepReport {
    /// Total number of base-object operations.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.cas + self.fetch_incs
    }

    /// Returns the count for one operation kind.
    pub fn of(&self, kind: OpKind) -> u64 {
        match kind {
            OpKind::Read => self.reads,
            OpKind::Write => self.writes,
            OpKind::Cas => self.cas,
            OpKind::FetchInc => self.fetch_incs,
        }
    }

    fn saturating_sub(self, other: StepReport) -> StepReport {
        StepReport {
            reads: self.reads.saturating_sub(other.reads),
            writes: self.writes.saturating_sub(other.writes),
            cas: self.cas.saturating_sub(other.cas),
            fetch_incs: self.fetch_incs.saturating_sub(other.fetch_incs),
        }
    }
}

impl Add for StepReport {
    type Output = StepReport;
    fn add(self, rhs: StepReport) -> StepReport {
        StepReport {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            cas: self.cas + rhs.cas,
            fetch_incs: self.fetch_incs + rhs.fetch_incs,
        }
    }
}

impl AddAssign for StepReport {
    fn add_assign(&mut self, rhs: StepReport) {
        *self = *self + rhs;
    }
}

impl Sub for StepReport {
    type Output = StepReport;
    fn sub(self, rhs: StepReport) -> StepReport {
        self.saturating_sub(rhs)
    }
}

impl fmt::Display for StepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} steps (r={}, w={}, cas={}, f&i={})",
            self.total(),
            self.reads,
            self.writes,
            self.cas,
            self.fetch_incs
        )
    }
}

thread_local! {
    static READS: Cell<u64> = const { Cell::new(0) };
    static WRITES: Cell<u64> = const { Cell::new(0) };
    static CAS: Cell<u64> = const { Cell::new(0) };
    static FETCH_INCS: Cell<u64> = const { Cell::new(0) };
}

/// Records one base-object operation of the given kind performed by the
/// calling thread. Called by the base objects in this crate; algorithm code
/// never needs to call it directly.
#[inline]
pub fn record(kind: OpKind) {
    match kind {
        OpKind::Read => READS.with(|c| c.set(c.get() + 1)),
        OpKind::Write => WRITES.with(|c| c.set(c.get() + 1)),
        OpKind::Cas => CAS.with(|c| c.set(c.get() + 1)),
        OpKind::FetchInc => FETCH_INCS.with(|c| c.set(c.get() + 1)),
    }
    crate::chaos::maybe_perturb();
}

/// Returns the cumulative counters of the calling thread.
pub fn current_totals() -> StepReport {
    StepReport {
        reads: READS.with(Cell::get),
        writes: WRITES.with(Cell::get),
        cas: CAS.with(Cell::get),
        fetch_incs: FETCH_INCS.with(Cell::get),
    }
}

/// Measures the number of base-object operations performed by the calling
/// thread between the scope's creation and the call to [`StepScope::finish`].
///
/// ```
/// use psnap_shmem::{StepScope, VersionedCell};
///
/// let cell = VersionedCell::new(0u64);
/// let scope = StepScope::start();
/// let _v = cell.load();
/// cell.store(1);
/// let report = scope.finish();
/// assert_eq!(report.reads, 1);
/// assert_eq!(report.writes, 1);
/// assert_eq!(report.total(), 2);
/// ```
#[must_use = "a StepScope only reports steps when finished"]
pub struct StepScope {
    at_start: StepReport,
}

impl StepScope {
    /// Starts measuring.
    pub fn start() -> StepScope {
        StepScope {
            at_start: current_totals(),
        }
    }

    /// Stops measuring and returns the steps taken since [`StepScope::start`].
    pub fn finish(self) -> StepReport {
        current_totals() - self.at_start
    }

    /// Reports the steps taken so far without consuming the scope.
    pub fn so_far(&self) -> StepReport {
        current_totals() - self.at_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_scope() {
        let scope = StepScope::start();
        record(OpKind::Read);
        record(OpKind::Read);
        record(OpKind::Write);
        record(OpKind::Cas);
        record(OpKind::FetchInc);
        let report = scope.finish();
        assert_eq!(report.reads, 2);
        assert_eq!(report.writes, 1);
        assert_eq!(report.cas, 1);
        assert_eq!(report.fetch_incs, 1);
        assert_eq!(report.total(), 5);
    }

    #[test]
    fn nested_scopes_are_independent() {
        let outer = StepScope::start();
        record(OpKind::Read);
        let inner = StepScope::start();
        record(OpKind::Write);
        let inner_report = inner.finish();
        record(OpKind::Cas);
        let outer_report = outer.finish();
        assert_eq!(inner_report.total(), 1);
        assert_eq!(inner_report.writes, 1);
        assert_eq!(outer_report.total(), 3);
    }

    #[test]
    fn counters_are_thread_local() {
        let before = current_totals();
        std::thread::spawn(|| {
            record(OpKind::Read);
            record(OpKind::Read);
        })
        .join()
        .unwrap();
        // The other thread's steps must not leak into this thread's counters.
        assert_eq!(current_totals(), before);
    }

    #[test]
    fn report_arithmetic_and_display() {
        let a = StepReport {
            reads: 3,
            writes: 2,
            cas: 1,
            fetch_incs: 0,
        };
        let b = StepReport {
            reads: 1,
            writes: 1,
            cas: 0,
            fetch_incs: 0,
        };
        assert_eq!((a + b).total(), 8);
        assert_eq!((a - b).reads, 2);
        assert_eq!(a.of(OpKind::Read), 3);
        assert_eq!(a.of(OpKind::FetchInc), 0);
        let text = a.to_string();
        assert!(text.contains("6 steps"));
        for kind in OpKind::ALL {
            // Display must be stable — it is used in experiment tables.
            assert!(!kind.to_string().is_empty());
        }
    }

    #[test]
    fn subtraction_saturates() {
        let small = StepReport {
            reads: 1,
            ..Default::default()
        };
        let big = StepReport {
            reads: 5,
            ..Default::default()
        };
        assert_eq!((small - big).reads, 0);
    }
}
