//! Instrumented shared-memory base objects for the partial snapshot reproduction.
//!
//! The SPAA 2008 paper *Partial Snapshot Objects* (Attiya, Guerraoui, Ruppert)
//! works in the standard asynchronous shared-memory model: a fixed or unbounded
//! collection of processes communicate only through linearizable *base objects*
//! — read/write registers, compare&swap objects and fetch&increment objects —
//! and the cost of an implemented high-level operation is the number of base
//! object operations it performs.
//!
//! This crate provides exactly those base objects, built on hardware atomics
//! and a small vendored epoch-reclamation module ([`epoch`]) so that the
//! implemented algorithms remain lock-free at the machine level while the
//! workspace stays hermetic (no external crates), together with:
//!
//! * per-thread **step accounting** ([`steps`]) so that measured costs are the
//!   paper's costs (base-object operations), not an artifact of wall-clock
//!   noise;
//! * a **process registry** ([`process`]) mapping OS threads to the dense
//!   process identifiers used by the algorithms;
//! * a seeded **chaos layer** ([`chaos`]) that perturbs thread scheduling at
//!   base-object boundaries to widen the set of interleavings explored by the
//!   test suite;
//! * the concrete base objects: [`VersionedCell`] (an atomic register over
//!   arbitrarily large immutable records that also supports compare&swap),
//!   [`FetchIncrement`], and [`SegmentedArray`] (the unbounded array `I[1..]`
//!   required by the paper's active set algorithm of Figure 2).
//!
//! # Why `VersionedCell` is a faithful register / CAS object
//!
//! The paper assumes registers large enough to hold a component value, an
//! embedded view, a counter and a process id, and explicitly notes that a
//! pointer-indirection scheme may be used instead ("one can instead store a
//! pointer to a set of registers that stores the information"). `VersionedCell`
//! is that scheme: values are immutable heap records (`Arc<T>`) and the cell
//! atomically swings a pointer between them. Every successful `store` /
//! `compare_and_swap` installs a fresh *stamp* (a unique 64-bit sequence
//! number), which plays the role of the paper's `(id, counter)` pair: two reads
//! returning the same stamp guarantee the register did not change in between,
//! eliminating the ABA problem exactly as in the paper.
//!
//! # Every base object is a single hardware operation
//!
//! All four [`OpKind`]s map to one machine-level atomic on their object's
//! word — no locks, no syscalls, no helper loops:
//!
//! | base object step | hardware operation |
//! |---|---|
//! | `VersionedCell::load` | acquire pointer load |
//! | `VersionedCell::store` | atomic pointer `swap` |
//! | `VersionedCell::compare_and_swap` | pointer `compare_exchange` |
//! | `FetchIncrement::fetch_increment` | `fetch_add` on an `AtomicU64` |
//! | `WordRegister::read` / `write` | load / store on an `AtomicU64` |
//!
//! Retired `VersionedCell` records are reclaimed by the [`epoch`] module;
//! reads never write shared memory, so a `load` is wait-free in the strongest
//! sense. The lock-guarded cell that predates this design is kept as
//! [`RwLockVersionedCell`] purely as the baseline for the E9 contention
//! experiment.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod epoch;
pub mod fetch_inc;
pub mod metrics;
pub mod mv;
pub mod process;
pub mod rwlock_cell;
pub mod seg_array;
pub mod steps;
pub mod versioned;

pub use fetch_inc::FetchIncrement;
pub use mv::{MvRegister, MvStamp, TimestampCamera};
pub use process::ProcessId;
pub use rwlock_cell::RwLockVersionedCell;
pub use seg_array::{SegmentedArray, WordRegister};
pub use steps::{OpKind, StepReport, StepScope};
pub use versioned::{Versioned, VersionedCell};
