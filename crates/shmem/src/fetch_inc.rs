//! The fetch&increment base object used by the paper's active set algorithm
//! (Figure 2).
//!
//! The paper's `fetch&increment` atomically increments the stored integer and
//! returns the *new* value; the object can also be read without modifying it.
//! Indices handed out by the object in Figure 2 start at 1 (index 0 is "no
//! slot"), which is why the increment-then-return-new convention is kept here.
//!
//! Audit note (lock-free sweep): this object has always been a bare
//! [`AtomicU64`] — `fetch_increment` is one hardware `fetch_add` and `read`
//! one acquire load. It never went through a lock or a `VersionedCell`, so
//! both [`OpKind::FetchInc`] and the [`OpKind::Read`] it reports are
//! genuinely single hardware operations, matching the cost model's
//! assumption that a base-object step is one primitive.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::steps::{self, OpKind};

/// A wait-free fetch&increment object over a `u64`.
#[derive(Debug, Default)]
pub struct FetchIncrement {
    value: AtomicU64,
}

impl FetchIncrement {
    /// Creates an object with initial value `initial`.
    pub fn new(initial: u64) -> Self {
        FetchIncrement {
            value: AtomicU64::new(initial),
        }
    }

    /// Atomically increments the value and returns the **new** value
    /// (the paper's `fetch&increment`).
    pub fn fetch_increment(&self) -> u64 {
        steps::record(OpKind::FetchInc);
        self.value.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Reads the current value without modifying it.
    pub fn read(&self) -> u64 {
        steps::record(OpKind::Read);
        self.value.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn returns_new_value() {
        let f = FetchIncrement::new(0);
        assert_eq!(f.fetch_increment(), 1);
        assert_eq!(f.fetch_increment(), 2);
        assert_eq!(f.read(), 2);
    }

    #[test]
    fn starts_from_initial() {
        let f = FetchIncrement::new(10);
        assert_eq!(f.read(), 10);
        assert_eq!(f.fetch_increment(), 11);
    }

    #[test]
    fn concurrent_increments_hand_out_unique_values() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 1000;
        let f = Arc::new(FetchIncrement::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let f = Arc::clone(&f);
                thread::spawn(move || {
                    (0..PER_THREAD)
                        .map(|_| f.fetch_increment())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for v in h.join().unwrap() {
                assert!(all.insert(v), "duplicate value {v} handed out");
            }
        }
        assert_eq!(all.len(), THREADS * PER_THREAD);
        assert_eq!(f.read(), (THREADS * PER_THREAD) as u64);
        assert_eq!(*all.iter().min().unwrap(), 1);
        assert_eq!(*all.iter().max().unwrap(), (THREADS * PER_THREAD) as u64);
    }

    #[test]
    fn steps_are_counted() {
        let f = FetchIncrement::new(0);
        let scope = crate::steps::StepScope::start();
        f.fetch_increment();
        f.read();
        let report = scope.finish();
        assert_eq!(report.fetch_incs, 1);
        assert_eq!(report.reads, 1);
    }
}
