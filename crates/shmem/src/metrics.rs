//! Process-wide observability for this crate's shared machinery.
//!
//! The epoch table and the timestamp camera are process-global, so their
//! metrics are too: lazily created [`psnap_obs`] handles that the epoch and
//! [`crate::mv`] modules record into from their cold paths (retire,
//! collect, prune, help-finalize — never the per-read fast paths, which
//! stay exactly as the step model prices them). [`register_metrics`] names
//! the whole family into a registry for scraping.

use std::sync::{Arc, OnceLock};

use psnap_obs::{Counter, Gauge, Histogram, Metric, Registry};

macro_rules! global_metric {
    ($(#[$doc:meta])* $fn_name:ident, $ty:ident) => {
        $(#[$doc])*
        pub fn $fn_name() -> &'static Arc<$ty> {
            static HANDLE: OnceLock<Arc<$ty>> = OnceLock::new();
            HANDLE.get_or_init(|| Arc::new($ty::new()))
        }
    };
}

global_metric!(
    /// Records retired through the epoch machinery.
    epoch_retired,
    Counter
);
global_metric!(
    /// Records actually freed by collections.
    epoch_freed,
    Counter
);
global_metric!(
    /// Successful global-epoch advances.
    epoch_advances,
    Counter
);
global_metric!(
    /// Collection attempts that could not advance the epoch (a pinned
    /// straggler deferred reclamation by at least one round).
    epoch_deferrals,
    Counter
);
global_metric!(
    /// Retired-but-not-yet-freed records across every thread's bags (the
    /// live garbage the reclamation scheme is currently holding).
    epoch_bag_items,
    Gauge
);
global_metric!(
    /// Items freed per collection that freed anything.
    epoch_freed_per_collect,
    Histogram
);
global_metric!(
    /// Multiversion register versions installed (chains start at 1).
    mv_installed,
    Counter
);
global_metric!(
    /// Versions unlinked by pruning (reclaimed once their epoch expires).
    mv_unlinked,
    Counter
);
global_metric!(
    /// Versions currently reachable across every live register chain.
    mv_live_versions,
    Gauge
);
global_metric!(
    /// Pending single writes finalized by a helping reader instead of their
    /// own writer.
    mv_help_finalized,
    Counter
);
global_metric!(
    /// Chain length observed at the start of each effective prune.
    mv_chain_len,
    Histogram
);
global_metric!(
    /// Camera cutovers published (one per reshard migration — see
    /// [`crate::TimestampCamera::cutover`]).
    mv_cutovers,
    Counter
);
global_metric!(
    /// Versions copied across registers by reshard migrations, with their
    /// original timestamps frozen.
    mv_migrated_versions,
    Counter
);
global_metric!(
    /// Versions unlinked per effective prune (0 records mean the prune
    /// found nothing dead).
    mv_pruned_per_call,
    Histogram
);

/// Registers every metric of this crate into `registry` under the
/// `shmem.epoch.*` / `shmem.mv.*` families.
pub fn register_metrics(registry: &Registry) {
    registry.register(
        "shmem.epoch.retired",
        Metric::Counter(Arc::clone(epoch_retired())),
    );
    registry.register(
        "shmem.epoch.freed",
        Metric::Counter(Arc::clone(epoch_freed())),
    );
    registry.register(
        "shmem.epoch.advances",
        Metric::Counter(Arc::clone(epoch_advances())),
    );
    registry.register(
        "shmem.epoch.deferrals",
        Metric::Counter(Arc::clone(epoch_deferrals())),
    );
    registry.register(
        "shmem.epoch.bag_items",
        Metric::Gauge(Arc::clone(epoch_bag_items())),
    );
    registry.register(
        "shmem.epoch.freed_per_collect",
        Metric::Histogram(Arc::clone(epoch_freed_per_collect())),
    );
    registry.register(
        "shmem.mv.installed",
        Metric::Counter(Arc::clone(mv_installed())),
    );
    registry.register(
        "shmem.mv.unlinked",
        Metric::Counter(Arc::clone(mv_unlinked())),
    );
    registry.register(
        "shmem.mv.live_versions",
        Metric::Gauge(Arc::clone(mv_live_versions())),
    );
    registry.register(
        "shmem.mv.help_finalized",
        Metric::Counter(Arc::clone(mv_help_finalized())),
    );
    registry.register(
        "shmem.mv.chain_len",
        Metric::Histogram(Arc::clone(mv_chain_len())),
    );
    registry.register(
        "shmem.mv.cutovers",
        Metric::Counter(Arc::clone(mv_cutovers())),
    );
    registry.register(
        "shmem.mv.migrated_versions",
        Metric::Counter(Arc::clone(mv_migrated_versions())),
    );
    registry.register(
        "shmem.mv.pruned_per_call",
        Metric::Histogram(Arc::clone(mv_pruned_per_call())),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_exposes_live_handles() {
        let registry = Registry::new();
        register_metrics(&registry);
        let before = registry.counter("shmem.mv.installed").get();
        mv_installed().inc();
        assert_eq!(registry.counter("shmem.mv.installed").get(), before + 1);
        let text = registry.dump_text();
        assert!(text.contains("shmem.epoch.bag_items"));
        assert!(text.contains("shmem.mv.chain_len"));
    }
}
