//! Seeded schedule perturbation ("chaos") at base-object boundaries.
//!
//! Correctness bugs in wait-free algorithms hide in rare interleavings. The
//! chaos layer widens the set of interleavings a stress test explores by
//! occasionally yielding, spinning, or sleeping *immediately after a
//! base-object operation* — exactly the points at which the adversarial
//! scheduler of the model is allowed to preempt a process. Perturbation is
//! per-thread, seeded, and disabled by default, so production use and
//! benchmarking pay only the cost of a thread-local flag check.

use std::cell::RefCell;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the chaos layer for one thread.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Probability (0.0 ..= 1.0) of perturbing after any base-object step.
    pub perturb_probability: f64,
    /// Probability that a perturbation is a sleep rather than a yield/spin.
    pub sleep_probability: f64,
    /// Maximum sleep duration in microseconds.
    pub max_sleep_us: u64,
    /// Maximum number of spin iterations for spin perturbations.
    pub max_spin: u32,
    /// Probability (0.0 ..= 1.0) of parking the thread *inside a freshly
    /// pinned epoch* (see [`crate::epoch::pin`]). A parked pin stalls epoch
    /// advance for the whole process, forcing retired records to pile up —
    /// the adversarial schedule the reclamation logic must survive.
    pub pinned_park_probability: f64,
    /// Maximum pinned-park duration in microseconds (0 disables parking).
    pub max_pinned_park_us: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            perturb_probability: 0.05,
            sleep_probability: 0.02,
            max_sleep_us: 50,
            max_spin: 64,
            pinned_park_probability: 0.0,
            max_pinned_park_us: 0,
        }
    }
}

impl ChaosConfig {
    /// An aggressive configuration used by adversarial stress tests.
    pub fn aggressive() -> Self {
        ChaosConfig {
            perturb_probability: 0.25,
            sleep_probability: 0.10,
            max_sleep_us: 200,
            max_spin: 256,
            ..ChaosConfig::default()
        }
    }

    /// A light configuration that mostly yields, for long-running stress runs.
    pub fn light() -> Self {
        ChaosConfig {
            perturb_probability: 0.01,
            sleep_probability: 0.0,
            max_sleep_us: 0,
            max_spin: 16,
            ..ChaosConfig::default()
        }
    }

    /// A configuration aimed at the epoch reclamation machinery: readers park
    /// frequently *while pinned* (delaying epoch advance and ballooning the
    /// garbage queues) on top of moderate step-boundary perturbation.
    pub fn reclamation() -> Self {
        ChaosConfig {
            perturb_probability: 0.15,
            sleep_probability: 0.05,
            max_sleep_us: 100,
            max_spin: 128,
            pinned_park_probability: 0.25,
            max_pinned_park_us: 200,
        }
    }
}

struct ChaosState {
    config: ChaosConfig,
    rng: SmallRng,
}

thread_local! {
    static CHAOS: RefCell<Option<ChaosState>> = const { RefCell::new(None) };
    /// Mirror of `CHAOS.is_some()` as a plain `Cell`, so the hot paths
    /// (every base-object step, every epoch pin) pay one thread-local flag
    /// read instead of a `RefCell` borrow when chaos is off.
    static CHAOS_ON: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Enables chaos on the calling thread with the given seed and configuration,
/// until the returned guard is dropped.
pub fn enable(seed: u64, config: ChaosConfig) -> ChaosGuard {
    CHAOS.with(|c| {
        *c.borrow_mut() = Some(ChaosState {
            config,
            rng: SmallRng::seed_from_u64(seed),
        });
    });
    CHAOS_ON.with(|c| c.set(true));
    ChaosGuard { _private: () }
}

/// Returns true if chaos is currently enabled on the calling thread.
pub fn is_enabled() -> bool {
    CHAOS.with(|c| c.borrow().is_some())
}

/// Guard disabling chaos on drop.
#[must_use = "chaos is disabled as soon as the guard is dropped"]
pub struct ChaosGuard {
    _private: (),
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        CHAOS.with(|c| *c.borrow_mut() = None);
        CHAOS_ON.with(|c| c.set(false));
    }
}

/// Possibly perturbs the calling thread's schedule. Called by the step
/// accounting layer after every base-object operation.
#[inline]
pub(crate) fn maybe_perturb() {
    // Fast path: a single thread-local flag when chaos is off.
    if !CHAOS_ON.with(std::cell::Cell::get) {
        return;
    }
    CHAOS.with(|c| {
        let mut state = c.borrow_mut();
        let Some(state) = state.as_mut() else {
            return;
        };
        if !state.rng.gen_bool(state.config.perturb_probability) {
            return;
        }
        if state.config.max_sleep_us > 0 && state.rng.gen_bool(state.config.sleep_probability) {
            let us = state.rng.gen_range(1..=state.config.max_sleep_us);
            std::thread::sleep(Duration::from_micros(us));
        } else if state.rng.gen_bool(0.5) {
            std::thread::yield_now();
        } else {
            let spins = state.rng.gen_range(1..=state.config.max_spin);
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
    });
}

/// Possibly parks the calling thread while it holds a fresh epoch pin.
/// Called by [`crate::epoch::pin`] right after the pin is established, so the
/// park provably overlaps the pinned interval.
#[inline]
pub(crate) fn maybe_park_pinned() {
    // Fast path: one thread-local flag — this runs inside every epoch pin.
    if !CHAOS_ON.with(std::cell::Cell::get) {
        return;
    }
    CHAOS.with(|c| {
        let mut state = c.borrow_mut();
        let Some(state) = state.as_mut() else {
            return;
        };
        if state.config.max_pinned_park_us == 0
            || !state.rng.gen_bool(state.config.pinned_park_probability)
        {
            return;
        }
        let us = state.rng.gen_range(1..=state.config.max_pinned_park_us);
        std::thread::sleep(Duration::from_micros(us));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steps::{record, OpKind};

    #[test]
    fn enable_and_disable() {
        assert!(!is_enabled());
        {
            let _g = enable(42, ChaosConfig::default());
            assert!(is_enabled());
            // Perturbation must never panic or deadlock.
            for _ in 0..1000 {
                record(OpKind::Read);
            }
        }
        assert!(!is_enabled());
    }

    #[test]
    fn aggressive_config_perturbs_without_hanging() {
        let _g = enable(7, ChaosConfig::aggressive());
        for _ in 0..200 {
            record(OpKind::Cas);
        }
    }

    #[test]
    fn reclamation_config_parks_inside_pins_without_hanging() {
        let _g = enable(11, ChaosConfig::reclamation());
        for _ in 0..200 {
            // Each pin may park the thread inside the pinned epoch; the pin
            // must still establish and release correctly.
            let guard = crate::epoch::pin();
            assert!(crate::epoch::is_pinned());
            drop(guard);
        }
        assert!(!crate::epoch::is_pinned());
    }

    #[test]
    fn light_config_never_sleeps() {
        let cfg = ChaosConfig::light();
        assert_eq!(cfg.max_sleep_us, 0);
        let _g = enable(9, cfg);
        let start = std::time::Instant::now();
        for _ in 0..10_000 {
            record(OpKind::Read);
        }
        // Yield/spin only: this must stay fast even for many steps.
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
