//! Vendored epoch-based memory reclamation for the lock-free base objects.
//!
//! [`VersionedCell`](crate::VersionedCell) swings a raw pointer between
//! immutable heap records. A reader that has just loaded the pointer may
//! dereference it *after* a concurrent writer has already swapped it out, so
//! the record must not be freed until every such reader is provably done.
//! This module provides the classic three-epoch solution (the scheme behind
//! `crossbeam-epoch`, reduced to the ~300 lines this workspace needs so the
//! build stays hermetic):
//!
//! * a **global epoch** counter;
//! * a fixed table of **per-thread epoch slots**; a thread *pins* itself by
//!   publishing the global epoch into its slot before touching any protected
//!   pointer, and clears the slot when the last [`Guard`] drops;
//! * **deferred drops**: a writer that unlinks a record hands it to
//!   [`Guard::defer_drop`], which tags it with the current global epoch and
//!   queues it thread-locally; queued garbage is freed once the global epoch
//!   has advanced far enough that no reader can still hold the pointer.
//!
//! # Safety argument
//!
//! The global epoch advances from `g` to `g + 1` only when every pinned slot
//! equals `g` ([`try_advance`]). Two invariants follow:
//!
//! 1. **Pins lag by at most one**: every pinned slot is `g` or `g - 1`. A
//!    thread pins by publishing its epoch and re-reading the global epoch
//!    until the two agree (with a `SeqCst` fence in between), so a settled
//!    pin starts equal to the global epoch and the epoch can advance at most
//!    once before the pinned slot blocks it.
//! 2. **Retire tag is an upper bound on reader pins**: a record is unlinked
//!    *before* `defer_drop` reads the global epoch `t`, so any reader still
//!    holding the pointer was already pinned when the tag was taken, and by
//!    invariant 1 its pin is at least `t - 1`.
//!
//! Garbage tagged `t` is freed only once the global epoch reaches `t + 2`.
//! By invariant 1, a reader pinned at `e` keeps the global epoch at most
//! `e + 1`; a reader that could hold the record is pinned at `e >= t - 1`
//! **only while** the global epoch is at most `e + 1 <= t + 1 < t + 2`. So
//! when the epoch reaches `t + 2`, every reader that could have seen the
//! record has unpinned, and freeing is safe. This holds no matter which
//! thread performs the free — including a thread that is itself pinned: its
//! own pin `p` keeps the global epoch at `p + 1` at most, so anything it can
//! still reference (tagged at `>= p`, since it was live when the thread
//! pinned) is not yet eligible.
//!
//! Threads that exit with garbage still queued push it onto a global orphan
//! list (a `Mutex`, touched only on thread exit and during collection — the
//! pin/unpin/retire fast paths are lock-free and `load` never blocks).
//! Garbage held past process exit is reclaimed by the OS.
//!
//! The chaos layer ([`crate::chaos`]) can park a thread *while pinned*
//! (`ChaosConfig::reclamation`), stalling epoch advance adversarially; the
//! reclamation tests drive exactly that schedule.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maximum number of concurrently *live* threads that may use the epoch
/// machinery. Slots are recycled when a thread exits, so total thread count
/// over a process lifetime is unbounded.
const MAX_THREADS: usize = 512;

/// How many retired records a thread accumulates before it attempts a
/// collection (advance the epoch, free eligible garbage). Deliberately
/// small: the slot scan it triggers is bounded by the high-water mark (a
/// handful of cache lines), while short free batches keep the allocator's
/// per-thread caches hot — with large batches every freed record has fallen
/// out of the fast path by the time it is freed, and the extra latency shows
/// directly on the store hot path (measured: ~2x on a store-heavy workload).
const COLLECT_EVERY: usize = 8;

/// A record retired at epoch `t` may be freed once the global epoch is at
/// least `t + 2` (see the module-level safety argument). Garbage is kept in
/// `BAGS` bags indexed by `t % BAGS`: at epoch `now`, every item in bag
/// `(now + 1) % BAGS` has a tag `t ≡ now + 1 (mod 3)` with `t <= now`, hence
/// `t <= now - 2` — the whole bag is eligible and is freed wholesale, making
/// collection O(freed) instead of O(everything-retired-and-waiting).
const BAGS: usize = 3;

/// Epoch slots start at 1 so that 0 can mean "not pinned".
static GLOBAL_EPOCH: AtomicU64 = AtomicU64::new(1);

/// One cache line per slot: every `load` of every cell publishes into its
/// slot, so adjacent slots must not share a line.
#[repr(align(64))]
struct EpochSlot(AtomicU64);

static SLOT_EPOCH: [EpochSlot; MAX_THREADS] = [const { EpochSlot(AtomicU64::new(0)) }; MAX_THREADS];
static SLOT_CLAIMED: [AtomicBool; MAX_THREADS] = [const { AtomicBool::new(false) }; MAX_THREADS];

/// One past the highest slot index ever claimed: collection scans only
/// `0..high_water`, so a process using a handful of threads never pays for
/// the full table.
static SLOTS_HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

/// Garbage abandoned by exited threads, freed by whichever thread collects
/// next. Only touched on the cold paths (thread exit, collection).
static ORPHANS: Mutex<[Vec<Garbage>; BAGS]> = Mutex::new([Vec::new(), Vec::new(), Vec::new()]);

/// A retired allocation: an erased destructor plus the pointer. The retire
/// epoch is implied by which bag the item sits in (`tag % BAGS`). The pointee
/// is `Send` (enforced by [`retire`]), so any thread may run the destructor.
struct Garbage {
    ptr: *mut (),
    drop_fn: unsafe fn(*mut ()),
}

// Safety: `defer_drop` only accepts `T: Send`, and `ptr` is uniquely owned by
// this `Garbage` from retire to free.
unsafe impl Send for Garbage {}

impl Garbage {
    /// Frees the allocation. Caller asserts the epoch condition of the
    /// module-level safety argument.
    unsafe fn free(self) {
        (self.drop_fn)(self.ptr);
    }
}

unsafe fn drop_boxed<T>(ptr: *mut ()) {
    drop(unsafe { Box::from_raw(ptr.cast::<T>()) });
}

/// Per-thread participant state: the claimed slot, the pin depth (pins
/// nest), and the epoch-residue-indexed garbage bags.
struct Participant {
    slot: usize,
    depth: Cell<usize>,
    garbage: RefCell<[Vec<Garbage>; BAGS]>,
    since_collect: Cell<usize>,
}

impl Participant {
    fn register() -> Participant {
        for (slot, claimed) in SLOT_CLAIMED.iter().enumerate() {
            if claimed
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                SLOTS_HIGH_WATER.fetch_max(slot + 1, Ordering::SeqCst);
                return Participant {
                    slot,
                    depth: Cell::new(0),
                    garbage: RefCell::new([Vec::new(), Vec::new(), Vec::new()]),
                    since_collect: Cell::new(0),
                };
            }
        }
        panic!("epoch registry full: more than {MAX_THREADS} live threads use the base objects");
    }
}

impl Drop for Participant {
    fn drop(&mut self) {
        // A thread never exits while pinned (guards are scoped), so the slot
        // is already clear; store anyway for defense in depth, then hand any
        // remaining garbage to the orphan bags and recycle the slot.
        SLOT_EPOCH[self.slot].0.store(0, Ordering::Release);
        let leftover = std::mem::take(&mut *self.garbage.borrow_mut());
        if leftover.iter().any(|bag| !bag.is_empty()) {
            let mut orphans = ORPHANS.lock().unwrap_or_else(|e| e.into_inner());
            for (bag, mut local) in orphans.iter_mut().zip(leftover) {
                bag.append(&mut local);
            }
        }
        SLOT_CLAIMED[self.slot].store(false, Ordering::Release);
    }
}

thread_local! {
    static PARTICIPANT: Participant = Participant::register();
}

/// Pins the calling thread: until the returned [`Guard`] (and any nested
/// guards) drop, no record unlinked *after* this call will be freed, so
/// pointers loaded from protected locations stay dereferenceable.
#[inline]
pub fn pin() -> Guard {
    PARTICIPANT.with(|p| {
        let depth = p.depth.get();
        p.depth.set(depth + 1);
        if depth == 0 {
            let slot = &SLOT_EPOCH[p.slot].0;
            let mut e = GLOBAL_EPOCH.load(Ordering::Relaxed);
            loop {
                // A single `SeqCst` swap both publishes the slot and orders
                // the publication before the re-read and before any
                // subsequent protected load (an RMW is cheaper than a
                // relaxed store followed by a standalone `SeqCst` fence on
                // common hardware — this runs on every `VersionedCell` read).
                slot.swap(e, Ordering::SeqCst);
                let now = GLOBAL_EPOCH.load(Ordering::SeqCst);
                if now == e {
                    break;
                }
                // The epoch moved between the read and the publication;
                // republish so the settled pin equals the current epoch
                // (invariant 1 of the safety argument).
                e = now;
            }
            // Adversarial schedules: optionally park *while pinned*, stalling
            // epoch advance for every other thread.
            crate::chaos::maybe_park_pinned();
        }
    });
    Guard {
        _not_send: std::marker::PhantomData,
    }
}

/// Returns true if the calling thread currently holds at least one [`Guard`].
pub fn is_pinned() -> bool {
    PARTICIPANT.with(|p| p.depth.get() > 0)
}

/// The current global epoch (diagnostics and tests).
pub fn global_epoch() -> u64 {
    GLOBAL_EPOCH.load(Ordering::SeqCst)
}

/// An active pin on the calling thread. Dropping the last nested guard
/// unpins the thread. Guards are `!Send`: a pin is a property of one thread.
#[must_use = "the pin ends as soon as the guard is dropped"]
pub struct Guard {
    _not_send: std::marker::PhantomData<*mut ()>,
}

impl Guard {
    /// Queues `ptr` (a `Box`-allocated `T` that the caller has just unlinked
    /// from every shared location) to be dropped once no pinned thread can
    /// still hold it.
    ///
    /// # Safety
    ///
    /// Same contract as [`retire`] (taking `&self` merely documents that the
    /// caller is pinned, which hot paths like a successful compare&swap
    /// already are).
    pub unsafe fn defer_drop<T: Send + 'static>(&self, ptr: *mut T) {
        unsafe { retire(ptr) };
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        // `try_with`, not `with`: safe code may stash a guard in another
        // thread-local whose destructor runs after the participant's. The
        // participant's own destructor already cleared the slot and released
        // it, so skipping the bookkeeping here is correct — and anything
        // else would touch freed state.
        let _ = PARTICIPANT.try_with(|p| {
            let depth = p.depth.get();
            p.depth.set(depth - 1);
            if depth == 1 {
                SLOT_EPOCH[p.slot].0.store(0, Ordering::Release);
            }
        });
    }
}

/// Queues `ptr` (a `Box`-allocated `T` that the caller has just unlinked
/// from every shared location) to be dropped once no pinned thread can still
/// hold it.
///
/// The caller does **not** need to be pinned: retiring only requires that
/// the unlink has already happened (a pure writer like `VersionedCell::store`
/// swaps the pointer and retires the old record without ever dereferencing
/// it, so it skips the pin entirely).
///
/// # Safety
///
/// * `ptr` came from [`Box::into_raw`] and is not reachable from any shared
///   location anymore (it was unlinked before this call).
/// * No new reference to `ptr` will be created after this call.
/// * `ptr` is not retired twice.
pub unsafe fn retire<T: Send + 'static>(ptr: *mut T) {
    // If the thread-local participant is already destroyed (a retire from
    // inside another thread-local's destructor during thread exit), there is
    // nowhere safe to queue the garbage: leak it rather than free it under a
    // possibly-pinned concurrent reader. The OS reclaims it at process exit.
    let _ = PARTICIPANT.try_with(|p| unsafe { retire_with(p, ptr) });
}

unsafe fn retire_with<T: Send + 'static>(p: &Participant, ptr: *mut T) {
    // The tag is read *after* the unlink (the safety contract: the caller
    // unlinked first), making it an upper bound on the pin of any reader
    // that still holds the pointer — invariant 2. That ordering needs a
    // store→load barrier between the caller's unlink and the tag read. On
    // x86/x86-64 (TSO) the unlink — always an atomic RMW (`swap` or
    // `compare_exchange`) — is itself a full barrier; weakly ordered
    // targets need an explicit fence here.
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    fence(Ordering::SeqCst);
    // The tag is not stored: membership in bag `tag % BAGS` encodes it.
    let retired_at = GLOBAL_EPOCH.load(Ordering::SeqCst);
    crate::metrics::epoch_retired().inc();
    crate::metrics::epoch_bag_items().inc();
    let item = Garbage {
        ptr: ptr.cast::<()>(),
        drop_fn: drop_boxed::<T>,
    };
    p.garbage.borrow_mut()[(retired_at % BAGS as u64) as usize].push(item);
    let n = p.since_collect.get() + 1;
    if n >= COLLECT_EVERY {
        p.since_collect.set(0);
        collect_local(p);
    } else {
        p.since_collect.set(n);
    }
}

/// Tries to advance the global epoch by one. Succeeds only if every pinned
/// slot already equals the current epoch. Returns the (possibly advanced)
/// global epoch.
fn try_advance() -> u64 {
    let g = GLOBAL_EPOCH.load(Ordering::SeqCst);
    // Order this scan against the pinning threads' slot publications. Only
    // slots up to the high-water mark can ever have been claimed.
    fence(Ordering::SeqCst);
    let high = SLOTS_HIGH_WATER.load(Ordering::SeqCst);
    for (slot, claimed) in SLOT_CLAIMED.iter().enumerate().take(high) {
        if claimed.load(Ordering::Acquire) {
            let e = SLOT_EPOCH[slot].0.load(Ordering::SeqCst);
            if e != 0 && e != g {
                // A pinned straggler defers this round of reclamation.
                crate::metrics::epoch_deferrals().inc();
                return g;
            }
        }
    }
    fence(Ordering::SeqCst);
    // A lost race means someone else advanced; either way the epoch moved.
    if GLOBAL_EPOCH
        .compare_exchange(g, g + 1, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        crate::metrics::epoch_advances().inc();
        psnap_obs::trace::emit(psnap_obs::TraceKind::EpochAdvance, g + 1, 0);
    }
    GLOBAL_EPOCH.load(Ordering::SeqCst)
}

/// Detaches the one bag whose entire residue class is eligible at
/// `epoch_now` (every item in bag `(now + 1) % BAGS` has tag
/// `t ≡ now + 1 (mod BAGS)` with `t <= now`, hence `t <= now - 2`).
/// O(items freed) — no scan of garbage that must keep waiting.
///
/// Returns the bag instead of freeing in place: the caller must release
/// whatever borrow or lock guards the bag collection *before* running the
/// destructors, because a reclaimed value's `Drop` may legitimately re-enter
/// this module (a value whose destructor stores into another cell retires
/// more garbage).
fn take_eligible_bag(bags: &mut [Vec<Garbage>; BAGS], epoch_now: u64) -> Vec<Garbage> {
    std::mem::take(&mut bags[((epoch_now + 1) % BAGS as u64) as usize])
}

fn free_bag(bag: Vec<Garbage>) {
    let freed = bag.len() as u64;
    if freed > 0 {
        crate::metrics::epoch_freed().add(freed);
        crate::metrics::epoch_bag_items().sub(freed as i64);
        crate::metrics::epoch_freed_per_collect().record(freed);
    }
    for item in bag {
        // Safety: the epoch condition of the module-level argument holds.
        unsafe { item.free() };
    }
}

fn collect_local(p: &Participant) {
    let now = try_advance();
    // Local bags: every item was pushed by *this* thread before this call,
    // so its tag is at most `now` and the bag-eligibility argument of
    // `take_eligible_bag` applies directly. The borrow is released before
    // the destructors run (see `take_eligible_bag`).
    let eligible = take_eligible_bag(&mut p.garbage.borrow_mut(), now);
    free_bag(eligible);
    // Opportunistically drain garbage abandoned by exited threads. `try_lock`
    // keeps this path non-blocking, and the guard is released before the
    // destructors run below.
    // The epoch must be re-read *under the lock*: another thread may retire
    // at a newer epoch and exit (appending to these bags) after
    // `try_advance` above returned, and freeing bag `(stale + 1) % BAGS`
    // could then hit an item retired in the current epoch. An append holds
    // the lock, so every item present now was tagged no later than this
    // lock-held read, restoring `t <= now`.
    let orphaned = if let Ok(mut orphans) = ORPHANS.try_lock() {
        let now = GLOBAL_EPOCH.load(Ordering::SeqCst);
        take_eligible_bag(&mut orphans, now)
    } else {
        Vec::new()
    };
    free_bag(orphaned);
}

/// Attempts one epoch advance and frees everything eligible on the calling
/// thread (plus orphans). Primarily for tests and quiescent points; normal
/// operation collects automatically every [`COLLECT_EVERY`] retirements.
pub fn flush() {
    PARTICIPANT.with(collect_local);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Increments a shared counter when dropped.
    struct Token(Arc<AtomicUsize>);
    impl Drop for Token {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn retire_token(drops: &Arc<AtomicUsize>) {
        let guard = pin();
        let raw = Box::into_raw(Box::new(Token(Arc::clone(drops))));
        // Safety: freshly allocated, never shared, retired once.
        unsafe { guard.defer_drop(raw) };
    }

    #[test]
    fn pin_nests_and_unpins() {
        assert!(!is_pinned());
        let g1 = pin();
        assert!(is_pinned());
        let g2 = pin();
        drop(g1);
        assert!(is_pinned());
        drop(g2);
        assert!(!is_pinned());
    }

    #[test]
    fn deferred_drops_run_after_epoch_advance() {
        let drops = Arc::new(AtomicUsize::new(0));
        const N: usize = 500;
        for _ in 0..N {
            retire_token(&drops);
        }
        // Other tests in this process may hold pins transiently; keep
        // flushing until everything this test retired has been freed.
        let deadline = Instant::now() + Duration::from_secs(30);
        while drops.load(Ordering::SeqCst) < N {
            flush();
            assert!(
                Instant::now() < deadline,
                "garbage was not reclaimed: {}/{N} freed",
                drops.load(Ordering::SeqCst)
            );
            std::thread::yield_now();
        }
        assert_eq!(drops.load(Ordering::SeqCst), N);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let drops = Arc::new(AtomicUsize::new(0));
        let reader = pin();
        // Retire while a pin is live on this very thread: nothing retired
        // from here on may be freed until the pin drops, because the global
        // epoch cannot advance past `pin + 1`.
        for _ in 0..10 {
            retire_token(&drops);
        }
        for _ in 0..50 {
            flush();
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "garbage freed while a same-aged pin was live"
        );
        drop(reader);
        let deadline = Instant::now() + Duration::from_secs(30);
        while drops.load(Ordering::SeqCst) < 10 {
            flush();
            assert!(Instant::now() < deadline, "garbage leaked after unpin");
            std::thread::yield_now();
        }
    }

    #[test]
    fn destructors_may_reenter_the_epoch_machinery() {
        // A reclaimed value whose `Drop` retires more garbage must not
        // panic: the bag borrow is released before destructors run.
        struct Chain {
            depth: usize,
            drops: Arc<AtomicUsize>,
        }
        impl Drop for Chain {
            fn drop(&mut self) {
                self.drops.fetch_add(1, Ordering::SeqCst);
                if self.depth > 0 {
                    let guard = pin();
                    let raw = Box::into_raw(Box::new(Chain {
                        depth: self.depth - 1,
                        drops: Arc::clone(&self.drops),
                    }));
                    // Safety: freshly allocated, never shared, retired once.
                    unsafe { guard.defer_drop(raw) };
                }
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        // Enough retirements to cross COLLECT_EVERY repeatedly, so some
        // destructors run *inside* collect_local.
        for _ in 0..200 {
            let guard = pin();
            let raw = Box::into_raw(Box::new(Chain {
                depth: 3,
                drops: Arc::clone(&drops),
            }));
            unsafe { guard.defer_drop(raw) };
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        while drops.load(Ordering::SeqCst) < 200 * 4 {
            flush();
            assert!(
                Instant::now() < deadline,
                "re-entrant retirements were not reclaimed: {} freed",
                drops.load(Ordering::SeqCst)
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn exiting_thread_hands_garbage_to_orphans() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let drops = Arc::clone(&drops);
            std::thread::spawn(move || {
                // Retire fewer than COLLECT_EVERY items so the thread exits
                // with all of them still queued locally.
                for _ in 0..5 {
                    retire_token(&drops);
                }
            })
            .join()
            .unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        while drops.load(Ordering::SeqCst) < 5 {
            flush();
            assert!(Instant::now() < deadline, "orphaned garbage never freed");
            std::thread::yield_now();
        }
    }

    #[test]
    fn global_epoch_advances_when_unpinned() {
        let before = global_epoch();
        for _ in 0..3 {
            flush();
        }
        // Concurrent tests may hold short pins; at least one of the three
        // attempts overlapping no pin must advance in practice. Tolerate the
        // rare fully-contended run by only requiring monotonicity.
        assert!(global_epoch() >= before);
    }

    #[test]
    fn slots_are_recycled_across_threads() {
        // Far more threads than MAX_THREADS, sequentially: registration must
        // never exhaust the slot table because exit releases the slot.
        for _ in 0..MAX_THREADS + 64 {
            std::thread::spawn(|| {
                let _g = pin();
            })
            .join()
            .unwrap();
        }
    }
}
