//! Multiversioned registers: the base objects behind wait-free cross-shard
//! scans (the Wei et al. *constant-time snapshot* direction named in
//! ROADMAP.md).
//!
//! A [`VersionedCell`](crate::VersionedCell) holds exactly one record: a
//! reader that races a writer sees either the old or the new record, and a
//! *multi-register* scan that wants a consistent cut must validate and retry
//! (the sharded store's epoch windows) or wait writers out (its coordinated
//! fallback, the batch gate). An [`MvRegister`] instead keeps a short
//! immutable **chain** of versions, each tagged with a value of a shared
//! [`TimestampCamera`], so a scan can *announce* a timestamp `s` and read,
//! in every register, the version with the largest timestamp `≤ s` — an
//! older but mutually consistent cut — in a bounded number of its own
//! steps, with no retry loop and no waiting on in-flight writers.
//!
//! # The timestamp protocol
//!
//! The camera is a single monotone counter. A scan draws its timestamp with
//! one `fetch&add` ([`TimestampCamera::tick`]); a write installs its version
//! with a **pending** stamp and *finalizes* it to the camera's current value
//! afterwards ([`MvStamp::finalize`]). Writes linearize in timestamp order
//! (ties broken by chain position, newest first), scans at their tick:
//! [`MvRegister::read_at`] returns the version with the **largest**
//! finalized timestamp `≤ s`, so a version that is finalized late — behind
//! chain-newer versions with smaller timestamps — still wins exactly the
//! scans its timestamp entitles it to. The subtlety is the race between a
//! finalizing writer and a scan deciding whether a pending version is
//! "before" or "after" it; pending stamps come in two flavours closing it
//! from both sides:
//!
//! * **Single writes** ([`MvStamp::pending_single`]) are **help-finalized**:
//!   a scan that meets one finalizes it right there with a fresh camera read
//!   (one compare&swap; the value is `> s` because the scan's own tick
//!   already advanced the camera) and then judges the finalized timestamp.
//!   The writer's own finalize needs at most two rounds — its
//!   compare&swap fails only if a helper already finalized — so single
//!   updates are wait-free, and no scan ever skips a version whose
//!   timestamp could still land at or below it.
//! * **Batch writes** ([`MvStamp::pending_batch`]) must **not** be helped:
//!   their shared stamp may be finalized only after *every* version of the
//!   batch is installed, and only the batch writer knows when that is. A
//!   scan that meets one instead raises the slot's **floor** to its own
//!   timestamp (one compare&swap) and treats the version as not yet
//!   written; [`MvStamp::finalize`] re-reads the camera after observing any
//!   floor, so the published timestamp provably lands above every scan that
//!   stepped over the pending batch. Skips and timestamps always agree, and
//!   nobody waits: a batcher suspended mid-commit (even forever) leaves
//!   pending versions every scan steps over in O(1).
//!
//! Because a batch's versions share **one** stamp slot and the writer
//! finalizes only after every install, the whole batch commits at a single
//! point — the finalize — and the floor argument makes any scan that read
//! one register of the batch too early exclude the batch *everywhere*.
//! All-or-nothing without a write gate and without blocking scans.
//!
//! # Pruning
//!
//! Chains are kept short by [`MvRegister::prune`]: given the timestamp
//! *bounds* still in use (the announced timestamps of live scans, plus the
//! camera's current value for future scans), every finalized version that
//! no live or future scan can select — it is not the winner at the oldest
//! bound, and not above it, or it loses a timestamp tie to a chain-newer
//! version — is unlinked and handed to the epoch reclamation of
//! [`crate::epoch`]. Readers traversing a chain hold an epoch pin, so a
//! pruned version is freed only once no traversal can still reach it.
//! Pending versions are always kept (their timestamp is not yet decided).
//! After a prune the chain length is bounded by the number of live bounds
//! plus the pending versions (see the `mv_pruning` proptest suite).

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use crate::epoch;
use crate::steps::{self, OpKind};

/// The shared timestamp source ("camera") of a multiversioned snapshot
/// object — or of a whole family of them: sharded compositions hand one
/// camera to every shard so that cross-shard cuts are consistent.
///
/// Timestamps start at 1; 0 is reserved as the stamp of initial versions
/// (and as the "no announcement" sentinel of higher layers).
#[derive(Debug)]
pub struct TimestampCamera {
    clock: AtomicU64,
}

impl Default for TimestampCamera {
    fn default() -> Self {
        TimestampCamera::new()
    }
}

impl TimestampCamera {
    /// A fresh camera at timestamp 1.
    pub fn new() -> Self {
        TimestampCamera {
            clock: AtomicU64::new(1),
        }
    }

    /// The current timestamp (one read step).
    pub fn timestamp(&self) -> u64 {
        steps::record(OpKind::Read);
        self.clock.load(Ordering::SeqCst)
    }

    /// Draws a scan timestamp and advances the camera (one fetch&increment
    /// step). Returns the pre-increment value `s`: every version finalized
    /// before this call has timestamp `≤ s`, every version finalized by a
    /// writer (or helper) that observes this tick gets a timestamp `> s`.
    pub fn tick(&self) -> u64 {
        steps::record(OpKind::FetchInc);
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Publishes a **cutover boundary**: one tick, returning the smallest
    /// timestamp any *subsequent* finalize can receive. This is the single
    /// shared timestamp a reshard migration hides behind — every version
    /// finalized before the call sits strictly below the returned value,
    /// every finalize that starts after it lands at or above, so copying
    /// pre-cutover versions (with their original timestamps frozen via
    /// [`MvStamp::finalized`]) into new registers can never collide with a
    /// post-cutover write's timestamp. One fetch&increment step, counted in
    /// `shmem.mv.cutovers`.
    pub fn cutover(&self) -> u64 {
        crate::metrics::mv_cutovers().inc();
        self.tick() + 1
    }
}

/// Stamp-slot encoding. Bit 0 distinguishes a finalized timestamp from a
/// pending state; while pending, bit 1 distinguishes a help-finalizable
/// single write from a floor-carrying batch write (bits 2.. hold the
/// timestamp or the floor).
const FINAL_BIT: u64 = 0b01;
const SINGLE_BIT: u64 = 0b10;

const fn encode_final(t: u64) -> u64 {
    (t << 2) | FINAL_BIT
}

const fn encode_floor(s: u64) -> u64 {
    s << 2
}

/// The shared timestamp slot of one write or one batch of writes. Cloning an
/// `MvStamp` shares the slot: every version of a batch holds a clone, so the
/// single [`finalize`](MvStamp::finalize) commits them all at once.
#[derive(Clone, Debug)]
pub struct MvStamp {
    slot: Arc<AtomicU64>,
}

impl MvStamp {
    /// A pending stamp for a **single** write. Scans that encounter it
    /// help-finalize it with a fresh camera read, so the writer's own
    /// [`finalize`](Self::finalize) takes at most two rounds — single
    /// updates stay wait-free.
    pub fn pending_single() -> Self {
        MvStamp {
            slot: Arc::new(AtomicU64::new(SINGLE_BIT)),
        }
    }

    /// A pending stamp for a **batch** (floor 0). Scans never finalize it —
    /// only the batch writer may, after every version of the batch is
    /// installed — they raise its floor instead, forcing the eventual
    /// timestamp above themselves. Versions carrying it are invisible until
    /// [`finalize`](Self::finalize).
    pub fn pending_batch() -> Self {
        MvStamp {
            slot: Arc::new(AtomicU64::new(encode_floor(0))),
        }
    }

    /// A stamp already finalized at `t` (used for initial versions, which
    /// carry timestamp 0 and are visible to every scan).
    pub fn finalized(t: u64) -> Self {
        MvStamp {
            slot: Arc::new(AtomicU64::new(encode_final(t))),
        }
    }

    /// The finalized timestamp, if any (diagnostics; no step recorded).
    pub fn peek(&self) -> Option<u64> {
        let v = self.slot.load(Ordering::SeqCst);
        (v & FINAL_BIT != 0).then_some(v >> 2)
    }

    /// Finalizes the stamp to the camera's current value, re-reading the
    /// camera after every observed slot movement so the published timestamp
    /// is never stale (see the module docs). Returns the timestamp the
    /// stamp ended up with. Idempotent: a later call returns the winner's
    /// value.
    ///
    /// For a single-write stamp this takes at most two rounds (the only
    /// competing transition is a helper's finalize). For a batch stamp the
    /// loop is bounded by the concurrent scans, each of which raises the
    /// floor at most once.
    pub fn finalize(&self, camera: &TimestampCamera) -> u64 {
        loop {
            steps::record(OpKind::Read);
            let cur = self.slot.load(Ordering::SeqCst);
            if cur & FINAL_BIT != 0 {
                return cur >> 2;
            }
            // Reading the camera *after* the slot observation is the crux:
            // a floor-raiser ticked the camera past its own timestamp
            // before raising the floor, so `t` strictly exceeds every
            // timestamp whose scan stepped over this pending version.
            let t = camera.timestamp();
            steps::record(OpKind::Cas);
            if self
                .slot
                .compare_exchange(cur, encode_final(t), Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return t;
            }
        }
    }

    /// Resolves the stamp of an install-race **winner** so the loser can
    /// decide whether dropping its write is linearizable: returns the
    /// winner's now-published timestamp — finalizing a pending single write
    /// on the spot (one camera read + one compare&swap, like a scan's
    /// help) — or `None` if the winner is a batch still pending, whose
    /// timestamp only its own writer may publish. A loser that observes
    /// `Some(t)` may linearize immediately before the winner (the
    /// publication happened inside the loser's interval, so every scan that
    /// follows the loser's return sees the winner or something newer); on
    /// `None` it must retry its install instead.
    pub fn resolve_winner(&self, camera: &TimestampCamera) -> Option<u64> {
        loop {
            steps::record(OpKind::Read);
            let cur = self.slot.load(Ordering::SeqCst);
            if cur & FINAL_BIT != 0 {
                return Some(cur >> 2);
            }
            if cur & SINGLE_BIT == 0 {
                return None;
            }
            let t = camera.timestamp();
            steps::record(OpKind::Cas);
            if self
                .slot
                .compare_exchange(cur, encode_final(t), Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                crate::metrics::mv_help_finalized().inc();
                psnap_obs::trace::emit(psnap_obs::TraceKind::HelpFinalize, t, 0);
                return Some(t);
            }
        }
    }

    /// Resolves this stamp against scan timestamp `s`: the finalized
    /// timestamp, or `None` if the version must be treated as not yet
    /// written by this scan. A pending single write is help-finalized with
    /// a fresh camera read (which lands above `s` — the scan already ticked
    /// the camera); a pending batch write gets its floor raised to `s`, so
    /// its later finalize is forced above `s`.
    ///
    /// Bounded: each retry means the slot moved — to final (at most once),
    /// or to a higher floor (at most once per concurrent scan, since floors
    /// strictly increase).
    fn read_for(&self, s: u64, camera: &TimestampCamera) -> Option<u64> {
        loop {
            steps::record(OpKind::Read);
            let cur = self.slot.load(Ordering::SeqCst);
            if cur & FINAL_BIT != 0 {
                let t = cur >> 2;
                return (t <= s).then_some(t);
            }
            if cur & SINGLE_BIT != 0 {
                // Help-finalize the single write; our camera read happens
                // after our tick, so the helped timestamp exceeds `s` and
                // the version is consistently "after us" — unless the
                // writer's own finalize won the race, in which case the
                // reload above judges its timestamp.
                let t = camera.timestamp();
                steps::record(OpKind::Cas);
                if self
                    .slot
                    .compare_exchange(cur, encode_final(t), Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    debug_assert!(t > s);
                    crate::metrics::mv_help_finalized().inc();
                    psnap_obs::trace::emit(psnap_obs::TraceKind::HelpFinalize, t, 0);
                    return None;
                }
                continue;
            }
            if cur >> 2 >= s {
                // An equal or higher floor already protects this skip.
                return None;
            }
            steps::record(OpKind::Cas);
            if self
                .slot
                .compare_exchange(cur, encode_floor(s), Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return None;
            }
        }
    }
}

/// One version in a register's chain. Immutable once published except for
/// `next`, which only the register's single pruner rewrites.
struct MvNode<T> {
    value: Arc<T>,
    stamp: MvStamp,
    /// The next-older version; null at the end of the chain.
    next: AtomicPtr<MvNode<T>>,
}

/// A multiversioned register: an atomic register whose overwritten values
/// remain readable at older timestamps until pruned.
///
/// * [`try_install`](MvRegister::try_install) /
///   [`install`](MvRegister::install) push a new version (one compare&swap
///   per attempt);
/// * [`read_at`](MvRegister::read_at) returns the version with the largest
///   finalized timestamp `≤ s` (ties go to the chain-newest version),
///   resolving pending versions on the way (bounded, no retries — the
///   chain below the captured head is immutable);
/// * [`prune`](MvRegister::prune) unlinks versions no live or future scan
///   can select, reclaiming them through [`crate::epoch`].
pub struct MvRegister<T> {
    head: AtomicPtr<MvNode<T>>,
    /// Single-pruner lock: pruning rewrites `next` pointers, and one pruner
    /// at a time keeps unlinking and retirement trivially exclusive. Taken
    /// opportunistically (one CAS attempt) — never waited on.
    pruner: AtomicBool,
}

// Safety: values are shared as `Arc<T>` across threads (`T: Send + Sync`)
// and node drops may run on any thread (`T: Send`); the chain itself is only
// mutated through atomics.
unsafe impl<T: Send + Sync> Send for MvRegister<T> {}
unsafe impl<T: Send + Sync> Sync for MvRegister<T> {}

impl<T: Send + Sync + 'static> MvRegister<T> {
    /// A register whose initial version carries timestamp 0 (visible to every
    /// scan).
    pub fn new(initial: T) -> Self {
        let node = Box::into_raw(Box::new(MvNode {
            value: Arc::new(initial),
            stamp: MvStamp::finalized(0),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }));
        crate::metrics::mv_installed().inc();
        crate::metrics::mv_live_versions().inc();
        MvRegister {
            head: AtomicPtr::new(node),
            pruner: AtomicBool::new(false),
        }
    }

    /// Attempts to push a new version (one compare&swap step). On a lost
    /// race returns the **winner's stamp**, because whether the loser may
    /// be dropped depends on it: linearizing a dropped write "immediately
    /// before the winner" (the Section 4.2 argument) is only sound once the
    /// winner's timestamp is published inside the loser's interval — see
    /// [`MvStamp`] and `MvSnapshot::update`. Use
    /// [`install`](Self::install) where the version *must* land (batch
    /// sub-writes).
    pub fn try_install(&self, value: Arc<T>, stamp: MvStamp) -> Result<(), MvStamp> {
        // The pin protects the winner dereference on the failure path; the
        // success path never dereferences a shared node.
        let _guard = epoch::pin();
        let cur = self.head.load(Ordering::Acquire);
        let node = Box::into_raw(Box::new(MvNode {
            value,
            stamp,
            next: AtomicPtr::new(cur),
        }));
        steps::record(OpKind::Cas);
        match self
            .head
            .compare_exchange(cur, node, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                crate::metrics::mv_installed().inc();
                crate::metrics::mv_live_versions().inc();
                Ok(())
            }
            Err(winner) => {
                // Never published: free directly.
                // Safety: `node` was allocated above and never shared;
                // `winner` is protected by the pin.
                drop(unsafe { Box::from_raw(node) });
                Err(unsafe { &*winner }.stamp.clone())
            }
        }
    }

    /// Pushes a new version, retrying lost races until it lands (one
    /// compare&swap step per attempt; lock-free — a failed attempt means a
    /// concurrent install succeeded). Batch sub-writes use this: a batch's
    /// version must enter the chain so the batch is all-or-nothing over its
    /// components.
    pub fn install(&self, value: Arc<T>, stamp: MvStamp) {
        // No pin needed — see `try_install`.
        let node = Box::into_raw(Box::new(MvNode {
            value,
            stamp,
            next: AtomicPtr::new(self.head.load(Ordering::Acquire)),
        }));
        loop {
            // Safety: `node` is still private to this thread until the CAS
            // below publishes it.
            let expected = unsafe { &*node }.next.load(Ordering::Relaxed);
            steps::record(OpKind::Cas);
            match self
                .head
                .compare_exchange(expected, node, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    crate::metrics::mv_installed().inc();
                    crate::metrics::mv_live_versions().inc();
                    return;
                }
                Err(winner) => unsafe { &*node }.next.store(winner, Ordering::Relaxed),
            }
        }
    }

    /// The version with the largest finalized timestamp `≤ s` (ties go to
    /// the chain-newest version — among equal timestamps only the newest is
    /// ever returned, which is what orders same-timestamp writes by install
    /// order). Pending versions met along the way are resolved per
    /// [`MvStamp`]'s protocol: singles help-finalized, batch floors raised.
    ///
    /// Bounded: the walk covers exactly the chain below the head captured
    /// by one read, and that chain is immutable (pruning only unlinks
    /// versions no announced timestamp can select, and an unlinked
    /// version's own `next` still leads back into the kept chain). Each
    /// version visited costs a stamp resolution plus one hop read.
    ///
    /// # Panics
    ///
    /// Panics if no version with timestamp `≤ s` exists — the announce
    /// protocol of the callers guarantees one (pruning never unlinks the
    /// winner at or below a live announcement).
    pub fn read_at(&self, s: u64, camera: &TimestampCamera) -> Arc<T> {
        self.read_at_stamped(s, camera).1
    }

    /// Like [`read_at`](Self::read_at), but also returns the winning
    /// version's finalized timestamp — what a reshard migration's
    /// merge-read needs to arbitrate between a component's old and new
    /// register (larger timestamp wins). Same step costs, same panic
    /// condition, same pending-version resolution.
    pub fn read_at_stamped(&self, s: u64, camera: &TimestampCamera) -> (u64, Arc<T>) {
        let _guard = epoch::pin();
        steps::record(OpKind::Read);
        let mut cur = self.head.load(Ordering::Acquire);
        let mut best: Option<(u64, Arc<T>)> = None;
        while !cur.is_null() {
            // Safety: protected by the epoch pin; the node was published to
            // the chain and not yet reclaimed.
            let node = unsafe { &*cur };
            if let Some(t) = node.stamp.read_for(s, camera) {
                // Strict `>`: on a timestamp tie the version seen first
                // (chain-newest) wins.
                if best.as_ref().is_none_or(|(bt, _)| t > *bt) {
                    best = Some((t, Arc::clone(&node.value)));
                }
            }
            steps::record(OpKind::Read);
            cur = node.next.load(Ordering::Acquire);
        }
        best.unwrap_or_else(|| {
            panic!(
                "MvRegister::read_at({s}): no version at or below the announced timestamp — \
                 the chain was pruned below a live announcement"
            )
        })
    }

    /// Every **finalized** version currently in the chain, oldest-first:
    /// `(timestamp, value)` pairs in the order a migration must re-install
    /// them into a fresh register so that chain-position tie-breaks are
    /// preserved (install pushes to the head, so installing oldest-first
    /// leaves the newest at the head, exactly as here). Pending versions are
    /// skipped — the caller (a reshard migration) runs after the source
    /// register is frozen, when none can exist. Diagnostics-priced: no steps
    /// recorded.
    pub fn finalized_versions(&self) -> Vec<(u64, Arc<T>)> {
        let _guard = epoch::pin();
        let mut out: Vec<(u64, Arc<T>)> = Vec::new();
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // Safety: protected by the epoch pin.
            let node = unsafe { &*cur };
            if let Some(t) = node.stamp.peek() {
                out.push((t, Arc::clone(&node.value)));
            }
            cur = node.next.load(Ordering::Acquire);
        }
        out.reverse();
        out
    }

    /// The newest version's value and finalized timestamp, if finalized
    /// (diagnostics and tests; no steps recorded).
    pub fn peek_newest(&self) -> (Arc<T>, Option<u64>) {
        let _guard = epoch::pin();
        // Safety: head is never null (chains always keep ≥ 1 version).
        let node = unsafe { &*self.head.load(Ordering::Acquire) };
        (Arc::clone(&node.value), node.stamp.peek())
    }

    /// Number of versions currently in the chain (diagnostics and the
    /// pruning proptests; no steps recorded).
    pub fn chain_len(&self) -> usize {
        let _guard = epoch::pin();
        let mut len = 0usize;
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            len += 1;
            // Safety: protected by the epoch pin.
            cur = unsafe { &*cur }.next.load(Ordering::Acquire);
        }
        len
    }

    /// Unlinks every version no live or future scan can select, retiring it
    /// through the epoch module.
    ///
    /// `bounds` must be sorted **descending**, deduplicated and non-empty,
    /// and must contain a lower bound for every timestamp a scan may still
    /// announce plus the camera's current value (covering future scans —
    /// their timestamps can only be larger). Under timestamp-ordered
    /// selection a finalized version is selectable by some scan iff its
    /// timestamp is at least the winner's at the **oldest** bound (a scan's
    /// timestamp is at least its announcement, which is at least the oldest
    /// bound, and selection takes the largest timestamp `≤ s`) and it is
    /// the chain-newest version of its timestamp (older ties always lose).
    /// Everything else is unlinked in place; pending versions are always
    /// kept, and the head is kept unconditionally (writers race on it).
    ///
    /// Opportunistic: if another prune is in flight the call returns
    /// immediately (one compare&swap step) — chains are re-prunable on the
    /// next write, so nothing is lost by skipping. Unlinked versions stay
    /// intact (their own `next` is never rewritten) until no pinned
    /// traversal can reach them, so a reader that already stepped onto one
    /// simply walks through it back into the kept chain.
    pub fn prune(&self, bounds: &[u64]) {
        debug_assert!(!bounds.is_empty(), "prune needs at least the camera bound");
        debug_assert!(
            bounds.windows(2).all(|w| w[0] > w[1]),
            "bounds must be sorted descending and deduplicated"
        );
        steps::record(OpKind::Cas);
        if self
            .pruner
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let _guard = epoch::pin();
        // Pass 1: capture the chain (newest first) and each version's
        // finalized timestamp, if any. Safety for all dereferences below:
        // protected by the pin, and only this pruner (single-pruner lock)
        // unlinks or retires chain nodes.
        let mut chain: Vec<(*mut MvNode<T>, Option<u64>)> = Vec::new();
        steps::record(OpKind::Read);
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            steps::record(OpKind::Read);
            let node = unsafe { &*cur };
            chain.push((cur, node.stamp.peek()));
            cur = node.next.load(Ordering::Acquire);
        }
        // The winner's timestamp at the oldest bound: the largest finalized
        // timestamp ≤ it. Every selectable version has a timestamp at least
        // this (or is pending).
        let oldest = *bounds.last().expect("bounds are non-empty");
        let t_win = chain
            .iter()
            .filter_map(|(_, t)| *t)
            .filter(|t| *t <= oldest)
            .max();
        crate::metrics::mv_chain_len().record(chain.len() as u64);
        // Pass 2: unlink dead versions. `kept` tracks the last kept node,
        // whose `next` skips over everything unlinked since.
        let mut seen_ts: Vec<u64> = Vec::with_capacity(chain.len());
        let mut unlinked = 0u64;
        let mut kept = chain[0].0;
        if let Some(t) = chain[0].1 {
            seen_ts.push(t);
        }
        for &(ptr, stamp) in &chain[1..] {
            let dead = match stamp {
                None => false, // pending: timestamp undecided, always kept
                Some(t) => {
                    // Dead if below every selectable timestamp, or a
                    // chain-newer version with the same timestamp wins
                    // every tie.
                    t_win.is_some_and(|w| t < w) || seen_ts.contains(&t)
                }
            };
            if dead {
                let next = unsafe { &*ptr }.next.load(Ordering::Acquire);
                unsafe { &*kept }.next.store(next, Ordering::Release);
                unlinked += 1;
                // Safety: unlinked above, never retired twice.
                unsafe { epoch::retire(ptr) };
            } else {
                if let Some(t) = stamp {
                    seen_ts.push(t);
                }
                kept = ptr;
            }
        }
        self.pruner.store(false, Ordering::Release);
        crate::metrics::mv_pruned_per_call().record(unlinked);
        if unlinked > 0 {
            crate::metrics::mv_unlinked().add(unlinked);
            crate::metrics::mv_live_versions().sub(unlinked as i64);
            psnap_obs::trace::emit(
                psnap_obs::TraceKind::Prune,
                unlinked,
                (chain.len() as u64).saturating_sub(unlinked),
            );
        }
    }
}

impl<T> Drop for MvRegister<T> {
    fn drop(&mut self) {
        // Exclusive access: free the whole chain directly. Unlinked versions
        // went through `epoch::retire` already and are not reachable from
        // the head.
        let mut cur = *self.head.get_mut();
        let mut freed = 0i64;
        while !cur.is_null() {
            // Safety: exclusively owned chain nodes, freed exactly once.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next.load(Ordering::Relaxed);
            freed += 1;
        }
        crate::metrics::mv_live_versions().sub(freed);
    }
}

impl<T: Send + Sync + 'static + std::fmt::Debug> std::fmt::Debug for MvRegister<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (value, stamp) = self.peek_newest();
        f.debug_struct("MvRegister")
            .field("newest", &value)
            .field("stamp", &stamp)
            .field("chain_len", &self.chain_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepScope;

    fn finalized_install(reg: &MvRegister<u64>, camera: &TimestampCamera, v: u64) -> u64 {
        let stamp = MvStamp::pending_single();
        reg.install(Arc::new(v), stamp.clone());
        stamp.finalize(camera)
    }

    #[test]
    fn initial_version_is_visible_at_every_timestamp() {
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(7u64);
        assert_eq!(*reg.read_at(0, &camera), 7);
        assert_eq!(*reg.read_at(1, &camera), 7);
        assert_eq!(*reg.read_at(u64::MAX >> 3, &camera), 7);
    }

    #[test]
    fn reads_at_older_timestamps_see_older_versions() {
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(0u64);
        let t1 = finalized_install(&reg, &camera, 10);
        let s = camera.tick();
        assert!(s >= t1);
        let t2 = finalized_install(&reg, &camera, 20);
        assert!(t2 > s, "a write after the tick must land above it");
        // A scan announced at `s` still sees the first write; a fresh scan
        // sees the second.
        assert_eq!(*reg.read_at(s, &camera), 10);
        assert_eq!(*reg.read_at(camera.tick(), &camera), 20);
        assert_eq!(reg.chain_len(), 3);
    }

    #[test]
    fn pending_batches_are_skipped_and_their_floor_rises() {
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(0u64);
        finalized_install(&reg, &camera, 1);
        // A batcher parked mid-commit: installed but never finalized.
        let parked = MvStamp::pending_batch();
        reg.install(Arc::new(99), parked.clone());
        let s = camera.tick();
        assert_eq!(
            *reg.read_at(s, &camera),
            1,
            "pending batch must be stepped over, not finalized"
        );
        assert_eq!(parked.peek(), None, "scans must not finalize a batch");
        // The skip raised the floor: the eventual finalize lands above `s`.
        let t = parked.finalize(&camera);
        assert!(
            t > s,
            "finalize below a skipped scan's timestamp: {t} <= {s}"
        );
        // And a scan that ticks after the finalize sees the version.
        assert_eq!(*reg.read_at(camera.tick(), &camera), 99);
    }

    #[test]
    fn pending_singles_are_help_finalized_above_the_reader() {
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(0u64);
        finalized_install(&reg, &camera, 1);
        // A single writer parked between install and finalize.
        let parked = MvStamp::pending_single();
        reg.install(Arc::new(50), parked.clone());
        let s = camera.tick();
        assert_eq!(*reg.read_at(s, &camera), 1, "helped version lands above s");
        // The reader finalized it — above its own timestamp.
        let t = parked.peek().expect("reader must help-finalize singles");
        assert!(t > s);
        // The parked writer's own finalize just observes the helped value.
        assert_eq!(parked.finalize(&camera), t);
        assert_eq!(*reg.read_at(camera.tick(), &camera), 50);
    }

    #[test]
    fn late_finalized_versions_win_the_scans_their_timestamp_entitles() {
        // The torn-batch regression, at the register level: a version
        // buried under a chain-newer version with a *smaller* timestamp
        // must still win scans at or above its own timestamp — selection is
        // by timestamp, not by chain position.
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(0u64);
        let batch = MvStamp::pending_batch();
        reg.install(Arc::new(10), batch.clone()); // pending, will finalize late
        finalized_install(&reg, &camera, 5); // chain-newer, t = 1
        let s1 = camera.tick();
        assert_eq!(*reg.read_at(s1, &camera), 5, "pending batch excluded");
        let t_batch = batch.finalize(&camera);
        assert!(t_batch > s1, "floor forced the batch above the first scan");
        // A scan at or above the batch's timestamp selects the batch even
        // though the single's version is newer in the chain.
        let s2 = camera.tick();
        assert_eq!(*reg.read_at(s2, &camera), 10);
        // And the old scan's answer is unchanged.
        assert_eq!(*reg.read_at(s1, &camera), 5);
    }

    #[test]
    fn equal_timestamps_resolve_to_the_chain_newest_version() {
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(0u64);
        finalized_install(&reg, &camera, 1);
        finalized_install(&reg, &camera, 2); // same camera value: same t
        assert_eq!(*reg.read_at(camera.timestamp(), &camera), 2);
    }

    #[test]
    fn finalize_is_idempotent_and_shared_across_clones() {
        let camera = TimestampCamera::new();
        let stamp = MvStamp::pending_batch();
        let clone = stamp.clone();
        let t = stamp.finalize(&camera);
        assert_eq!(clone.finalize(&camera), t);
        assert_eq!(clone.peek(), Some(t));
    }

    #[test]
    fn try_install_fails_only_against_a_concurrent_winner() {
        let reg = MvRegister::new(0u64);
        assert!(reg.try_install(Arc::new(1), MvStamp::finalized(1)).is_ok());
        assert!(reg.try_install(Arc::new(2), MvStamp::finalized(1)).is_ok());
        assert_eq!(reg.chain_len(), 3);
    }

    #[test]
    fn resolve_winner_publishes_singles_and_defers_to_batches() {
        let camera = TimestampCamera::new();
        // A finalized winner resolves immediately.
        let done = MvStamp::finalized(3);
        assert_eq!(done.resolve_winner(&camera), Some(3));
        // A pending single winner is published on the spot (the loser's
        // drop is then linearizable: the publication is inside its
        // interval).
        let single = MvStamp::pending_single();
        let t = single.resolve_winner(&camera).expect("single published");
        assert_eq!(single.peek(), Some(t));
        // A pending batch winner cannot be published by the loser.
        let batch = MvStamp::pending_batch();
        assert_eq!(batch.resolve_winner(&camera), None);
        assert_eq!(batch.peek(), None);
    }

    #[test]
    fn prune_keeps_one_version_per_live_bound() {
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(0u64);
        // Interleave writes with camera ticks so versions span timestamps.
        let mut held: Vec<(u64, u64)> = Vec::new(); // (bound, expected value)
        for i in 1..=20u64 {
            finalized_install(&reg, &camera, i);
            if i % 5 == 0 {
                let s = camera.tick();
                held.push((s, i));
            }
        }
        let mut bounds: Vec<u64> = held.iter().map(|(s, _)| *s).collect();
        bounds.push(camera.timestamp());
        bounds.sort_unstable_by(|a, b| b.cmp(a));
        bounds.dedup();
        reg.prune(&bounds);
        // One version per bound at most (all finalized, nothing pending).
        assert!(
            reg.chain_len() <= bounds.len(),
            "chain {} > bounds {}",
            reg.chain_len(),
            bounds.len()
        );
        // Every held bound still reads the value it could see before.
        for &(s, expected) in &held {
            assert_eq!(
                *reg.read_at(s, &camera),
                expected,
                "bound {s} lost its version"
            );
        }
        assert_eq!(*reg.read_at(camera.timestamp(), &camera), 20);
    }

    #[test]
    fn prune_without_announcements_keeps_only_the_newest() {
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(0u64);
        for i in 1..=50u64 {
            finalized_install(&reg, &camera, i);
            reg.prune(&[camera.timestamp()]);
        }
        assert_eq!(reg.chain_len(), 1);
        assert_eq!(*reg.read_at(camera.timestamp(), &camera), 50);
    }

    #[test]
    fn prune_keeps_pending_versions_above_the_kept_cut() {
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(0u64);
        finalized_install(&reg, &camera, 1);
        finalized_install(&reg, &camera, 3);
        // A batcher parked mid-commit: its pending version sits at the head.
        let parked = MvStamp::pending_batch();
        reg.install(Arc::new(2), parked.clone());
        reg.prune(&[camera.timestamp()]);
        // The pending version and the newest finalized one survive (1 was a
        // same-timestamp tie-loser to 3 and is gone).
        assert_eq!(reg.chain_len(), 2);
        let t = parked.finalize(&camera);
        assert_eq!(*reg.read_at(camera.tick(), &camera), 2);
        assert!(t >= 1);
    }

    #[test]
    fn prune_never_drops_pending_versions() {
        // A pending batch version below a finalized one: its timestamp is
        // undecided, so pruning must keep it — when it finalizes late, its
        // (larger) timestamp wins the scans that tick after it.
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(0u64);
        let parked = MvStamp::pending_batch();
        reg.install(Arc::new(99), parked.clone());
        finalized_install(&reg, &camera, 3);
        reg.prune(&[camera.timestamp()]);
        assert_eq!(reg.chain_len(), 2, "the pending version must survive");
        let s1 = camera.tick();
        assert_eq!(*reg.read_at(s1, &camera), 3);
        let t = parked.finalize(&camera);
        assert!(t > s1);
        assert_eq!(*reg.read_at(camera.tick(), &camera), 99);
    }

    #[test]
    fn cutover_bounds_every_later_finalize_from_below() {
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(0u64);
        let t_before = finalized_install(&reg, &camera, 1);
        let boundary = camera.cutover();
        assert!(
            t_before < boundary,
            "pre-cutover version above the boundary"
        );
        let t_after = finalized_install(&reg, &camera, 2);
        assert!(
            t_after >= boundary,
            "post-cutover finalize {t_after} below the boundary {boundary}"
        );
    }

    #[test]
    fn stamped_reads_report_the_winning_timestamp() {
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(0u64);
        let t1 = finalized_install(&reg, &camera, 10);
        let s = camera.tick();
        let (t, v) = reg.read_at_stamped(s, &camera);
        assert_eq!((t, *v), (t1, 10));
        let (t0, v0) = reg.read_at_stamped(0, &camera);
        assert_eq!((t0, *v0), (0, 0), "initial version carries timestamp 0");
    }

    #[test]
    fn finalized_versions_come_out_oldest_first_and_reinstall_faithfully() {
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(0u64);
        let mut expected = vec![(0u64, 0u64)];
        for v in [7u64, 8, 9] {
            camera.tick();
            expected.push((finalized_install(&reg, &camera, v), v));
        }
        // A parked batch must be skipped: its timestamp is undecided.
        reg.install(Arc::new(99), MvStamp::pending_batch());
        let versions = reg.finalized_versions();
        let got: Vec<(u64, u64)> = versions.iter().map(|(t, v)| (*t, **v)).collect();
        assert_eq!(got, expected);
        // Re-installing oldest-first into a fresh register reproduces every
        // read the source could answer (the migration copy's contract).
        let copy = MvRegister::new(0u64);
        for (t, v) in &versions {
            copy.install(Arc::clone(v), MvStamp::finalized(*t));
        }
        for s in 0..=camera.timestamp() {
            assert_eq!(
                *copy.read_at(s, &camera),
                *reg.read_at(s, &camera),
                "copy diverges at timestamp {s}"
            );
        }
    }

    #[test]
    fn quiescent_read_is_a_constant_handful_of_steps() {
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(0u64);
        finalized_install(&reg, &camera, 5);
        reg.prune(&[camera.timestamp()]);
        let scope = StepScope::start();
        let v = reg.read_at(camera.timestamp(), &camera);
        let steps = scope.finish();
        assert_eq!(*v, 5);
        // Camera read + head read + one stamp read + the hop to the end of
        // the single-version chain.
        assert!(steps.total() <= 4, "quiescent read took {steps}");
    }

    #[test]
    fn concurrent_writers_and_timestamp_readers_never_tear() {
        // Readers follow the announce discipline of the higher layers:
        // publish an announcement *before* drawing the timestamp, so the
        // writers' prune bounds always cover the versions a reader may
        // still select. A bare `read_at` with an unannounced timestamp has
        // no such protection — that is the announcement's whole job.
        use std::sync::atomic::AtomicBool;
        let camera = Arc::new(TimestampCamera::new());
        let reg = Arc::new(MvRegister::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let announce: Arc<Vec<AtomicU64>> = Arc::new((0..3).map(|_| AtomicU64::new(0)).collect());
        std::thread::scope(|scope| {
            for w in 0..3u64 {
                let reg = Arc::clone(&reg);
                let camera = Arc::clone(&camera);
                let stop = Arc::clone(&stop);
                let announce = Arc::clone(&announce);
                scope.spawn(move || {
                    let mut i = w;
                    while !stop.load(Ordering::Relaxed) {
                        let stamp = MvStamp::pending_single();
                        reg.install(Arc::new((i, i.wrapping_mul(31))), stamp.clone());
                        stamp.finalize(&camera);
                        // Camera first, then the announcement sweep — the
                        // pruner-side ordering the safety argument needs.
                        let mut bounds = vec![camera.timestamp()];
                        for slot in announce.iter() {
                            let a = slot.load(Ordering::SeqCst);
                            if a != 0 {
                                bounds.push(a);
                            }
                        }
                        bounds.sort_unstable_by(|a, b| b.cmp(a));
                        bounds.dedup();
                        reg.prune(&bounds);
                        i += 3;
                    }
                });
            }
            for r in 0..3usize {
                let reg = Arc::clone(&reg);
                let camera = Arc::clone(&camera);
                let stop = Arc::clone(&stop);
                let announce = Arc::clone(&announce);
                scope.spawn(move || {
                    for _ in 0..5_000 {
                        announce[r].store(camera.timestamp(), Ordering::SeqCst);
                        let s = camera.tick();
                        let v = reg.read_at(s, &camera);
                        let (a, b) = *v;
                        assert_eq!(b, a.wrapping_mul(31), "torn multiversion read");
                        announce[r].store(0, Ordering::SeqCst);
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
        });
    }
}
