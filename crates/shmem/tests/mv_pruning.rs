//! Property-based tests for `MvRegister` chain pruning.
//!
//! The contract under test (the bound the multiversioned scan path's memory
//! footprint rests on): after any sequence of overwrites, camera ticks and
//! prunes, with any set of concurrently announced ("pinned") scan
//! timestamps,
//!
//! * the chain holds at most one finalized version per live bound — so its
//!   length is bounded by the number of pinned readers **plus one** (the
//!   camera's own bound), plus any still-pending versions;
//! * no version a pinned reader can still select is ever freed: `read_at`
//!   at every announced timestamp returns exactly the value the sequential
//!   model predicts, with its payload intact (drop-counting payloads, as in
//!   `reclamation.rs`);
//! * every version the model declares dead is actually reclaimed once the
//!   epoch machinery flushes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use psnap_shmem::{epoch, MvRegister, MvStamp, TimestampCamera};

/// Increments a counter when dropped; `verify` checks payload integrity so
/// a version freed while reachable shows up as corruption, not silence.
struct Payload {
    tag: u64,
    check: u64,
    drops: Arc<AtomicUsize>,
}

impl Payload {
    fn new(tag: u64, drops: &Arc<AtomicUsize>) -> Self {
        Payload {
            tag,
            check: tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            drops: Arc::clone(drops),
        }
    }

    fn verify(&self) {
        assert_eq!(
            self.check,
            self.tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            "payload corrupted — a version was reclaimed while reachable"
        );
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        self.verify();
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

/// One scripted step of the sequential model run.
#[derive(Clone, Debug)]
enum Step {
    /// Overwrite the register (finalized immediately).
    Write,
    /// A reader pins: announce at the camera's current value, then tick —
    /// the scan protocol, with the reader then holding its timestamp for
    /// the rest of the run ("concurrently pinned"). Every camera advance
    /// belongs to a live pin, which is what makes the `pins + 1` bound
    /// exact: the pruner must keep the whole descending stamp frontier
    /// above the oldest announcement (a stale announcement is
    /// indistinguishable from a slow scan whose timestamp landed higher),
    /// and with all ticks pinned that frontier is one version per pin.
    Pin,
    /// Prune with the live announcements plus the camera as bounds.
    Prune,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // The vendored `prop_oneof!` is uniform; duplicate entries weight the
    // mix towards writes (4 : 1 : 2).
    prop_oneof![
        Just(Step::Write),
        Just(Step::Write),
        Just(Step::Write),
        Just(Step::Write),
        Just(Step::Pin),
        Just(Step::Prune),
        Just(Step::Prune),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline bound: chain length ≤ live pins + 1 after a prune (all
    /// versions finalized, none pending), and every pinned reader still
    /// reads exactly the value the sequential model predicts.
    #[test]
    fn chain_is_bounded_by_live_pins_plus_one_and_pinned_versions_survive(
        script in proptest::collection::vec(step_strategy(), 1..120),
        pending_writers in 0usize..3,
    ) {
        let drops = Arc::new(AtomicUsize::new(0));
        let camera = TimestampCamera::new();
        let reg = MvRegister::new(Payload::new(0, &drops));
        let mut installs = 1u64; // the initial version
        let mut next_tag = 1u64;
        // Sequential model: (timestamp, tag) of every finalized write, in
        // install order; plus the camera bounds pinned readers announced.
        let mut history: Vec<(u64, u64)> = vec![(0, 0)];
        let mut pins: Vec<u64> = Vec::new();
        let mut last_value = 0u64;
        for step in &script {
            match step {
                Step::Write => {
                    let stamp = MvStamp::pending_single();
                    reg.install(Arc::new(Payload::new(next_tag, &drops)), stamp.clone());
                    let t = stamp.finalize(&camera);
                    history.push((t, next_tag));
                    last_value = next_tag;
                    next_tag += 1;
                    installs += 1;
                }
                Step::Pin => {
                    // Announce-before-tick order of the real protocol; run
                    // sequentially the announce equals the drawn timestamp.
                    let a = camera.timestamp();
                    let s = camera.tick();
                    assert_eq!(a, s, "sequential model: announce == timestamp");
                    pins.push(a);
                }
                Step::Prune => {
                    let mut bounds = pins.clone();
                    bounds.push(camera.timestamp());
                    bounds.sort_unstable_by(|a, b| b.cmp(a));
                    bounds.dedup();
                    reg.prune(&bounds);
                    // All versions are finalized, so the chain holds at
                    // most one version per bound: live pins + 1.
                    prop_assert!(
                        reg.chain_len() <= pins.len() + 1,
                        "chain {} > pins {} + 1",
                        reg.chain_len(),
                        pins.len()
                    );
                }
            }
            // Invariant after every step: each pinned reader still selects
            // the newest version at or below its pin, and the payload is
            // intact (verify() panics on a freed-and-rewritten record).
            for &pin in &pins {
                let expected = history
                    .iter()
                    .filter(|(t, _)| *t <= pin)
                    .map(|(_, tag)| *tag)
                    .next_back()
                    .expect("timestamp 0 is always available");
                let got = reg.read_at(pin, &camera);
                got.verify();
                prop_assert_eq!(got.tag, expected, "pin {} read the wrong version", pin);
            }
        }
        // Park some writers mid-update: pending versions must survive the
        // final prune (they are above every finalized version), on top of
        // the pins+1 bound.
        let parked: Vec<MvStamp> = (0..pending_writers)
            .map(|k| {
                let stamp = MvStamp::pending_batch();
                reg.install(Arc::new(Payload::new(1_000 + k as u64, &drops)), stamp.clone());
                installs += 1;
                stamp
            })
            .collect();
        let mut bounds = pins.clone();
        bounds.push(camera.timestamp());
        bounds.sort_unstable_by(|a, b| b.cmp(a));
        bounds.dedup();
        reg.prune(&bounds);
        prop_assert!(
            reg.chain_len() <= pins.len() + 1 + pending_writers,
            "chain {} > pins {} + 1 + pending {}",
            reg.chain_len(),
            pins.len(),
            pending_writers
        );
        // Pinned readers still see their versions with the batch parked.
        for &pin in &pins {
            let expected = history
                .iter()
                .filter(|(t, _)| *t <= pin)
                .map(|(_, tag)| *tag)
                .next_back()
                .expect("timestamp 0 is always available");
            prop_assert_eq!(reg.read_at(pin, &camera).tag, expected);
        }
        // Commit the parked writers so the final accounting is closed.
        for stamp in &parked {
            stamp.finalize(&camera);
        }
        let _ = last_value;
        // Reclamation accounting: everything the chain no longer holds must
        // eventually drop — and nothing more. `drops + chain_len` must
        // converge to the total number of installs once the epochs flush.
        let deadline = Instant::now() + Duration::from_secs(30);
        let expected_dead = installs as usize - reg.chain_len();
        while drops.load(Ordering::SeqCst) < expected_dead {
            epoch::flush();
            prop_assert!(
                Instant::now() < deadline,
                "pruned versions were not reclaimed: {} of {} freed",
                drops.load(Ordering::SeqCst),
                expected_dead
            );
            std::thread::yield_now();
        }
        prop_assert_eq!(
            drops.load(Ordering::SeqCst) + reg.chain_len(),
            installs as usize,
            "reclaimed more versions than were pruned"
        );
    }
}

/// The observability satellite of the pruning contract: the process-global
/// `shmem.mv.*` metrics must account this test's installs, its prune's
/// observed chain length and its unlinks. Other tests in this binary hit
/// the same global handles concurrently, so every assertion is a monotone
/// (`>=`) delta or a value this test alone can only push upward — never an
/// exact equality a parallel test could falsify.
#[test]
fn prune_metrics_account_chain_length_and_unlinks() {
    use psnap_shmem::metrics;
    let installed_before = metrics::mv_installed().get();
    let unlinked_before = metrics::mv_unlinked().get();
    let chain_before = metrics::mv_chain_len().snapshot();
    let pruned_before = metrics::mv_pruned_per_call().snapshot();

    let camera = TimestampCamera::new();
    let reg = MvRegister::new(0u64);
    const WRITES: u64 = 50;
    for tag in 1..=WRITES {
        let stamp = MvStamp::pending_single();
        reg.install(Arc::new(tag), stamp.clone());
        stamp.finalize(&camera);
    }
    assert_eq!(reg.chain_len() as u64, WRITES + 1);
    // No pinned readers: the camera is the only live bound, so an effective
    // prune keeps exactly one finalized version — the efficiency half of
    // the headline `pins + 1` bound.
    reg.prune(&[camera.timestamp()]);
    assert_eq!(
        reg.chain_len(),
        1,
        "one bound must keep exactly one version"
    );

    assert!(
        metrics::mv_installed().get() - installed_before >= WRITES,
        "every install must be counted"
    );
    assert!(
        metrics::mv_unlinked().get() - unlinked_before >= WRITES,
        "the prune unlinked {WRITES} versions"
    );
    let chain = metrics::mv_chain_len().snapshot();
    assert!(
        chain.count > chain_before.count,
        "an effective prune records the chain length it found"
    );
    assert!(
        chain.max > WRITES,
        "the histogram saw this test's {}-long chain (max {})",
        WRITES + 1,
        chain.max
    );
    let pruned = metrics::mv_pruned_per_call().snapshot();
    assert!(pruned.count > pruned_before.count);
    assert!(
        pruned.max >= WRITES,
        "the histogram saw this test's {WRITES}-version prune (max {})",
        pruned.max
    );
    // The live-version gauge still covers this register's surviving chain:
    // nothing else can decrement our contribution.
    assert!(metrics::mv_live_versions().get() >= reg.chain_len() as i64);
}

/// Concurrent companion to the proptest: writers overwrite and prune while
/// readers hold announced timestamps and re-read them, with payload
/// verification on every read — the racy version of "no pinned version is
/// freed".
#[test]
fn concurrent_pinned_readers_never_lose_their_versions() {
    use std::sync::atomic::AtomicBool;
    let drops = Arc::new(AtomicUsize::new(0));
    let camera = Arc::new(TimestampCamera::new());
    let reg = Arc::new(MvRegister::new(Payload::new(0, &drops)));
    let stop = Arc::new(AtomicBool::new(false));
    // Announcement slots the pruner respects, exactly as MvSnapshot wires
    // them: readers publish before drawing their timestamp.
    let announce: Arc<Vec<std::sync::atomic::AtomicU64>> = Arc::new(
        (0..3)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect(),
    );

    std::thread::scope(|scope| {
        for w in 0..2u64 {
            let reg = Arc::clone(&reg);
            let camera = Arc::clone(&camera);
            let drops = Arc::clone(&drops);
            let stop = Arc::clone(&stop);
            let announce = Arc::clone(&announce);
            scope.spawn(move || {
                let mut tag = 1 + w;
                while !stop.load(Ordering::Relaxed) {
                    let stamp = MvStamp::pending_single();
                    reg.install(Arc::new(Payload::new(tag, &drops)), stamp.clone());
                    stamp.finalize(&camera);
                    // Camera first, then the announcement sweep — the
                    // pruner-side ordering the safety argument needs.
                    let mut bounds = vec![camera.timestamp()];
                    for slot in announce.iter() {
                        let a = slot.load(Ordering::SeqCst);
                        if a != 0 {
                            bounds.push(a);
                        }
                    }
                    bounds.sort_unstable_by(|a, b| b.cmp(a));
                    bounds.dedup();
                    reg.prune(&bounds);
                    tag += 2;
                }
            });
        }
        for r in 0..3usize {
            let reg = Arc::clone(&reg);
            let camera = Arc::clone(&camera);
            let stop = Arc::clone(&stop);
            let announce = Arc::clone(&announce);
            scope.spawn(move || {
                for _ in 0..3_000 {
                    announce[r].store(camera.timestamp(), Ordering::SeqCst);
                    let s = camera.tick();
                    // Re-read the same timestamp several times while the
                    // announcement is live: the answer must be stable and
                    // intact despite concurrent pruning.
                    let first = reg.read_at(s, &camera);
                    first.verify();
                    for _ in 0..3 {
                        let again = reg.read_at(s, &camera);
                        again.verify();
                        assert_eq!(
                            again.tag, first.tag,
                            "announced timestamp changed its answer mid-scan"
                        );
                    }
                    announce[r].store(0, Ordering::SeqCst);
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });
}
