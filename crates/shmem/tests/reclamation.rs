//! Reclamation-safety stress tests for the lock-free `VersionedCell`.
//!
//! The dangerous schedules for epoch reclamation are (a) a reader that holds
//! a `Versioned` handle across thousands of overwrites while collection runs
//! underneath it, and (b) readers parked *inside a pinned epoch* while
//! writers churn records — the pin must block reclamation of everything the
//! reader could still dereference, and release it promptly afterwards. These
//! tests drive both, with and without the chaos scheduler.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use psnap_shmem::chaos::{self, ChaosConfig};
use psnap_shmem::{epoch, VersionedCell};

/// Increments a counter when dropped; carries a payload whose integrity the
/// tests check after the record that held it has been retired and collected.
struct Payload {
    tag: u64,
    check: u64,
    drops: Arc<AtomicUsize>,
}

impl Payload {
    fn new(tag: u64, drops: &Arc<AtomicUsize>) -> Self {
        Payload {
            tag,
            check: tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            drops: Arc::clone(drops),
        }
    }

    fn verify(&self) {
        assert_eq!(
            self.check,
            self.tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            "payload corrupted — a record was reclaimed while reachable"
        );
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        self.verify();
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

/// The concurrent extension of the unit test `values_survive_overwrite`: a
/// handle obtained once stays intact while writer threads overwrite the cell
/// thousands of times and epoch collection reclaims the displaced records.
#[test]
fn long_lived_handle_survives_concurrent_overwrites_and_collection() {
    const WRITERS: usize = 4;
    const OVERWRITES: u64 = 5_000;
    let drops = Arc::new(AtomicUsize::new(0));
    let cell = Arc::new(VersionedCell::new(Payload::new(0, &drops)));
    let early = cell.load();

    std::thread::scope(|scope| {
        for w in 0..WRITERS as u64 {
            let cell = Arc::clone(&cell);
            let drops = Arc::clone(&drops);
            scope.spawn(move || {
                for i in 0..OVERWRITES {
                    cell.store(Payload::new(w * OVERWRITES + i + 1, &drops));
                    if i % 512 == 0 {
                        // Mid-churn handles must also stay valid while held.
                        let v = cell.load();
                        v.value().verify();
                    }
                }
            });
        }
        // The long-lived reader keeps validating its original handle the
        // whole time — the record it came from is retired almost instantly.
        for _ in 0..1_000 {
            early.value().verify();
            assert_eq!(early.value().tag, 0);
            std::thread::yield_now();
        }
    });

    early.value().verify();
    // Quiesce: everything retired must eventually be freed (all writer
    // threads have exited; their leftovers drain through the orphan list).
    let total = WRITERS as u64 * OVERWRITES;
    let expect_freed = total as usize - 1; // current record still installed
    let deadline = Instant::now() + Duration::from_secs(60);
    while drops.load(Ordering::SeqCst) < expect_freed {
        epoch::flush();
        assert!(
            Instant::now() < deadline,
            "reclamation stalled: {}/{} payloads freed",
            drops.load(Ordering::SeqCst),
            expect_freed
        );
        std::thread::yield_now();
    }
    assert_eq!(drops.load(Ordering::SeqCst), expect_freed);
    drop(early);
}

/// Chaos schedule: readers park inside pinned epochs (stalling reclamation
/// process-wide) while writers churn. Every observed record must be intact,
/// and once the chaos readers stop, reclamation must catch up.
#[test]
fn chaos_parked_pinned_readers_never_observe_freed_records() {
    const READERS: usize = 3;
    const WRITERS: usize = 2;
    const OVERWRITES: u64 = 2_000;
    let drops = Arc::new(AtomicUsize::new(0));
    let cell = Arc::new(VersionedCell::new(Payload::new(0, &drops)));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for r in 0..READERS {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                // Park inside pinned epochs often: reclamation must stall
                // rather than free records a parked reader may still hold.
                let _chaos = chaos::enable(0xEC40 + r as u64, ChaosConfig::reclamation());
                while !stop.load(Ordering::Relaxed) {
                    // Every observed record must be fully intact: a reclaimed
                    // record would fail the checksum (or crash) here.
                    let v = cell.load();
                    v.value().verify();
                }
            });
        }
        for w in 0..WRITERS as u64 {
            let cell = Arc::clone(&cell);
            let drops = Arc::clone(&drops);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let _chaos = chaos::enable(0xEC90 + w, ChaosConfig::reclamation());
                for i in 0..OVERWRITES {
                    let expected = cell.load();
                    expected.value().verify();
                    let next = Payload::new(w * OVERWRITES + i + 1, &drops);
                    // Mix stores and CASes so both retire paths run under
                    // the parked pins.
                    if i % 2 == 0 {
                        cell.store(next);
                    } else {
                        let _ = cell.compare_and_swap(&expected, next);
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });

    // With all pins released, collection must drain everything but the
    // currently installed record: every writer created one payload per
    // iteration (failed CASes drop theirs immediately, displaced records go
    // through the epoch machinery), so all but one of the `WRITERS *
    // OVERWRITES` payloads must eventually be dropped.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        epoch::flush();
        let freed = drops.load(Ordering::SeqCst);
        let installed = 1;
        if freed + installed >= WRITERS * OVERWRITES as usize {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "reclamation did not catch up after chaos run ({freed} freed)"
        );
        std::thread::yield_now();
    }
}

/// A reader parked inside one explicit pin must block reclamation of every
/// record retired while it is pinned — and only until it unpins.
#[test]
fn explicit_pin_blocks_and_releases_reclamation() {
    let drops = Arc::new(AtomicUsize::new(0));
    let cell = Arc::new(VersionedCell::new(Payload::new(0, &drops)));

    let ready = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let reader = {
        let cell = Arc::clone(&cell);
        let ready = Arc::clone(&ready);
        let release = Arc::clone(&release);
        std::thread::spawn(move || {
            let guard = epoch::pin();
            let v = cell.load();
            ready.store(true, Ordering::SeqCst);
            while !release.load(Ordering::SeqCst) {
                // Parked inside the pin: the loaded handle (and any record
                // the thread could still reach) must stay valid.
                v.value().verify();
                std::hint::spin_loop();
            }
            drop(guard);
        })
    };
    while !ready.load(Ordering::SeqCst) {
        std::hint::spin_loop();
    }

    // Churn while the reader is parked pinned. Collection may free records
    // from *before* the pin settled, but the payloads must all stay intact —
    // `Payload::drop` itself verifies integrity on every reclamation.
    for i in 0..3_000u64 {
        cell.store(Payload::new(i + 1, &drops));
    }
    for _ in 0..20 {
        epoch::flush();
    }

    release.store(true, Ordering::SeqCst);
    reader.join().unwrap();

    let deadline = Instant::now() + Duration::from_secs(60);
    while drops.load(Ordering::SeqCst) < 3_000 {
        epoch::flush();
        assert!(
            Instant::now() < deadline,
            "garbage retained after the pinned reader released"
        );
        std::thread::yield_now();
    }
}
