//! The stock-portfolio workload from the paper's introduction.
//!
//! "Consider the problem of computing the total assets of a stock portfolio by
//! checking the value of each stock one by one, while, concurrently, the
//! values of the stocks are fluctuating […]. The result might exceed the
//! maximum value the portfolio had at any time during the day if each stock is
//! checked when it is at its peak value for the day."
//!
//! This module generates that scenario: a market of `m` stocks whose prices
//! follow bounded random walks, and a set of portfolios, each holding a small
//! number of stocks. The snapshot object stores one component per stock;
//! valuing a portfolio is a partial scan of its holdings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::IndexDist;

/// Configuration of a market workload.
#[derive(Clone, Debug)]
pub struct MarketConfig {
    /// Number of stocks (components of the snapshot object).
    pub stocks: usize,
    /// Initial price of every stock, in cents.
    pub initial_price: u64,
    /// Maximum per-tick price change, in cents.
    pub max_tick: u64,
    /// Number of portfolios to generate.
    pub portfolios: usize,
    /// Holdings per portfolio.
    pub holdings_per_portfolio: usize,
    /// Zipf skew of stock popularity (0 = uniform).
    pub popularity_skew: f64,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            stocks: 1024,
            initial_price: 10_000,
            max_tick: 50,
            portfolios: 64,
            holdings_per_portfolio: 8,
            popularity_skew: 0.8,
        }
    }
}

/// A portfolio: which stocks it holds and how many shares of each.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Portfolio {
    /// `(stock index, number of shares)`, sorted by stock index, no duplicates.
    pub holdings: Vec<(usize, u64)>,
}

impl Portfolio {
    /// The component indices this portfolio needs a consistent view of.
    pub fn components(&self) -> Vec<usize> {
        self.holdings.iter().map(|(s, _)| *s).collect()
    }

    /// Values the portfolio given the prices of its holdings (in the order of
    /// [`Portfolio::components`]).
    pub fn value(&self, prices: &[u64]) -> u64 {
        assert_eq!(prices.len(), self.holdings.len());
        self.holdings
            .iter()
            .zip(prices.iter())
            .map(|((_, shares), price)| shares * price)
            .sum()
    }
}

/// A generated market workload.
#[derive(Clone, Debug)]
pub struct Market {
    /// The configuration it was generated from.
    pub config: MarketConfig,
    /// The portfolios querying the market.
    pub portfolios: Vec<Portfolio>,
}

impl Market {
    /// Generates a market deterministically from a seed.
    pub fn generate(config: MarketConfig, seed: u64) -> Self {
        assert!(config.stocks > 0);
        assert!(config.holdings_per_portfolio > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = IndexDist::zipf(config.stocks, config.popularity_skew);
        let portfolios = (0..config.portfolios)
            .map(|_| {
                let stocks = dist.sample_set(&mut rng, config.holdings_per_portfolio);
                Portfolio {
                    holdings: stocks
                        .into_iter()
                        .map(|s| (s, rng.gen_range(1..=100u64)))
                        .collect(),
                }
            })
            .collect();
        Market { config, portfolios }
    }

    /// A deterministic price tick stream: an infinite iterator of
    /// `(stock, new_price)` pairs forming bounded random walks that never go
    /// below 1 cent.
    pub fn price_ticks(&self, seed: u64) -> PriceTicks {
        PriceTicks {
            rng: StdRng::seed_from_u64(seed),
            prices: vec![self.config.initial_price; self.config.stocks],
            max_tick: self.config.max_tick,
        }
    }
}

/// Infinite stream of price updates (see [`Market::price_ticks`]).
#[derive(Clone, Debug)]
pub struct PriceTicks {
    rng: StdRng,
    prices: Vec<u64>,
    max_tick: u64,
}

impl Iterator for PriceTicks {
    type Item = (usize, u64);

    fn next(&mut self) -> Option<(usize, u64)> {
        let stock = self.rng.gen_range(0..self.prices.len());
        let delta = self.rng.gen_range(0..=self.max_tick) as i64;
        let sign = if self.rng.gen_bool(0.5) { 1 } else { -1 };
        let current = self.prices[stock] as i64;
        let new_price = (current + sign * delta).max(1) as u64;
        self.prices[stock] = new_price;
        Some((stock, new_price))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = MarketConfig::default();
        let a = Market::generate(cfg.clone(), 42);
        let b = Market::generate(cfg, 42);
        assert_eq!(a.portfolios, b.portfolios);
    }

    #[test]
    fn portfolios_have_requested_shape() {
        let cfg = MarketConfig {
            stocks: 100,
            portfolios: 20,
            holdings_per_portfolio: 5,
            ..Default::default()
        };
        let market = Market::generate(cfg, 1);
        assert_eq!(market.portfolios.len(), 20);
        for p in &market.portfolios {
            assert_eq!(p.holdings.len(), 5);
            let comps = p.components();
            let mut sorted = comps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(comps, sorted, "holdings must be sorted and distinct");
            assert!(comps.iter().all(|&s| s < 100));
            assert!(p.holdings.iter().all(|(_, shares)| *shares >= 1));
        }
    }

    #[test]
    fn portfolio_value_is_dot_product() {
        let p = Portfolio {
            holdings: vec![(0, 2), (5, 3)],
        };
        assert_eq!(p.value(&[100, 10]), 230);
    }

    #[test]
    fn price_ticks_stay_positive_and_bounded() {
        let market = Market::generate(
            MarketConfig {
                stocks: 4,
                initial_price: 10,
                max_tick: 5,
                ..Default::default()
            },
            3,
        );
        let mut prices = [10u64; 4];
        for (stock, price) in market.price_ticks(9).take(10_000) {
            assert!(price >= 1);
            let old = prices[stock];
            let diff = price.abs_diff(old);
            assert!(diff <= 5 || old <= 5, "tick jumped by {diff}");
            prices[stock] = price;
        }
    }

    #[test]
    fn price_ticks_are_deterministic_per_seed() {
        let market = Market::generate(MarketConfig::default(), 0);
        let a: Vec<_> = market.price_ticks(7).take(100).collect();
        let b: Vec<_> = market.price_ticks(7).take(100).collect();
        let c: Vec<_> = market.price_ticks(8).take(100).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
