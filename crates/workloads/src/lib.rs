//! Workload generation for the partial snapshot experiments.
//!
//! * [`dist`] — component-selection distributions (uniform, Zipf);
//! * [`mix`] — scanner/updater role mixes;
//! * [`portfolio`] — the stock-portfolio scenario from the paper's
//!   introduction (a market of stocks, portfolios holding a few of them,
//!   price-tick streams);
//! * [`sweep`] — the named parameter sweeps behind the experiment tables in
//!   EXPERIMENTS.md.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dist;
pub mod mix;
pub mod portfolio;
pub mod sweep;

pub use dist::IndexDist;
pub use mix::Mix;
pub use portfolio::{Market, MarketConfig, Portfolio, PriceTicks};
pub use sweep::{
    Sweep, SweepPoint, DEFAULT_M_SWEEP, DEFAULT_R_SWEEP, DEFAULT_SCANNER_SWEEP, DEFAULT_SHARD_SWEEP,
};
