//! Component-selection distributions.
//!
//! Experiments need to choose *which* components a scan touches. Two
//! distributions cover the cases the paper's motivation describes: uniform
//! selection (every component equally likely — the worst case for locality
//! arguments because scans spread over the whole object) and Zipf-like
//! selection (a few hot components attract most of the traffic — the stock
//! portfolio case, where popular stocks appear in many portfolios).

use rand::Rng;

/// A distribution over component indices `0..m`.
#[derive(Clone, Debug)]
pub enum IndexDist {
    /// Every component equally likely.
    Uniform {
        /// Number of components.
        m: usize,
    },
    /// Zipf-like: component `k` (0-based rank) has weight `1 / (k+1)^s`.
    Zipf {
        /// Number of components.
        m: usize,
        /// Skew parameter (`s = 0` is uniform; `s ≈ 1` is classic Zipf).
        s: f64,
        /// Cumulative weights, precomputed at construction.
        cumulative: Vec<f64>,
    },
}

impl IndexDist {
    /// Uniform over `0..m`.
    pub fn uniform(m: usize) -> Self {
        assert!(m > 0);
        IndexDist::Uniform { m }
    }

    /// Zipf with skew `s` over `0..m`.
    pub fn zipf(m: usize, s: f64) -> Self {
        assert!(m > 0);
        assert!(s >= 0.0);
        let mut cumulative = Vec::with_capacity(m);
        let mut total = 0.0f64;
        for k in 0..m {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        IndexDist::Zipf { m, s, cumulative }
    }

    /// Number of components.
    pub fn m(&self) -> usize {
        match self {
            IndexDist::Uniform { m } => *m,
            IndexDist::Zipf { m, .. } => *m,
        }
    }

    /// Samples one component index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        match self {
            IndexDist::Uniform { m } => rng.gen_range(0..*m),
            IndexDist::Zipf { cumulative, .. } => {
                let total = *cumulative.last().expect("m > 0");
                let x = rng.gen_range(0.0..total);
                // Inverse CDF: rank k owns the interval
                // [cumulative[k-1], cumulative[k]], so the right lookup is
                // the first rank whose cumulative weight reaches x
                // (`c < x`, i.e. skip every strictly smaller prefix). The
                // previous `c <= x` comparison pushed a boundary-landing x
                // into the *next* rank — and, because float rounding lets
                // `start + unit * total` round up to exactly `total` even for
                // a half-open range, an x of `total` walked off the end of
                // the table and was silently clamped onto the rarest rank.
                // With `c < x` every representable x (0.0 through total
                // inclusive) maps to a valid rank: the last cumulative entry
                // equals `total`, so the partition point is at most m - 1.
                let index = cumulative.partition_point(|&c| c < x);
                debug_assert!(
                    index < cumulative.len(),
                    "Zipf inverse-CDF landed out of range: x = {x}, total = {total}"
                );
                index
            }
        }
    }

    /// Samples `r` *distinct* component indices (a scan's argument set).
    ///
    /// `r` is capped at `m`. The result is sorted.
    pub fn sample_set<R: Rng>(&self, rng: &mut R, r: usize) -> Vec<usize> {
        let m = self.m();
        let r = r.min(m);
        let mut set = std::collections::BTreeSet::new();
        // Rejection sampling; for r close to m fall back to a shuffle.
        if r * 2 >= m {
            let mut all: Vec<usize> = (0..m).collect();
            use rand::seq::SliceRandom;
            all.shuffle(rng);
            all.truncate(r);
            all.sort_unstable();
            return all;
        }
        while set.len() < r {
            set.insert(self.sample(rng));
        }
        set.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_samples_are_in_range_and_spread() {
        let dist = IndexDist::uniform(16);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 16];
        for _ in 0..16_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(*c > 500, "component {i} sampled only {c} times");
        }
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let dist = IndexDist::zipf(64, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 64];
        for _ in 0..50_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[60]);
        assert!(
            counts[0] > 4 * counts[20],
            "Zipf head must dominate the tail"
        );
    }

    #[test]
    fn zipf_with_zero_skew_is_roughly_uniform() {
        let dist = IndexDist::zipf(8, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 8];
        for _ in 0..8000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(*max < 2 * *min, "counts {counts:?} not roughly uniform");
    }

    #[test]
    fn sample_set_returns_distinct_sorted_indices() {
        let dist = IndexDist::uniform(32);
        let mut rng = StdRng::seed_from_u64(4);
        for r in [1usize, 5, 16, 31, 32, 40] {
            let set = dist.sample_set(&mut rng, r);
            assert_eq!(set.len(), r.min(32));
            let mut sorted = set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(set, sorted, "must be sorted and distinct");
            assert!(set.iter().all(|&c| c < 32));
        }
    }

    #[test]
    fn zipf_frequency_follows_rank_order_at_s_one() {
        // Classic Zipf (s = 1): empirical frequencies must decrease with
        // rank, and the head frequencies must track the 1/(k+1) law within a
        // loose statistical tolerance.
        let m = 16;
        let dist = IndexDist::zipf(m, 1.0);
        let mut rng = StdRng::seed_from_u64(0x21BF);
        let draws = 200_000usize;
        let mut counts = vec![0usize; m];
        for _ in 0..draws {
            counts[dist.sample(&mut rng)] += 1;
        }
        // Strict rank ordering over the head, monotone non-increasing within
        // noise over the tail (adjacent tail ranks differ by little mass, so
        // compare with a 20% slack).
        for k in 0..m - 1 {
            assert!(
                counts[k] as f64 >= counts[k + 1] as f64 * 0.8,
                "rank {k} ({}) fell below rank {} ({})",
                counts[k],
                k + 1,
                counts[k + 1]
            );
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[3] && counts[3] > counts[7]);
        // Expected share of rank k is (1/(k+1)) / H_m.
        let h_m: f64 = (1..=m).map(|k| 1.0 / k as f64).sum();
        for k in [0usize, 1, 3] {
            let expected = draws as f64 / ((k + 1) as f64 * h_m);
            let got = counts[k] as f64;
            assert!(
                (got - expected).abs() < expected * 0.1,
                "rank {k}: got {got}, expected ≈ {expected}"
            );
        }
    }

    #[test]
    fn zipf_boundary_draws_stay_in_range() {
        // Degenerate one- and two-rank distributions exercise the inverse-CDF
        // boundaries (x can land exactly on a cumulative entry, including the
        // total itself after float rounding); every draw must stay in range
        // without clamping.
        for m in [1usize, 2] {
            let dist = IndexDist::zipf(m, 1.0);
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..10_000 {
                assert!(dist.sample(&mut rng) < m);
            }
        }
    }

    #[test]
    fn zipf_sample_set_respects_distribution_support() {
        let dist = IndexDist::zipf(10, 1.2);
        let mut rng = StdRng::seed_from_u64(5);
        let set = dist.sample_set(&mut rng, 4);
        assert_eq!(set.len(), 4);
        assert!(set.iter().all(|&c| c < 10));
    }
}
