//! Parameter sweeps for the experiment harness.
//!
//! Every experiment in EXPERIMENTS.md is a sweep over one axis (object width
//! `m`, scan width `r`, number of scanners, thread mix, …) with everything
//! else held fixed. This module gives those sweeps names and default ranges so
//! the harness, the Criterion benches and the documentation all agree on what
//! is being measured.

use serde::{Deserialize, Serialize};

/// The default values of the object width axis (experiment E1).
pub const DEFAULT_M_SWEEP: &[usize] = &[16, 64, 256, 1024, 4096];

/// The default values of the scan width axis (experiment E2).
pub const DEFAULT_R_SWEEP: &[usize] = &[1, 2, 4, 8, 16, 32];

/// The default values of the concurrent-scanner axis (experiments E3/E4).
pub const DEFAULT_SCANNER_SWEEP: &[usize] = &[0, 1, 2, 4, 6];

/// One point of an experiment: the fixed parameters of a single measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Object width (number of components).
    pub m: usize,
    /// Scan width (components per partial scan).
    pub r: usize,
    /// Number of concurrent updater processes.
    pub updaters: usize,
    /// Number of concurrent scanner processes.
    pub scanners: usize,
    /// Operations measured per process.
    pub ops: usize,
}

impl SweepPoint {
    /// Total number of processes at this point.
    pub fn processes(&self) -> usize {
        self.updaters + self.scanners
    }

    /// A compact label for tables, e.g. `m=1024 r=8 2u/2s`.
    pub fn label(&self) -> String {
        format!(
            "m={} r={} {}u/{}s",
            self.m, self.r, self.updaters, self.scanners
        )
    }
}

/// A named sweep: which axis varies and the points to measure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sweep {
    /// Experiment identifier (e.g. `"E1"`).
    pub id: String,
    /// Human-readable description of what the sweep demonstrates.
    pub description: String,
    /// The measurement points, in presentation order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// E1: fixed `r`, growing `m` — the locality experiment.
    pub fn e1_locality(ops: usize) -> Sweep {
        Sweep {
            id: "E1".into(),
            description: "partial-scan cost vs object width m (r fixed): Figure 3 is local, \
                          full-snapshot baselines are not"
                .into(),
            points: DEFAULT_M_SWEEP
                .iter()
                .map(|&m| SweepPoint {
                    m,
                    r: 8,
                    updaters: 2,
                    scanners: 2,
                    ops,
                })
                .collect(),
        }
    }

    /// E2: fixed `m`, growing `r` — the `O(r²)` worst-case experiment.
    pub fn e2_scan_width(ops: usize) -> Sweep {
        Sweep {
            id: "E2".into(),
            description: "partial-scan cost vs scan width r under update pressure \
                          (Theorem 3: worst case O(r²))"
                .into(),
            points: DEFAULT_R_SWEEP
                .iter()
                .map(|&r| SweepPoint {
                    m: 256,
                    r,
                    updaters: 2,
                    scanners: 1,
                    ops,
                })
                .collect(),
        }
    }

    /// E3: update cost vs number of concurrent scanners and their scan width.
    pub fn e3_update_cost(ops: usize) -> Sweep {
        Sweep {
            id: "E3".into(),
            description: "update cost vs concurrent scanners × rmax \
                          (Theorem 3: amortized O(Cs²·rmax²), independent of m)"
                .into(),
            points: DEFAULT_SCANNER_SWEEP
                .iter()
                .map(|&scanners| SweepPoint {
                    m: 1024,
                    r: 8,
                    updaters: 1,
                    scanners,
                    ops,
                })
                .collect(),
        }
    }

    /// E7: throughput comparison across implementations at several mixes.
    pub fn e7_throughput(ops: usize) -> Sweep {
        Sweep {
            id: "E7".into(),
            description: "cross-implementation throughput at several scanner/updater mixes"
                .into(),
            points: crate::mix::Mix::ladder()
                .into_iter()
                .map(|mix| SweepPoint {
                    m: 512,
                    r: 8,
                    updaters: mix.updaters,
                    scanners: mix.scanners,
                    ops,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_have_labels_and_processes() {
        let p = SweepPoint {
            m: 64,
            r: 4,
            updaters: 2,
            scanners: 3,
            ops: 100,
        };
        assert_eq!(p.processes(), 5);
        assert_eq!(p.label(), "m=64 r=4 2u/3s");
    }

    #[test]
    fn e1_varies_m_only() {
        let s = Sweep::e1_locality(100);
        assert_eq!(s.id, "E1");
        assert_eq!(s.points.len(), DEFAULT_M_SWEEP.len());
        assert!(s.points.windows(2).all(|w| w[0].m < w[1].m));
        assert!(s.points.iter().all(|p| p.r == 8));
    }

    #[test]
    fn e2_varies_r_only() {
        let s = Sweep::e2_scan_width(100);
        assert!(s.points.windows(2).all(|w| w[0].r < w[1].r));
        assert!(s.points.iter().all(|p| p.m == 256));
    }

    #[test]
    fn e3_varies_scanners() {
        let s = Sweep::e3_update_cost(100);
        assert!(s.points.windows(2).all(|w| w[0].scanners < w[1].scanners));
    }

    #[test]
    fn e7_follows_the_mix_ladder() {
        let s = Sweep::e7_throughput(100);
        assert_eq!(s.points.len(), crate::mix::Mix::ladder().len());
    }

    #[test]
    fn sweeps_serialize_roundtrip() {
        let s = Sweep::e1_locality(10);
        let json = serde_json::to_string(&s).unwrap();
        let back: Sweep = serde_json::from_str(&json).unwrap();
        assert_eq!(back.points, s.points);
    }
}
