//! Parameter sweeps for the experiment harness.
//!
//! Every experiment in EXPERIMENTS.md is a sweep over one axis (object width
//! `m`, scan width `r`, number of scanners, thread mix, …) with everything
//! else held fixed. This module gives those sweeps names and default ranges so
//! the harness, the Criterion benches and the documentation all agree on what
//! is being measured.

use psnap_json::Json;

/// The default values of the object width axis (experiment E1).
pub const DEFAULT_M_SWEEP: &[usize] = &[16, 64, 256, 1024, 4096];

/// The default values of the scan width axis (experiment E2).
pub const DEFAULT_R_SWEEP: &[usize] = &[1, 2, 4, 8, 16, 32];

/// The default values of the concurrent-scanner axis (experiments E3/E4).
pub const DEFAULT_SCANNER_SWEEP: &[usize] = &[0, 1, 2, 4, 6];

/// The default values of the shard-count axis (experiment E8).
pub const DEFAULT_SHARD_SWEEP: &[usize] = &[1, 2, 4, 8];

/// One point of an experiment: the fixed parameters of a single measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// Object width (number of components).
    pub m: usize,
    /// Scan width (components per partial scan).
    pub r: usize,
    /// Number of concurrent updater processes.
    pub updaters: usize,
    /// Number of concurrent scanner processes.
    pub scanners: usize,
    /// Operations measured per process.
    pub ops: usize,
    /// Number of shards the object is split into (1 = unsharded).
    pub shards: usize,
}

impl SweepPoint {
    /// Total number of processes at this point.
    pub fn processes(&self) -> usize {
        self.updaters + self.scanners
    }

    /// A compact label for tables, e.g. `m=1024 r=8 2u/2s` (with a `k=K`
    /// suffix when the point is sharded).
    pub fn label(&self) -> String {
        let base = format!(
            "m={} r={} {}u/{}s",
            self.m, self.r, self.updaters, self.scanners
        );
        if self.shards > 1 {
            format!("{base} k={}", self.shards)
        } else {
            base
        }
    }

    /// Serializes the point as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("m", Json::Num(self.m as f64)),
            ("r", Json::Num(self.r as f64)),
            ("updaters", Json::Num(self.updaters as f64)),
            ("scanners", Json::Num(self.scanners as f64)),
            ("ops", Json::Num(self.ops as f64)),
            ("shards", Json::Num(self.shards as f64)),
        ])
    }

    /// Deserializes a point from the [`SweepPoint::to_json`] format.
    /// A missing `shards` field reads as 1, so pre-sharding documents parse.
    pub fn from_json(json: &Json) -> Option<SweepPoint> {
        Some(SweepPoint {
            m: json.get("m")?.as_usize()?,
            r: json.get("r")?.as_usize()?,
            updaters: json.get("updaters")?.as_usize()?,
            scanners: json.get("scanners")?.as_usize()?,
            ops: json.get("ops")?.as_usize()?,
            shards: match json.get("shards") {
                Some(s) => s.as_usize()?,
                None => 1,
            },
        })
    }
}

/// A named sweep: which axis varies and the points to measure.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Experiment identifier (e.g. `"E1"`).
    pub id: String,
    /// Human-readable description of what the sweep demonstrates.
    pub description: String,
    /// The measurement points, in presentation order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// E1: fixed `r`, growing `m` — the locality experiment.
    pub fn e1_locality(ops: usize) -> Sweep {
        Sweep {
            id: "E1".into(),
            description: "partial-scan cost vs object width m (r fixed): Figure 3 is local, \
                          full-snapshot baselines are not"
                .into(),
            points: DEFAULT_M_SWEEP
                .iter()
                .map(|&m| SweepPoint {
                    m,
                    r: 8,
                    updaters: 2,
                    scanners: 2,
                    ops,
                    shards: 1,
                })
                .collect(),
        }
    }

    /// E2: fixed `m`, growing `r` — the `O(r²)` worst-case experiment.
    pub fn e2_scan_width(ops: usize) -> Sweep {
        Sweep {
            id: "E2".into(),
            description: "partial-scan cost vs scan width r under update pressure \
                          (Theorem 3: worst case O(r²))"
                .into(),
            points: DEFAULT_R_SWEEP
                .iter()
                .map(|&r| SweepPoint {
                    m: 256,
                    r,
                    updaters: 2,
                    scanners: 1,
                    ops,
                    shards: 1,
                })
                .collect(),
        }
    }

    /// E3: update cost vs number of concurrent scanners and their scan width.
    pub fn e3_update_cost(ops: usize) -> Sweep {
        Sweep {
            id: "E3".into(),
            description: "update cost vs concurrent scanners × rmax \
                          (Theorem 3: amortized O(Cs²·rmax²), independent of m)"
                .into(),
            points: DEFAULT_SCANNER_SWEEP
                .iter()
                .map(|&scanners| SweepPoint {
                    m: 1024,
                    r: 8,
                    updaters: 1,
                    scanners,
                    ops,
                    shards: 1,
                })
                .collect(),
        }
    }

    /// E7: throughput comparison across implementations at several mixes.
    pub fn e7_throughput(ops: usize) -> Sweep {
        Sweep {
            id: "E7".into(),
            description: "cross-implementation throughput at several scanner/updater mixes".into(),
            points: crate::mix::Mix::ladder()
                .into_iter()
                .map(|mix| SweepPoint {
                    m: 512,
                    r: 8,
                    updaters: mix.updaters,
                    scanners: mix.scanners,
                    ops,
                    shards: 1,
                })
                .collect(),
        }
    }

    /// E8: fixed workload, growing shard count — the sharding scalability
    /// experiment (update throughput should scale with the shard count while
    /// partial scans stay local and linearizable).
    pub fn e8_shards(ops: usize) -> Sweep {
        Sweep {
            id: "E8".into(),
            description: "update cost vs shard count (m = 1024, r = 8, 4u/2s, scanners \
                          chaos-parked mid-scan so announcements stay live): sharding \
                          divides the per-update helping work — and so multiplies \
                          sustainable update throughput — while cross-shard scans remain \
                          atomic; scan latency includes the deliberate chaos parks"
                .into(),
            points: DEFAULT_SHARD_SWEEP
                .iter()
                .map(|&shards| SweepPoint {
                    m: 1024,
                    r: 8,
                    updaters: 4,
                    scanners: 2,
                    ops,
                    shards,
                })
                .collect(),
        }
    }

    /// Serializes the sweep as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("description", Json::Str(self.description.clone())),
            (
                "points",
                Json::arr(self.points.iter().map(SweepPoint::to_json)),
            ),
        ])
    }

    /// Deserializes a sweep from the [`Sweep::to_json`] format.
    pub fn from_json(json: &Json) -> Option<Sweep> {
        Some(Sweep {
            id: json.get("id")?.as_str()?.to_string(),
            description: json.get("description")?.as_str()?.to_string(),
            points: json
                .get("points")?
                .as_array()?
                .iter()
                .map(SweepPoint::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_have_labels_and_processes() {
        let p = SweepPoint {
            m: 64,
            r: 4,
            updaters: 2,
            scanners: 3,
            ops: 100,
            shards: 1,
        };
        assert_eq!(p.processes(), 5);
        assert_eq!(p.label(), "m=64 r=4 2u/3s");
    }

    #[test]
    fn e1_varies_m_only() {
        let s = Sweep::e1_locality(100);
        assert_eq!(s.id, "E1");
        assert_eq!(s.points.len(), DEFAULT_M_SWEEP.len());
        assert!(s.points.windows(2).all(|w| w[0].m < w[1].m));
        assert!(s.points.iter().all(|p| p.r == 8));
    }

    #[test]
    fn e2_varies_r_only() {
        let s = Sweep::e2_scan_width(100);
        assert!(s.points.windows(2).all(|w| w[0].r < w[1].r));
        assert!(s.points.iter().all(|p| p.m == 256));
    }

    #[test]
    fn e3_varies_scanners() {
        let s = Sweep::e3_update_cost(100);
        assert!(s.points.windows(2).all(|w| w[0].scanners < w[1].scanners));
    }

    #[test]
    fn e7_follows_the_mix_ladder() {
        let s = Sweep::e7_throughput(100);
        assert_eq!(s.points.len(), crate::mix::Mix::ladder().len());
    }

    #[test]
    fn sweeps_serialize_roundtrip() {
        for s in [Sweep::e1_locality(10), Sweep::e8_shards(10)] {
            let text = s.to_json().to_string_pretty();
            let back = Sweep::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.points, s.points);
            assert_eq!(back.id, s.id);
        }
    }

    #[test]
    fn e8_varies_shards_and_labels_them() {
        let s = Sweep::e8_shards(100);
        assert_eq!(s.points.len(), DEFAULT_SHARD_SWEEP.len());
        assert!(s.points.windows(2).all(|w| w[0].shards < w[1].shards));
        assert!(s.points.iter().all(|p| p.m == 1024 && p.r == 8));
        assert_eq!(s.points[0].label(), "m=1024 r=8 4u/2s");
        assert_eq!(s.points[2].label(), "m=1024 r=8 4u/2s k=4");
    }

    #[test]
    fn sweep_points_parse_without_shards_field() {
        let legacy = Json::parse(r#"{"m":64,"r":4,"updaters":1,"scanners":1,"ops":10}"#).unwrap();
        let p = SweepPoint::from_json(&legacy).unwrap();
        assert_eq!(p.shards, 1);
    }
}
