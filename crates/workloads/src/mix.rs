//! Operation mixes: how many processes scan, how many update, and how often.

use psnap_json::Json;

/// A scanner/updater role mix for a throughput or step-count experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// Number of processes performing updates.
    pub updaters: usize,
    /// Number of processes performing partial scans.
    pub scanners: usize,
    /// Components written atomically per update operation: `1` means single
    /// `update` calls, `k > 1` means each updater op is an `update_many` of
    /// `k` components (the E10 axis).
    pub update_batch: usize,
}

impl Mix {
    /// A mix with `updaters` updaters and `scanners` scanners, issuing single
    /// updates (`update_batch = 1`).
    pub fn new(updaters: usize, scanners: usize) -> Self {
        assert!(updaters + scanners > 0, "a mix needs at least one process");
        Mix {
            updaters,
            scanners,
            update_batch: 1,
        }
    }

    /// The same mix with each updater op writing `batch` components
    /// atomically via `update_many`.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "a batch writes at least one component");
        self.update_batch = batch;
        self
    }

    /// Total number of processes.
    pub fn processes(&self) -> usize {
        self.updaters + self.scanners
    }

    /// A descriptive label used in experiment tables, e.g. `"4u/2s"`
    /// (`"4u/2s b8"` when updates are batched 8 wide).
    pub fn label(&self) -> String {
        if self.update_batch > 1 {
            format!(
                "{}u/{}s b{}",
                self.updaters, self.scanners, self.update_batch
            )
        } else {
            format!("{}u/{}s", self.updaters, self.scanners)
        }
    }

    /// Serializes the mix as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("updaters", Json::Num(self.updaters as f64)),
            ("scanners", Json::Num(self.scanners as f64)),
            ("update_batch", Json::Num(self.update_batch as f64)),
        ])
    }

    /// Deserializes a mix from the [`Mix::to_json`] format. A missing
    /// `update_batch` field reads as 1, so pre-batching documents parse.
    pub fn from_json(json: &Json) -> Option<Mix> {
        Some(Mix {
            updaters: json.get("updaters")?.as_usize()?,
            scanners: json.get("scanners")?.as_usize()?,
            update_batch: match json.get("update_batch") {
                Some(b) => b.as_usize()?,
                None => 1,
            },
        })
    }

    /// The standard ladder of mixes used by the contention experiments:
    /// update-heavy, balanced and scan-heavy at several scales.
    pub fn ladder() -> Vec<Mix> {
        vec![
            Mix::new(1, 1),
            Mix::new(2, 2),
            Mix::new(4, 2),
            Mix::new(2, 4),
            Mix::new(4, 4),
            Mix::new(6, 2),
            Mix::new(2, 6),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_and_processes() {
        let m = Mix::new(4, 2);
        assert_eq!(m.processes(), 6);
        assert_eq!(m.label(), "4u/2s");
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_mix_is_rejected() {
        let _ = Mix::new(0, 0);
    }

    #[test]
    fn ladder_is_nonempty_and_bounded() {
        let ladder = Mix::ladder();
        assert!(!ladder.is_empty());
        assert!(ladder.iter().all(|m| m.processes() <= 8));
    }

    #[test]
    fn mix_serializes_roundtrip() {
        for m in [Mix::new(3, 5), Mix::new(2, 2).with_batch(8)] {
            let text = m.to_json().to_string_compact();
            let back = Mix::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn batch_knob_is_labelled_and_parses_legacy_documents() {
        let m = Mix::new(4, 2).with_batch(8);
        assert_eq!(m.label(), "4u/2s b8");
        assert_eq!(Mix::new(4, 2).label(), "4u/2s");
        let legacy = Json::parse(r#"{"updaters":1,"scanners":1}"#).unwrap();
        assert_eq!(Mix::from_json(&legacy).unwrap().update_batch, 1);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn zero_batch_is_rejected() {
        let _ = Mix::new(1, 1).with_batch(0);
    }
}
