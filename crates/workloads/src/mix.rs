//! Operation mixes: how many processes scan, how many update, and how often.

use psnap_json::Json;

/// A scanner/updater role mix for a throughput or step-count experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// Number of processes performing updates.
    pub updaters: usize,
    /// Number of processes performing partial scans.
    pub scanners: usize,
}

impl Mix {
    /// A mix with `updaters` updaters and `scanners` scanners.
    pub fn new(updaters: usize, scanners: usize) -> Self {
        assert!(updaters + scanners > 0, "a mix needs at least one process");
        Mix { updaters, scanners }
    }

    /// Total number of processes.
    pub fn processes(&self) -> usize {
        self.updaters + self.scanners
    }

    /// A descriptive label used in experiment tables, e.g. `"4u/2s"`.
    pub fn label(&self) -> String {
        format!("{}u/{}s", self.updaters, self.scanners)
    }

    /// Serializes the mix as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("updaters", Json::Num(self.updaters as f64)),
            ("scanners", Json::Num(self.scanners as f64)),
        ])
    }

    /// Deserializes a mix from the [`Mix::to_json`] format.
    pub fn from_json(json: &Json) -> Option<Mix> {
        Some(Mix {
            updaters: json.get("updaters")?.as_usize()?,
            scanners: json.get("scanners")?.as_usize()?,
        })
    }

    /// The standard ladder of mixes used by the contention experiments:
    /// update-heavy, balanced and scan-heavy at several scales.
    pub fn ladder() -> Vec<Mix> {
        vec![
            Mix::new(1, 1),
            Mix::new(2, 2),
            Mix::new(4, 2),
            Mix::new(2, 4),
            Mix::new(4, 4),
            Mix::new(6, 2),
            Mix::new(2, 6),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_and_processes() {
        let m = Mix::new(4, 2);
        assert_eq!(m.processes(), 6);
        assert_eq!(m.label(), "4u/2s");
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_mix_is_rejected() {
        let _ = Mix::new(0, 0);
    }

    #[test]
    fn ladder_is_nonempty_and_bounded() {
        let ladder = Mix::ladder();
        assert!(!ladder.is_empty());
        assert!(ladder.iter().all(|m| m.processes() <= 8));
    }

    #[test]
    fn mix_serializes_roundtrip() {
        let m = Mix::new(3, 5);
        let text = m.to_json().to_string_compact();
        let back = Mix::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(m, back);
    }
}
