//! # psnap-wire — serving partial snapshots over sockets
//!
//! A std-only transport that hosts a [`SnapshotService`] over TCP or
//! unix-domain sockets, making the in-process serving stack reachable from
//! other processes with the same semantics:
//!
//! * **Framing** ([`frame`]): 4-byte big-endian length prefix + UTF-8 JSON
//!   payload. Oversized lengths are rejected before allocation; truncation
//!   is an error, never a panic.
//! * **Protocol** ([`proto`]): versioned `hello`/`welcome` handshake, then
//!   id-multiplexed submit/scan/stats requests. Values ride as
//!   precision-safe JSON (decimal strings above 2⁵³). Backpressure is
//!   explicit: a full ingestion queue answers `{"ok":false,"error":"busy"}`
//!   — a frame, not a dropped request.
//! * **Server** ([`server`]): an acceptor task on the service's hand-rolled
//!   executor; per-connection ingestion queues reusing the in-process
//!   ticket/backpressure machinery; idle timeouts, half-close draining, and
//!   graceful shutdown (in-flight tickets resolve and flush before the
//!   listener closes). Each request roots a flight-recorder span at frame
//!   decode, so wire requests appear in span trees end to end.
//! * **Client** ([`client`]): [`RemoteClientHandle`] mirrors the in-process
//!   `ClientHandle` API; a reader thread resolves tickets out of order, and
//!   a dead connection fails every outstanding ticket rather than hanging.
//!
//! ```no_run
//! use std::sync::Arc;
//! use psnap_serve::{Executor, Freshness, ServiceConfig, SnapshotService};
//! use psnap_wire::{RemoteClientHandle, WireServer, WireServerConfig};
//!
//! let executor = Executor::new(2);
//! let snapshot = psnap_core::CasPartialSnapshot::new(16, 4, 0u64);
//! let service = Arc::new(SnapshotService::start(
//!     snapshot, ServiceConfig::default(), &executor,
//! ));
//! let server = WireServer::serve_tcp(
//!     Arc::clone(&service), "127.0.0.1:0", WireServerConfig::default(), &executor,
//! ).unwrap();
//! let addr = server.local_addr().unwrap();
//!
//! let client = RemoteClientHandle::connect_tcp(addr).unwrap();
//! client.submit_blocking(3, 42).unwrap();
//! assert_eq!(client.scan_blocking(vec![3], Freshness::Fresh).unwrap(), vec![42]);
//! ```
//!
//! [`SnapshotService`]: psnap_serve::SnapshotService

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;
pub(crate) mod stream;

pub use client::{RemoteClientHandle, RemoteScanTicket, RemoteSubmitTicket, WireError};
pub use frame::{encode_frame, read_frame, read_frame_str, write_frame, FrameError, MAX_FRAME_LEN};
pub use proto::{Reply, ReplyBody, Request, RequestBody, WireErrorKind, PROTOCOL_VERSION};
pub use server::{WireServer, WireServerConfig};
