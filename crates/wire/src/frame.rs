//! Length-prefixed frame codec.
//!
//! Every message on a connection — handshake, request, reply — is one
//! *frame*: a 4-byte big-endian payload length followed by that many bytes
//! of UTF-8 JSON. The codec is deliberately dumb so its failure modes are
//! enumerable:
//!
//! * a length above the negotiated cap is rejected **before** any payload
//!   allocation (a hostile peer cannot make the server reserve gigabytes
//!   with four bytes);
//! * a connection that ends mid-prefix or mid-payload is a
//!   [`FrameError::Truncated`], never a panic or a partial frame handed to
//!   the JSON parser;
//! * a clean end of stream *between* frames is [`FrameError::Eof`] — the
//!   half-close a peer performs when it is done sending, distinct from
//!   truncation.

use std::io::{self, Read, Write};

/// Default cap on a frame's payload length, in bytes. Generous for request
/// traffic (a maximal batch of a few hundred writes is a few kilobytes) but
/// small enough that a hostile length prefix cannot balloon memory.
pub const MAX_FRAME_LEN: usize = 4 << 20;

/// Length of the frame header (big-endian u32 payload length).
pub const HEADER_LEN: usize = 4;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end of stream between frames: the peer half-closed its sending
    /// direction. Not an error in the protocol sense — the reader should
    /// stop reading and let in-flight replies flush.
    Eof,
    /// The stream ended inside a frame (mid-prefix or mid-payload).
    Truncated {
        /// Bytes expected beyond what arrived.
        missing: usize,
    },
    /// The length prefix exceeds the cap; nothing was allocated.
    Oversized {
        /// The advertised payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The payload is not valid UTF-8 (frames carry JSON text).
    NotUtf8,
    /// An underlying I/O error (connection reset, timeout, ...).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::Truncated { missing } => {
                write!(f, "stream ended mid-frame ({missing} bytes missing)")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
            FrameError::NotUtf8 => write!(f, "frame payload is not UTF-8"),
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => FrameError::Truncated { missing: 0 },
            _ => FrameError::Io(e),
        }
    }
}

/// Writes one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= u32::MAX as usize);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Serializes one frame into a buffer (for tests and batching writers).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    encode_frame_into(payload, &mut out);
    out
}

/// Appends one frame (header, then payload) to `out` — the
/// allocation-reusing sibling of [`encode_frame`] for writers that batch
/// many frames into one buffer.
pub fn encode_frame_into(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= u32::MAX as usize);
    out.reserve(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
}

/// Reads exactly `buf.len()` bytes, distinguishing a clean EOF at offset 0
/// (`Ok(false)`) from truncation mid-read (`Err(Truncated)`).
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(FrameError::Truncated {
                    missing: buf.len() - filled,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame's payload, enforcing `max_len` before allocating.
///
/// A clean end of stream before any header byte is [`FrameError::Eof`];
/// a stream ending anywhere inside the frame is
/// [`FrameError::Truncated`]. The payload is returned as owned bytes,
/// verified UTF-8-decodable by [`read_frame_str`]'s wrapper if text is
/// needed.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Vec<u8>, FrameError> {
    let mut payload = Vec::new();
    read_frame_into(r, max_len, &mut payload)?;
    Ok(payload)
}

/// Reads one frame's payload into `payload` (cleared first), reusing its
/// allocation — the per-connection read loops call this with one
/// long-lived buffer so steady-state traffic allocates nothing per frame.
/// Same error contract as [`read_frame`]; the length cap is enforced
/// before the buffer grows.
pub fn read_frame_into(
    r: &mut impl Read,
    max_len: usize,
    payload: &mut Vec<u8>,
) -> Result<(), FrameError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(r, &mut header)? {
        return Err(FrameError::Eof);
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_len {
        return Err(FrameError::Oversized { len, max: max_len });
    }
    // The length is now known ≤ max_len, so growth is bounded.
    payload.clear();
    payload.resize(len, 0);
    if !read_full(r, payload)? {
        return Err(FrameError::Truncated { missing: len });
    }
    Ok(())
}

/// Reads one frame and decodes it as UTF-8 text.
pub fn read_frame_str(r: &mut impl Read, max_len: usize) -> Result<String, FrameError> {
    String::from_utf8(read_frame(r, max_len)?).map_err(|_| FrameError::NotUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let payload = br#"{"op":"hello","version":1}"#;
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        assert_eq!(buf, encode_frame(payload));
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap(), payload);
        // Stream exhausted: the next read is a clean Eof.
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME_LEN),
            Err(FrameError::Eof)
        ));
    }

    #[test]
    fn truncated_prefix_and_payload_error_cleanly() {
        let full = encode_frame(b"abcdef");
        for cut in 1..full.len() {
            let mut r = &full[..cut];
            assert!(
                matches!(
                    read_frame(&mut r, MAX_FRAME_LEN),
                    Err(FrameError::Truncated { .. })
                ),
                "cut at {cut} not reported as truncation"
            );
        }
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        // Advertise 4 GiB - 1; the reader must refuse before allocating.
        let mut buf = u32::MAX.to_be_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        let mut r = &buf[..];
        match read_frame(&mut r, MAX_FRAME_LEN) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let buf = encode_frame(b"");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap(), b"");
    }

    #[test]
    fn invalid_utf8_is_an_error_not_a_panic() {
        let buf = encode_frame(&[0xff, 0xfe, 0x80]);
        let mut r = &buf[..];
        assert!(matches!(
            read_frame_str(&mut r, MAX_FRAME_LEN),
            Err(FrameError::NotUtf8)
        ));
    }
}
