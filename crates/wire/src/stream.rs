//! A TCP or unix-domain stream behind one type, so the connection
//! machinery (server and client side) is written once.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::time::Duration;

pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    pub(crate) fn shutdown(&self, how: Shutdown) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(how),
            Stream::Unix(s) => s.shutdown(how),
        };
    }

    pub(crate) fn set_read_timeout(&self, t: Option<Duration>) {
        let _ = match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Unix(s) => s.set_read_timeout(t),
        };
    }

    /// Socket-level (`SO_SNDTIMEO`): applies to every clone of this stream.
    pub(crate) fn set_write_timeout(&self, t: Option<Duration>) {
        let _ = match self {
            Stream::Tcp(s) => s.set_write_timeout(t),
            Stream::Unix(s) => s.set_write_timeout(t),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}
