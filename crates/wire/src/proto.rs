//! The request/reply protocol carried inside frames.
//!
//! Payloads are `psnap-json` documents — the wire format is spelled out in
//! code, both directions, with no derived serialization:
//!
//! * handshake: client sends `{"op":"hello","version":V}`, server answers
//!   `{"op":"welcome","version":V,"components":M,"max_frame":N}` or
//!   `{"op":"reject","error":"version_mismatch","server_version":V}`;
//! * requests carry a client-chosen `id` echoed verbatim on the reply, so
//!   one connection multiplexes any number of in-flight operations;
//! * component values are `u64` encoded via [`Json::u64`], which falls back
//!   to decimal strings above 2^53 — a number JSON's doubles cannot carry
//!   losslessly must never round on the wire;
//! * `Busy` backpressure is an explicit error reply, not a dropped frame:
//!   the client sees `{"ok":false,"error":"busy"}` and decides to retry or
//!   shed, exactly like an in-process caller seeing `SubmitError::Busy`.

use std::time::Duration;

use psnap_json::Json;
use psnap_serve::Freshness;

/// Protocol version spoken by this build. A server rejects hellos with any
/// other version — explicit incompatibility beats silent misparses.
pub const PROTOCOL_VERSION: u64 = 1;

/// Error kinds a reply can carry. `Busy` and `Closed` mirror
/// [`psnap_serve::SubmitError`]; `BadRequest` covers frames that decoded as
/// JSON but not as a request the server understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireErrorKind {
    /// The connection's ingestion queue (or the scan queue) is at capacity.
    /// Nothing was enqueued; retry or shed.
    Busy,
    /// The service is shutting down (or the connection is draining) and no
    /// longer accepts work.
    Closed,
    /// The request was structurally invalid (unknown op, missing field,
    /// component out of range, ...).
    BadRequest,
}

impl WireErrorKind {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            WireErrorKind::Busy => "busy",
            WireErrorKind::Closed => "closed",
            WireErrorKind::BadRequest => "bad_request",
        }
    }

    /// Inverse of [`as_str`](WireErrorKind::as_str).
    pub fn parse(s: &str) -> Option<WireErrorKind> {
        match s {
            "busy" => Some(WireErrorKind::Busy),
            "closed" => Some(WireErrorKind::Closed),
            "bad_request" => Some(WireErrorKind::BadRequest),
            _ => None,
        }
    }
}

impl std::fmt::Display for WireErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One request, as decoded by the server (and encoded by the client).
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the reply.
    pub id: u64,
    /// The operation.
    pub body: RequestBody,
}

/// The operations the protocol carries.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// An atomic batch of component writes (a single write is a batch of
    /// one). Maps to [`psnap_serve::ClientHandle::submit_batch`].
    Submit {
        /// `(component, value)` pairs; must be non-empty on the wire.
        writes: Vec<(usize, u64)>,
    },
    /// A partial scan under a freshness bound.
    Scan {
        /// The requested components, in reply order.
        components: Vec<usize>,
        /// `Fresh`, or `AtMostStale` with a nanosecond bound.
        freshness: Freshness,
    },
    /// One observability snapshot of the service ([`ServiceObs`] JSON).
    ///
    /// [`ServiceObs`]: psnap_serve::ServiceObs
    Stats,
}

impl RequestBody {
    /// Wire opcode, also carried as the wire span's `a` argument.
    pub fn opcode(&self) -> u64 {
        match self {
            RequestBody::Submit { .. } => 1,
            RequestBody::Scan { .. } => 2,
            RequestBody::Stats => 3,
        }
    }
}

/// One reply, as encoded by the server (and decoded by the client).
#[derive(Clone, Debug, PartialEq)]
pub struct Reply {
    /// The request's correlation id, echoed.
    pub id: u64,
    /// The outcome.
    pub result: Result<ReplyBody, WireErrorKind>,
}

/// Successful reply payloads, one per [`RequestBody`] variant.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplyBody {
    /// The batch was applied (the in-process ticket resolved).
    Submitted,
    /// The scan's values, one per requested component in request order.
    Values(Vec<u64>),
    /// The service obs snapshot, passed through as JSON.
    Stats(Json),
}

fn freshness_to_json(freshness: &Freshness) -> Json {
    match freshness {
        Freshness::Fresh => Json::Str("fresh".into()),
        Freshness::AtMostStale(bound) => Json::obj([(
            "stale_ns",
            Json::u64(bound.as_nanos().min(u64::MAX as u128) as u64),
        )]),
    }
}

fn freshness_from_json(json: &Json) -> Option<Freshness> {
    if json.as_str() == Some("fresh") {
        return Some(Freshness::Fresh);
    }
    let ns = json.get("stale_ns")?.as_u64_precise()?;
    Some(Freshness::AtMostStale(Duration::from_nanos(ns)))
}

impl Request {
    /// Serializes for the wire.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![("id".into(), Json::u64(self.id))];
        match &self.body {
            RequestBody::Submit { writes } => {
                pairs.push(("op".into(), Json::Str("submit".into())));
                pairs.push((
                    "writes".into(),
                    Json::arr(
                        writes
                            .iter()
                            .map(|(c, v)| Json::arr([Json::Num(*c as f64), Json::u64(*v)])),
                    ),
                ));
            }
            RequestBody::Scan {
                components,
                freshness,
            } => {
                pairs.push(("op".into(), Json::Str("scan".into())));
                pairs.push((
                    "components".into(),
                    Json::arr(components.iter().map(|c| Json::Num(*c as f64))),
                ));
                pairs.push(("freshness".into(), freshness_to_json(freshness)));
            }
            RequestBody::Stats => {
                pairs.push(("op".into(), Json::Str("stats".into())));
            }
        }
        Json::obj(pairs)
    }

    /// Parses a request document. `None` is the server's `bad_request`.
    pub fn from_json(json: &Json) -> Option<Request> {
        let id = json.get("id")?.as_u64_precise()?;
        let body = match json.get("op")?.as_str()? {
            "submit" => {
                let writes = json
                    .get("writes")?
                    .as_array()?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_array()?;
                        if pair.len() != 2 {
                            return None;
                        }
                        Some((pair[0].as_usize()?, pair[1].as_u64_precise()?))
                    })
                    .collect::<Option<Vec<_>>>()?;
                if writes.is_empty() {
                    return None;
                }
                RequestBody::Submit { writes }
            }
            "scan" => RequestBody::Scan {
                components: json
                    .get("components")?
                    .as_array()?
                    .iter()
                    .map(Json::as_usize)
                    .collect::<Option<Vec<_>>>()?,
                freshness: freshness_from_json(json.get("freshness")?)?,
            },
            "stats" => RequestBody::Stats,
            _ => return None,
        };
        Some(Request { id, body })
    }
}

impl Reply {
    /// Serializes for the wire.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![("id".into(), Json::u64(self.id))];
        match &self.result {
            Ok(body) => {
                pairs.push(("ok".into(), Json::Bool(true)));
                match body {
                    ReplyBody::Submitted => {}
                    ReplyBody::Values(values) => pairs.push((
                        "values".into(),
                        Json::arr(values.iter().map(|v| Json::u64(*v))),
                    )),
                    ReplyBody::Stats(stats) => pairs.push(("stats".into(), stats.clone())),
                }
            }
            Err(kind) => {
                pairs.push(("ok".into(), Json::Bool(false)));
                pairs.push(("error".into(), Json::Str(kind.as_str().into())));
            }
        }
        Json::obj(pairs)
    }

    /// Parses a reply document.
    pub fn from_json(json: &Json) -> Option<Reply> {
        let id = json.get("id")?.as_u64_precise()?;
        let ok = match json.get("ok")? {
            Json::Bool(b) => *b,
            _ => return None,
        };
        let result = if ok {
            if let Some(values) = json.get("values") {
                Ok(ReplyBody::Values(
                    values
                        .as_array()?
                        .iter()
                        .map(Json::as_u64_precise)
                        .collect::<Option<Vec<_>>>()?,
                ))
            } else if let Some(stats) = json.get("stats") {
                Ok(ReplyBody::Stats(stats.clone()))
            } else {
                Ok(ReplyBody::Submitted)
            }
        } else {
            Err(WireErrorKind::parse(json.get("error")?.as_str()?)?)
        };
        Some(Reply { id, result })
    }
}

// --- Fast-path codec ------------------------------------------------------
//
// Requests and replies dominate wire traffic, and their documents are tiny
// and rigidly shaped; building a `Json` tree (and walking one back) for
// every operation costs several times the underlying service work. The
// fast path serializes straight into a `String` and parses with a strict
// scanner over the exact canonical byte sequence the serializer emits.
// Anything the scanner does not recognize — extra whitespace, reordered
// keys, foreign fields — falls back to the general `Json` path, so the
// protocol accepted on the wire is unchanged; the fast path is purely a
// cheaper route through the common case. Tests pin the serializers
// byte-for-byte to `to_json().to_string_compact()` and the scanners to
// `from_json`.

/// Largest integer carried as a bare JSON number (see [`Json::u64`]).
const MAX_SAFE_NUM: u64 = 1 << 53;

/// Appends a `u64` exactly as [`Json::u64`] + `to_string_compact` would:
/// bare decimal up to 2^53, quoted decimal string above.
fn push_u64(out: &mut String, v: u64) {
    use std::fmt::Write;
    if v <= MAX_SAFE_NUM {
        let _ = write!(out, "{v}");
    } else {
        let _ = write!(out, "\"{v}\"");
    }
}

/// A strict scanner over a canonical wire document. Every method returns
/// `None` on the first unexpected byte; callers then fall back to the
/// general `Json` parser.
struct Scanner<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Scanner<'a> {
        Scanner {
            bytes: text.as_bytes(),
            at: 0,
        }
    }

    fn lit(&mut self, lit: &str) -> Option<()> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }

    /// A bare decimal integer with no sign and no leading zero (other than
    /// `0` itself), bounded by `max`.
    fn bare_u64(&mut self, max: u64) -> Option<u64> {
        let start = self.at;
        let mut v: u64 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            v = v.checked_mul(10)?.checked_add((b - b'0') as u64)?;
            self.at += 1;
        }
        let len = self.at - start;
        if len == 0 || (len > 1 && self.bytes[start] == b'0') || v > max {
            return None;
        }
        Some(v)
    }

    /// A `u64` as [`push_u64`] writes it: bare up to 2^53, quoted above.
    fn u64_value(&mut self) -> Option<u64> {
        if self.peek() == Some(b'"') {
            self.at += 1;
            let v = self.bare_u64(u64::MAX)?;
            if v <= MAX_SAFE_NUM {
                // Canonical form would be bare; defer to the general path.
                return None;
            }
            self.lit("\"")?;
            Some(v)
        } else {
            self.bare_u64(MAX_SAFE_NUM)
        }
    }
}

impl Request {
    /// Serializes straight to the canonical wire text (byte-identical to
    /// `self.to_json().to_string_compact()`).
    pub fn to_wire_string(&self) -> String {
        // Keys in alphabetical order, matching `to_string_compact`'s
        // canonical object serialization.
        let mut out = String::with_capacity(64);
        match &self.body {
            RequestBody::Submit { writes } => {
                out.push_str("{\"id\":");
                push_u64(&mut out, self.id);
                out.push_str(",\"op\":\"submit\",\"writes\":[");
                for (i, (c, v)) in writes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    push_u64(&mut out, *c as u64);
                    out.push(',');
                    push_u64(&mut out, *v);
                    out.push(']');
                }
                out.push(']');
            }
            RequestBody::Scan {
                components,
                freshness,
            } => {
                out.push_str("{\"components\":[");
                for (i, c) in components.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_u64(&mut out, *c as u64);
                }
                out.push_str("],\"freshness\":");
                match freshness {
                    Freshness::Fresh => out.push_str("\"fresh\""),
                    Freshness::AtMostStale(bound) => {
                        out.push_str("{\"stale_ns\":");
                        push_u64(&mut out, bound.as_nanos().min(u64::MAX as u128) as u64);
                        out.push('}');
                    }
                }
                out.push_str(",\"id\":");
                push_u64(&mut out, self.id);
                out.push_str(",\"op\":\"scan\"");
            }
            RequestBody::Stats => {
                out.push_str("{\"id\":");
                push_u64(&mut out, self.id);
                out.push_str(",\"op\":\"stats\"");
            }
        }
        out.push('}');
        out
    }

    /// The strict fast parser: accepts exactly the canonical documents
    /// [`to_wire_string`](Request::to_wire_string) emits and returns `None`
    /// for everything else (the caller falls back to [`Json::parse`] +
    /// [`from_json`](Request::from_json)).
    pub fn parse_wire(text: &str) -> Option<Request> {
        let mut s = Scanner::new(text);
        let (id, body) = if s.lit("{\"components\":[").is_some() {
            let mut components = Vec::new();
            if s.peek() != Some(b']') {
                loop {
                    components.push(s.bare_u64(MAX_SAFE_NUM)? as usize);
                    if s.lit(",").is_none() {
                        break;
                    }
                }
            }
            s.lit("],\"freshness\":")?;
            let freshness = if s.lit("\"fresh\"").is_some() {
                Freshness::Fresh
            } else {
                s.lit("{\"stale_ns\":")?;
                let ns = s.u64_value()?;
                s.lit("}")?;
                Freshness::AtMostStale(Duration::from_nanos(ns))
            };
            s.lit(",\"id\":")?;
            let id = s.u64_value()?;
            s.lit(",\"op\":\"scan\"")?;
            (
                id,
                RequestBody::Scan {
                    components,
                    freshness,
                },
            )
        } else {
            s.lit("{\"id\":")?;
            let id = s.u64_value()?;
            s.lit(",\"op\":\"")?;
            if s.lit("submit\",\"writes\":[").is_some() {
                let mut writes = Vec::new();
                if s.peek() != Some(b']') {
                    loop {
                        s.lit("[")?;
                        let c = s.bare_u64(MAX_SAFE_NUM)? as usize;
                        s.lit(",")?;
                        let v = s.u64_value()?;
                        s.lit("]")?;
                        writes.push((c, v));
                        if s.lit(",").is_none() {
                            break;
                        }
                    }
                }
                s.lit("]")?;
                if writes.is_empty() {
                    return None;
                }
                (id, RequestBody::Submit { writes })
            } else if s.lit("stats\"").is_some() {
                (id, RequestBody::Stats)
            } else {
                return None;
            }
        };
        s.lit("}")?;
        if !s.done() {
            return None;
        }
        Some(Request { id, body })
    }
}

impl Reply {
    /// Serializes straight to the canonical wire text (byte-identical to
    /// `self.to_json().to_string_compact()`). Stats replies carry an
    /// arbitrary JSON document and go through the general serializer.
    pub fn to_wire_string(&self) -> String {
        if let Ok(ReplyBody::Stats(_)) = &self.result {
            return self.to_json().to_string_compact();
        }
        // Keys in alphabetical order, matching `to_string_compact`'s
        // canonical object serialization.
        let mut out = String::with_capacity(32);
        match &self.result {
            Ok(ReplyBody::Submitted) => {
                out.push_str("{\"id\":");
                push_u64(&mut out, self.id);
                out.push_str(",\"ok\":true");
            }
            Ok(ReplyBody::Values(values)) => {
                out.push_str("{\"id\":");
                push_u64(&mut out, self.id);
                out.push_str(",\"ok\":true,\"values\":[");
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_u64(&mut out, *v);
                }
                out.push(']');
            }
            Ok(ReplyBody::Stats(_)) => unreachable!("handled above"),
            Err(kind) => {
                out.push_str("{\"error\":\"");
                out.push_str(kind.as_str());
                out.push_str("\",\"id\":");
                push_u64(&mut out, self.id);
                out.push_str(",\"ok\":false");
            }
        }
        out.push('}');
        out
    }

    /// The strict fast parser for replies; `None` falls back to the general
    /// path (stats replies always do — their payload is free-form JSON).
    pub fn parse_wire(text: &str) -> Option<Reply> {
        let mut s = Scanner::new(text);
        let (id, result) = if s.lit("{\"error\":\"").is_some() {
            let kind = if s.lit("busy").is_some() {
                WireErrorKind::Busy
            } else if s.lit("closed").is_some() {
                WireErrorKind::Closed
            } else if s.lit("bad_request").is_some() {
                WireErrorKind::BadRequest
            } else {
                return None;
            };
            s.lit("\",\"id\":")?;
            let id = s.u64_value()?;
            s.lit(",\"ok\":false")?;
            (id, Err(kind))
        } else {
            s.lit("{\"id\":")?;
            let id = s.u64_value()?;
            s.lit(",\"ok\":true")?;
            let body = if s.lit(",\"values\":[").is_some() {
                let mut values = Vec::new();
                if s.peek() != Some(b']') {
                    loop {
                        values.push(s.u64_value()?);
                        if s.lit(",").is_none() {
                            break;
                        }
                    }
                }
                s.lit("]")?;
                ReplyBody::Values(values)
            } else {
                ReplyBody::Submitted
            };
            (id, Ok(body))
        };
        s.lit("}")?;
        if !s.done() {
            return None;
        }
        Some(Reply { id, result })
    }
}

/// The client's opening frame.
pub fn hello_json(version: u64) -> Json {
    Json::obj([
        ("op", Json::Str("hello".into())),
        ("version", Json::u64(version)),
    ])
}

/// Parses a hello; returns the client's version.
pub fn parse_hello(json: &Json) -> Option<u64> {
    if json.get("op")?.as_str()? != "hello" {
        return None;
    }
    json.get("version")?.as_u64_precise()
}

/// The server's accepting handshake frame.
pub fn welcome_json(components: usize, max_frame: usize) -> Json {
    Json::obj([
        ("op", Json::Str("welcome".into())),
        ("version", Json::u64(PROTOCOL_VERSION)),
        ("components", Json::Num(components as f64)),
        ("max_frame", Json::Num(max_frame as f64)),
    ])
}

/// The server's rejecting handshake frame.
pub fn reject_json(reason: &str) -> Json {
    Json::obj([
        ("op", Json::Str("reject".into())),
        ("error", Json::Str(reason.into())),
        ("server_version", Json::u64(PROTOCOL_VERSION)),
    ])
}

/// Parses the server's handshake answer: `Ok((components, max_frame))` on
/// welcome, `Err(reason)` on reject, `None` on anything else.
pub fn parse_handshake_answer(json: &Json) -> Option<Result<(usize, usize), String>> {
    match json.get("op")?.as_str()? {
        "welcome" => {
            if json.get("version")?.as_u64_precise()? != PROTOCOL_VERSION {
                return Some(Err("version_mismatch".into()));
            }
            Some(Ok((
                json.get("components")?.as_usize()?,
                json.get("max_frame")?.as_usize()?,
            )))
        }
        "reject" => Some(Err(json
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("rejected")
            .to_string())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request {
                id: 7,
                body: RequestBody::Submit {
                    writes: vec![(0, 1), (5, u64::MAX)],
                },
            },
            Request {
                id: u64::MAX,
                body: RequestBody::Scan {
                    components: vec![0, 3, 3, 9],
                    freshness: Freshness::Fresh,
                },
            },
            Request {
                id: 0,
                body: RequestBody::Scan {
                    components: vec![],
                    freshness: Freshness::AtMostStale(Duration::from_millis(250)),
                },
            },
            Request {
                id: 42,
                body: RequestBody::Stats,
            },
        ];
        for request in requests {
            let text = request.to_json().to_string_compact();
            let back = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, request, "via {text}");
        }
    }

    #[test]
    fn replies_round_trip() {
        let replies = [
            Reply {
                id: 1,
                result: Ok(ReplyBody::Submitted),
            },
            Reply {
                id: 2,
                result: Ok(ReplyBody::Values(vec![0, (1 << 53) + 7, u64::MAX])),
            },
            Reply {
                id: 3,
                result: Ok(ReplyBody::Stats(Json::obj([("x", Json::Num(1.0))]))),
            },
            Reply {
                id: 4,
                result: Err(WireErrorKind::Busy),
            },
            Reply {
                id: 5,
                result: Err(WireErrorKind::Closed),
            },
            Reply {
                id: 6,
                result: Err(WireErrorKind::BadRequest),
            },
        ];
        for reply in replies {
            let text = reply.to_json().to_string_compact();
            let back = Reply::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, reply, "via {text}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected_not_panicked() {
        for text in [
            r#"{}"#,
            r#"{"id":1}"#,
            r#"{"id":1,"op":"nope"}"#,
            r#"{"id":1,"op":"submit","writes":[]}"#,
            r#"{"id":1,"op":"submit","writes":[[1]]}"#,
            r#"{"id":1,"op":"submit","writes":[[1,2,3]]}"#,
            r#"{"id":1,"op":"submit","writes":[["a",2]]}"#,
            r#"{"id":-1,"op":"stats"}"#,
            r#"{"id":1.5,"op":"stats"}"#,
            r#"{"id":1,"op":"scan","components":[0]}"#,
            r#"{"id":1,"op":"scan","components":[0],"freshness":"stale"}"#,
            r#"{"id":1,"op":"scan","components":[0],"freshness":{"stale_ns":-4}}"#,
        ] {
            let json = Json::parse(text).unwrap();
            assert!(Request::from_json(&json).is_none(), "accepted: {text}");
        }
    }

    #[test]
    fn fast_codec_matches_the_general_path_byte_for_byte() {
        let requests = [
            Request {
                id: 7,
                body: RequestBody::Submit {
                    writes: vec![(0, 1), (5, u64::MAX), (300, (1 << 53) + 9)],
                },
            },
            Request {
                id: u64::MAX,
                body: RequestBody::Scan {
                    components: vec![0, 3, 3, 9],
                    freshness: Freshness::Fresh,
                },
            },
            Request {
                id: (1 << 53) + 1,
                body: RequestBody::Scan {
                    components: vec![],
                    freshness: Freshness::AtMostStale(Duration::from_millis(250)),
                },
            },
            Request {
                id: 0,
                body: RequestBody::Stats,
            },
        ];
        for request in requests {
            let fast = request.to_wire_string();
            assert_eq!(fast, request.to_json().to_string_compact());
            assert_eq!(Request::parse_wire(&fast), Some(request));
        }
        let replies = [
            Reply {
                id: 1,
                result: Ok(ReplyBody::Submitted),
            },
            Reply {
                id: (1 << 53) + 77,
                result: Ok(ReplyBody::Values(vec![0, (1 << 53) + 7, u64::MAX])),
            },
            Reply {
                id: 2,
                result: Ok(ReplyBody::Values(vec![])),
            },
            Reply {
                id: 4,
                result: Err(WireErrorKind::Busy),
            },
            Reply {
                id: 5,
                result: Err(WireErrorKind::Closed),
            },
            Reply {
                id: 6,
                result: Err(WireErrorKind::BadRequest),
            },
        ];
        for reply in replies {
            let fast = reply.to_wire_string();
            assert_eq!(fast, reply.to_json().to_string_compact());
            assert_eq!(Reply::parse_wire(&fast), Some(reply));
        }
        // Stats replies carry free-form JSON: the serializer falls back to
        // the general path and the fast parser declines them.
        let stats = Reply {
            id: 3,
            result: Ok(ReplyBody::Stats(Json::obj([("x", Json::Num(1.0))]))),
        };
        assert_eq!(stats.to_wire_string(), stats.to_json().to_string_compact());
        assert_eq!(Reply::parse_wire(&stats.to_wire_string()), None);
    }

    #[test]
    fn fast_parser_declines_non_canonical_documents() {
        // All of these are either invalid or non-canonical; the strict
        // scanner must return None (the general path then decides).
        for text in [
            "",
            "{}",
            r#" {"id":1,"op":"stats"}"#,             // leading space
            r#"{"id":1,"op":"stats"} "#,             // trailing space
            r#"{"op":"stats","id":1}"#,              // reordered keys
            r#"{"id":01,"op":"stats"}"#,             // leading zero
            r#"{"id":"5","op":"stats"}"#,            // small id quoted
            r#"{"id":1,"op":"submit","writes":[]}"#, // empty batch
            r#"{"id":1,"op":"submit","writes":[[1,2],]}"#, // trailing comma
            r#"{"id":1,"op":"scan","components":[2],"freshness":"stale"}"#,
            r#"{"id":18446744073709551616,"op":"stats"}"#, // > u64
        ] {
            assert_eq!(Request::parse_wire(text), None, "accepted: {text}");
        }
        for text in [
            "",
            r#"{"id":1,"ok":maybe}"#,
            r#"{"id":1,"ok":false,"error":"nope"}"#,
            r#"{"id":1,"ok":true,"values":[1,]}"#,
            r#"{"id":1,"ok":true}x"#,
        ] {
            assert_eq!(Reply::parse_wire(text), None, "accepted: {text}");
        }
    }

    #[test]
    fn handshake_frames_round_trip() {
        assert_eq!(parse_hello(&hello_json(PROTOCOL_VERSION)), Some(1));
        assert_eq!(
            parse_handshake_answer(&welcome_json(16, 4096)),
            Some(Ok((16, 4096)))
        );
        assert_eq!(
            parse_handshake_answer(&reject_json("version_mismatch")),
            Some(Err("version_mismatch".into()))
        );
    }
}
