//! The remote client: mirrors the in-process [`ClientHandle`] API over a
//! wire connection.
//!
//! One [`RemoteClientHandle`] owns one connection. Requests are
//! multiplexed by client-chosen ids: a submit or scan returns a ticket
//! immediately (the frame is written under a writer lock), and a single
//! **reader thread** resolves tickets as reply frames arrive, in whatever
//! order the server finishes them. If the connection dies — reset, server
//! shutdown, [`kill`](RemoteClientHandle::kill) — every outstanding ticket
//! resolves with [`WireError::ConnectionLost`] rather than hanging: a
//! caller blocked on `wait()` always gets an answer.
//!
//! The error surface is wider than in-process: `Busy` and `Closed` arrive
//! asynchronously in the reply rather than synchronously from the submit
//! call, so tickets resolve `Result<_, WireError>` instead of the bare
//! value.
//!
//! [`ClientHandle`]: psnap_serve::ClientHandle

use std::collections::HashMap;
use std::future::Future;
use std::io::Write;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};

use psnap_json::Json;
use psnap_serve::{Freshness, OpCell, Ticket};

use crate::frame::{encode_frame, encode_frame_into, read_frame, read_frame_into, FrameError};
use crate::proto::{
    hello_json, parse_handshake_answer, Reply, ReplyBody, Request, RequestBody, WireErrorKind,
    PROTOCOL_VERSION,
};
use crate::stream::Stream;

/// Why a remote operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The server's ingestion queue for this connection was full — the
    /// wire form of [`SubmitError::Busy`](psnap_serve::SubmitError::Busy).
    /// Back off and retry.
    Busy,
    /// The service (or this connection's intake) is shut down.
    Closed,
    /// The request was rejected as malformed or out of range — by the
    /// server, or client-side before writing when its encoded frame
    /// exceeds the server's advertised cap (see
    /// [`max_frame`](RemoteClientHandle::max_frame)).
    BadRequest,
    /// The connection died with this request outstanding. The request may
    /// or may not have been applied server-side.
    ConnectionLost(String),
    /// The peer violated the protocol (handshake rejected, undecodable
    /// reply, version mismatch).
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Busy => write!(f, "server busy"),
            WireError::Closed => write!(f, "service closed"),
            WireError::BadRequest => write!(f, "bad request"),
            WireError::ConnectionLost(why) => write!(f, "connection lost: {why}"),
            WireError::Protocol(why) => write!(f, "protocol error: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireErrorKind> for WireError {
    fn from(kind: WireErrorKind) -> WireError {
        match kind {
            WireErrorKind::Busy => WireError::Busy,
            WireErrorKind::Closed => WireError::Closed,
            WireErrorKind::BadRequest => WireError::BadRequest,
        }
    }
}

type ReplyCell = Arc<OpCell<Result<ReplyBody, WireError>>>;

/// The client's outbound buffer for corked mode: while corked, request
/// frames accumulate here and go out in one write on
/// [`RemoteClientHandle::flush`].
struct OutBuf {
    corked: bool,
    buf: Vec<u8>,
}

struct ClientInner {
    /// For severing the connection (kill / close).
    stream: Stream,
    writer: Mutex<Stream>,
    out: Mutex<OutBuf>,
    /// Outstanding request id → its reply cell. The reader thread resolves
    /// entries; a dead connection resolves them all with `ConnectionLost`.
    pending: Mutex<HashMap<u64, ReplyCell>>,
    next_id: AtomicU64,
    dead: AtomicBool,
    /// Replies whose id matched no pending request — a duplicated or
    /// misattributed response. Stays 0 on a correct server.
    unknown_replies: AtomicU64,
    components: usize,
    max_frame: usize,
}

impl ClientInner {
    /// Resolves every outstanding ticket with `ConnectionLost` and marks
    /// the connection dead. Idempotent; called by the reader thread on any
    /// exit path so no caller is left hanging.
    fn fail_all_pending(&self, why: &str) {
        self.dead.store(true, Ordering::Release);
        let drained: Vec<ReplyCell> = {
            let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            pending.drain().map(|(_, cell)| cell).collect()
        };
        for cell in drained {
            cell.complete(Err(WireError::ConnectionLost(why.to_string())));
        }
    }
}

/// A connected remote client. Cloneable handles are not provided — a
/// connection is one multiplexed stream; open more connections for more
/// parallelism (they get independent server-side ingestion queues).
pub struct RemoteClientHandle {
    inner: Arc<ClientInner>,
}

impl RemoteClientHandle {
    /// Connects over TCP and performs the handshake.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<RemoteClientHandle, WireError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| WireError::ConnectionLost(format!("connect: {e}")))?;
        let _ = stream.set_nodelay(true);
        Self::establish(Stream::Tcp(stream))
    }

    /// Connects over a unix-domain socket and performs the handshake.
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<RemoteClientHandle, WireError> {
        let stream = UnixStream::connect(path)
            .map_err(|e| WireError::ConnectionLost(format!("connect: {e}")))?;
        Self::establish(Stream::Unix(stream))
    }

    fn establish(stream: Stream) -> Result<RemoteClientHandle, WireError> {
        let mut reader = stream
            .try_clone()
            .map_err(|e| WireError::ConnectionLost(format!("clone: {e}")))?;
        let writer = stream
            .try_clone()
            .map_err(|e| WireError::ConnectionLost(format!("clone: {e}")))?;
        // Handshake, synchronously on the caller's thread: hello out,
        // welcome (or reject) back.
        {
            let hello = hello_json(PROTOCOL_VERSION).to_string_compact();
            let frame = encode_frame(hello.as_bytes());
            let mut w = stream
                .try_clone()
                .map_err(|e| WireError::ConnectionLost(format!("clone: {e}")))?;
            w.write_all(&frame)
                .map_err(|e| WireError::ConnectionLost(format!("handshake write: {e}")))?;
        }
        let answer = read_frame(&mut reader, crate::frame::MAX_FRAME_LEN)
            .map_err(|e| WireError::ConnectionLost(format!("handshake read: {e}")))?;
        let answer = std::str::from_utf8(&answer)
            .ok()
            .and_then(|text| Json::parse(text).ok())
            .and_then(|json| parse_handshake_answer(&json))
            .ok_or_else(|| WireError::Protocol("undecodable handshake answer".to_string()))?;
        let (components, max_frame) = match answer {
            Ok(welcome) => welcome,
            Err(reason) => return Err(WireError::Protocol(reason)),
        };
        let inner = Arc::new(ClientInner {
            stream,
            writer: Mutex::new(writer),
            out: Mutex::new(OutBuf {
                corked: false,
                buf: Vec::new(),
            }),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            unknown_replies: AtomicU64::new(0),
            components,
            max_frame,
        });
        let reader_inner = Arc::clone(&inner);
        std::thread::spawn(move || reply_reader(reader_inner, reader));
        Ok(RemoteClientHandle { inner })
    }

    /// Component space `m` advertised by the server in its welcome.
    pub fn components(&self) -> usize {
        self.inner.components
    }

    /// Frame payload cap advertised by the server. Requests whose encoded
    /// frame would exceed it fail with [`WireError::BadRequest`] before
    /// anything is written — one oversized submit must not tear down the
    /// connection under every other in-flight request.
    pub fn max_frame(&self) -> usize {
        self.inner.max_frame
    }

    /// True once the connection has died (any outstanding and future
    /// requests resolve `ConnectionLost`).
    pub fn is_dead(&self) -> bool {
        self.inner.dead.load(Ordering::Acquire)
    }

    /// Replies received whose id matched no outstanding request — each one
    /// is a duplicated or misattributed response from the server. Stays 0
    /// against a correct server; chaos harnesses assert on it.
    pub fn unknown_replies(&self) -> u64 {
        self.inner.unknown_replies.load(Ordering::Acquire)
    }

    fn send(&self, body: RequestBody) -> Result<ReplyCell, WireError> {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let text = Request { id, body }.to_wire_string();
        // Enforce the server's advertised frame cap before anything is
        // written or enqueued: server-side, an oversized frame is a
        // connection-fatal framing error that would fail every other
        // in-flight ticket with ConnectionLost. Refusing it here fails
        // just the offending request.
        if text.len() > self.inner.max_frame {
            return Err(WireError::BadRequest);
        }
        let cell: ReplyCell = OpCell::new();
        {
            // The dead check and the insert share one pending-lock critical
            // section. `fail_all_pending` marks the connection dead before
            // draining under this same lock, so either this cell lands
            // before the drain (and the drain resolves it) or the drain ran
            // first and the dead flag is visible here. Checking dead before
            // inserting (the old shape) left a window where the cell landed
            // after the drain and, if the write below still succeeded
            // against a half-closed socket, its ticket never resolved.
            let mut pending = self.inner.pending.lock().unwrap_or_else(|e| e.into_inner());
            if self.inner.dead.load(Ordering::Acquire) {
                return Err(WireError::ConnectionLost("connection is dead".to_string()));
            }
            pending.insert(id, Arc::clone(&cell));
        }
        // One buffered frame, one write: the server's reader wakes once
        // with the whole frame instead of once for the header and once for
        // the payload.
        {
            let mut out = self.inner.out.lock().unwrap_or_else(|e| e.into_inner());
            if out.corked {
                // Corked: accumulate straight into the batch buffer; the
                // bytes (and any write error) go out on the next `flush`.
                encode_frame_into(text.as_bytes(), &mut out.buf);
                return Ok(cell);
            }
        }
        let frame = encode_frame(text.as_bytes());
        let wrote = {
            let mut w = self.inner.writer.lock().unwrap_or_else(|e| e.into_inner());
            w.write_all(&frame)
        };
        if let Err(e) = wrote {
            self.inner
                .pending
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&id);
            return Err(WireError::ConnectionLost(format!("write: {e}")));
        }
        Ok(cell)
    }

    /// Corks (or uncorks) the connection's writes. While corked, requests
    /// accumulate client-side and go out in one write on
    /// [`flush`](RemoteClientHandle::flush) — a pipelining client amortizes
    /// its syscalls (and the server reader's wake-ups) across the batch.
    /// Uncorking flushes. A corked client that never flushes sends nothing:
    /// the cork is for callers driving an explicit issue-then-flush loop.
    pub fn set_corked(&self, corked: bool) -> Result<(), WireError> {
        {
            let mut out = self.inner.out.lock().unwrap_or_else(|e| e.into_inner());
            out.corked = corked;
        }
        if corked {
            Ok(())
        } else {
            self.flush()
        }
    }

    /// Writes out every corked request frame. A write failure here kills
    /// the connection: all outstanding tickets (buffered or on the wire)
    /// resolve `ConnectionLost`.
    pub fn flush(&self) -> Result<(), WireError> {
        let bytes = {
            let mut out = self.inner.out.lock().unwrap_or_else(|e| e.into_inner());
            if out.buf.is_empty() {
                return Ok(());
            }
            std::mem::take(&mut out.buf)
        };
        let wrote = {
            let mut w = self.inner.writer.lock().unwrap_or_else(|e| e.into_inner());
            w.write_all(&bytes)
        };
        if let Err(e) = wrote {
            let why = format!("flush write: {e}");
            self.inner.fail_all_pending(&why);
            return Err(WireError::ConnectionLost(why));
        }
        Ok(())
    }

    /// Submits one write. The ticket resolves once the write is applied
    /// server-side (or with the wire error the server answered).
    pub fn submit(&self, component: usize, value: u64) -> Result<RemoteSubmitTicket, WireError> {
        self.submit_batch(vec![(component, value)])
    }

    /// Submits a batch of writes, applied as one atomic `update_many`.
    pub fn submit_batch(&self, writes: Vec<(usize, u64)>) -> Result<RemoteSubmitTicket, WireError> {
        let cell = self.send(RequestBody::Submit { writes })?;
        Ok(RemoteSubmitTicket {
            inner: Ticket::new(cell),
        })
    }

    /// Requests a partial scan; the ticket resolves with one value per
    /// requested component, in request order.
    pub fn scan(
        &self,
        components: Vec<usize>,
        freshness: Freshness,
    ) -> Result<RemoteScanTicket, WireError> {
        let cell = self.send(RequestBody::Scan {
            components,
            freshness,
        })?;
        Ok(RemoteScanTicket {
            inner: Ticket::new(cell),
        })
    }

    /// Blocking submit: send and wait for the applied acknowledgement.
    pub fn submit_blocking(&self, component: usize, value: u64) -> Result<(), WireError> {
        self.submit(component, value)?.wait()
    }

    /// Blocking scan.
    pub fn scan_blocking(
        &self,
        components: Vec<usize>,
        freshness: Freshness,
    ) -> Result<Vec<u64>, WireError> {
        self.scan(components, freshness)?.wait()
    }

    /// Fetches the server's observability snapshot (blocking).
    pub fn stats(&self) -> Result<Json, WireError> {
        let cell = self.send(RequestBody::Stats)?;
        match Ticket::new(cell).wait() {
            Ok(ReplyBody::Stats(json)) => Ok(json),
            Ok(_) => Err(WireError::Protocol(
                "stats reply carried no stats".to_string(),
            )),
            Err(e) => Err(e),
        }
    }

    /// Graceful close: half-close the sending direction so the server
    /// drains in-flight requests and flushes their replies, then wait for
    /// the reader to see the server's EOF (all tickets resolved).
    pub fn close(self) {
        // Corked requests still buffered client-side go out first; their
        // tickets are outstanding and the drain below waits on them.
        let _ = self.flush();
        self.inner.stream.shutdown(Shutdown::Write);
        // The reader thread exits once the server closes its side; bound
        // the wait so a wedged server cannot hang the caller forever.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while !self.inner.dead.load(Ordering::Acquire)
            && !self
                .inner
                .pending
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        self.inner.stream.shutdown(Shutdown::Both);
    }

    /// Abrupt close (chaos testing): sever both directions immediately.
    /// Outstanding tickets resolve `ConnectionLost`; requests the server
    /// already accepted still apply and resolve server-side.
    pub fn kill(&self) {
        self.inner.stream.shutdown(Shutdown::Both);
    }
}

/// The reader thread: resolves pending tickets as reply frames arrive; on
/// any exit path fails everything still outstanding so no waiter hangs.
fn reply_reader(inner: Arc<ClientInner>, reader: Stream) {
    // Buffered: a batched pump flush from the server costs one read syscall
    // per buffer fill instead of two per frame (header + payload).
    let mut reader = std::io::BufReader::with_capacity(64 * 1024, reader);
    let mut payload = Vec::new();
    loop {
        match read_frame_into(&mut reader, inner.max_frame, &mut payload) {
            Ok(()) => {}
            Err(FrameError::Eof) => {
                inner.fail_all_pending("server closed the connection");
                return;
            }
            Err(e) => {
                inner.fail_all_pending(&format!("read: {e}"));
                return;
            }
        };
        // Fast path first (the canonical shape), general JSON route for
        // everything else (stats replies in particular).
        let reply = std::str::from_utf8(&payload).ok().and_then(|text| {
            Reply::parse_wire(text).or_else(|| {
                Json::parse(text)
                    .ok()
                    .and_then(|json| Reply::from_json(&json))
            })
        });
        let Some(reply) = reply else {
            inner.fail_all_pending("undecodable reply frame");
            inner.stream.shutdown(Shutdown::Both);
            return;
        };
        let cell = inner
            .pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&reply.id);
        match cell {
            Some(cell) => cell.complete(reply.result.map_err(WireError::from)),
            // An unknown id is a duplicated or misattributed response (the
            // server's id-0 bad_request for an unattributable frame also
            // lands here); count it so chaos harnesses can assert zero.
            None => {
                inner.unknown_replies.fetch_add(1, Ordering::AcqRel);
            }
        }
    }
}

impl Drop for ClientInner {
    fn drop(&mut self) {
        self.stream.shutdown(Shutdown::Both);
    }
}

/// Ticket for a remote submit; resolves `Ok(())` once applied server-side.
pub struct RemoteSubmitTicket {
    inner: Ticket<Result<ReplyBody, WireError>>,
}

impl RemoteSubmitTicket {
    /// Blocks until the reply arrives (or the connection dies).
    pub fn wait(self) -> Result<(), WireError> {
        map_submit(self.inner.wait())
    }
}

impl Future for RemoteSubmitTicket {
    type Output = Result<(), WireError>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut self.inner).poll(cx).map(map_submit)
    }
}

fn map_submit(reply: Result<ReplyBody, WireError>) -> Result<(), WireError> {
    match reply {
        Ok(ReplyBody::Submitted) => Ok(()),
        Ok(_) => Err(WireError::Protocol(
            "submit reply carried unexpected body".to_string(),
        )),
        Err(e) => Err(e),
    }
}

/// Ticket for a remote scan; resolves with the scanned values.
pub struct RemoteScanTicket {
    inner: Ticket<Result<ReplyBody, WireError>>,
}

impl RemoteScanTicket {
    /// Blocks until the reply arrives (or the connection dies).
    pub fn wait(self) -> Result<Vec<u64>, WireError> {
        map_scan(self.inner.wait())
    }
}

impl Future for RemoteScanTicket {
    type Output = Result<Vec<u64>, WireError>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut self.inner).poll(cx).map(map_scan)
    }
}

fn map_scan(reply: Result<ReplyBody, WireError>) -> Result<Vec<u64>, WireError> {
    match reply {
        Ok(ReplyBody::Values(values)) => Ok(values),
        Ok(_) => Err(WireError::Protocol(
            "scan reply carried unexpected body".to_string(),
        )),
        Err(e) => Err(e),
    }
}
