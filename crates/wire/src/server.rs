//! The wire server: hosts a [`SnapshotService`] over TCP or unix-domain
//! sockets.
//!
//! # Architecture
//!
//! One **acceptor task** runs on the service's hand-rolled executor: it
//! polls a non-blocking listener, sleeping on the executor's timer wheel
//! between polls, and hands each accepted socket to a connection. Each
//! **connection** owns
//!
//! * its own [`ClientHandle`] — a per-connection bounded ingestion queue,
//!   so one slow or hostile connection exhausts *its* queue and sees
//!   `busy` replies while other connections keep their own capacity (the
//!   in-process backpressure contract, verbatim, over the wire);
//! * a blocking **reader thread** that decodes frames, roots a
//!   [`SpanKind::WireRequest`] span at decode time (the in-process request
//!   tree assembles beneath it), and dispatches requests;
//! * a **reply pump** on its own writer thread: one per connection,
//!   draining a FIFO of in-flight tickets. Consecutive completed replies
//!   are serialized into one buffer and flushed with a single write, so a
//!   burst of completions costs one wake-up and one syscall instead of
//!   one of each per reply. Flushes block the pump's own thread only —
//!   a peer that stops reading its replies wedges *its* connection
//!   (bounded by the configured write timeout, which severs it), never
//!   an executor worker, so other connections and the service's own
//!   pipeline tasks keep running;
//! * an optional **idle watchdog task** on the executor: a far-deadline
//!   timer that severs connections with no activity — no inbound frame,
//!   no outbound flush, nothing in flight — for the configured timeout.
//!   A quiet peer waiting on a slow in-flight request is active, not
//!   idle, and is never severed mid-request.
//!
//! # Lifecycle
//!
//! Handshake first (`hello`/`welcome`, protocol version checked), then
//! requests. A peer that half-closes its sending direction stops intake;
//! in-flight tickets resolve, their replies flush, and only then does the
//! server close its side. [`WireServer::shutdown`] performs the same drain
//! across every connection — stop the acceptor, refuse new work with
//! `closed`, wait for in-flight tickets, flush, then close the listener.
//! A connection that dies mid-request leaves its accepted submissions in
//! the service pipeline — they are applied and their tickets resolve
//! server-side, so the service's `accepted == resolved` accounting holds
//! no matter how rudely a peer disconnects.

use std::collections::VecDeque;
use std::future::Future;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

use psnap_core::PartialSnapshot;
use psnap_json::Json;
use psnap_obs::{span, Span, SpanKind};
use psnap_serve::{ClientHandle, Executor, Handle, OpCell, SnapshotService, SubmitError, Ticket};

use crate::frame::{
    encode_frame, encode_frame_into, read_frame, read_frame_into, FrameError, MAX_FRAME_LEN,
};
use crate::proto::{
    parse_hello, reject_json, welcome_json, Reply, ReplyBody, Request, RequestBody, WireErrorKind,
    PROTOCOL_VERSION,
};
use crate::stream::Stream;

/// Wire server tuning knobs.
#[derive(Clone, Debug)]
pub struct WireServerConfig {
    /// Per-frame payload cap, advertised in the welcome frame.
    pub max_frame_len: usize,
    /// Sever connections with no activity (inbound frame, outbound reply
    /// flush, or in-flight request) for this long. `None` disables the
    /// watchdog.
    pub idle_timeout: Option<Duration>,
    /// How long the acceptor sleeps between listener polls.
    pub accept_poll: Duration,
    /// Handshake read deadline: a connection that does not complete its
    /// hello within this window is dropped.
    pub handshake_timeout: Duration,
    /// Sever a connection whose peer has stopped reading: a reply write
    /// that cannot make progress for this long fails and tears the
    /// connection down (its tickets still resolve server-side). `None`
    /// lets a non-reading peer block its own writer thread indefinitely.
    pub write_timeout: Option<Duration>,
}

impl Default for WireServerConfig {
    fn default() -> Self {
        WireServerConfig {
            max_frame_len: MAX_FRAME_LEN,
            idle_timeout: None,
            accept_poll: Duration::from_millis(1),
            handshake_timeout: Duration::from_secs(5),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                let _ = stream.set_nodelay(true);
                Ok(Stream::Tcp(stream))
            }
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(Stream::Unix(stream))
            }
        }
    }
}

/// A ticket the reply pump is waiting on, paired with the reply body it
/// produces on completion.
enum PendingTicket {
    Submit(Ticket<()>),
    Scan(Ticket<Vec<u64>>),
}

impl PendingTicket {
    fn poll_body(&mut self, cx: &mut Context<'_>) -> Poll<ReplyBody> {
        match self {
            PendingTicket::Submit(t) => Pin::new(t).poll(cx).map(|()| ReplyBody::Submitted),
            PendingTicket::Scan(t) => Pin::new(t).poll(cx).map(ReplyBody::Values),
        }
    }
}

/// One in-flight request queued for the reply pump.
struct PendingReply {
    id: u64,
    ticket: PendingTicket,
    /// Held, never read: the wire span travels with the request and ends
    /// (by drop) once its reply has been serialized — the flight-recorder
    /// tree completes when the wire layer is done with the request.
    _span: Span,
}

/// Awaits a [`PendingTicket`] to completion.
struct TicketBody<'a>(&'a mut PendingTicket);

impl Future for TicketBody<'_> {
    type Output = ReplyBody;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.0.poll_body(cx)
    }
}

/// Polls a [`PendingTicket`] exactly once: `Some(body)` if it is already
/// complete, `None` if it is still pending (the pump flushes its write
/// buffer before suspending on a genuinely-pending ticket).
struct TryTicketBody<'a>(&'a mut PendingTicket);

impl Future for TryTicketBody<'_> {
    type Output = Option<ReplyBody>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.0.poll_body(cx) {
            Poll::Ready(body) => Poll::Ready(Some(body)),
            Poll::Pending => Poll::Ready(None),
        }
    }
}

/// The reply pump's FIFO, shared between the reader thread (producer) and
/// the pump task (consumer).
struct PumpQueue {
    entries: VecDeque<PendingReply>,
    /// Set while the pump is parked on an empty queue; the producer rings
    /// it to wake the pump.
    doorbell: Option<Arc<OpCell<()>>>,
    /// Set when the reader thread exits: the pump drains what is left and
    /// stops.
    closed: bool,
}

/// Flush the pump's write buffer once it crosses this size even if more
/// completed replies are queued, bounding reply latency under sustained
/// bursts.
const PUMP_FLUSH_BYTES: usize = 32 * 1024;

/// Per-connection shared state, reachable from the reader thread, the
/// reply pump, the idle watchdog, and the server's drain.
struct Conn {
    /// The accepted socket (this handle is used for severing only; reads
    /// and writes go through clones).
    stream: Stream,
    /// Serialized reply writer (inline error replies from the reader
    /// thread interleave with pump flushes; ids correlate).
    writer: Mutex<Stream>,
    /// Requests accepted but not yet replied to, with a condvar for the
    /// drain to wait on.
    in_flight: Mutex<u64>,
    drained: Condvar,
    /// Ticket-backed requests awaiting their reply, in dispatch order.
    pump: Mutex<PumpQueue>,
    /// Set once the connection stops accepting new requests (half-close,
    /// idle severance, or server drain); later requests get `closed`.
    intake_closed: AtomicBool,
    /// The server's clock epoch (shared with [`ServerShared`]).
    epoch: Instant,
    /// Nanoseconds (since the epoch) of the last activity: inbound frame
    /// or successfully flushed outbound reply. The idle watchdog also
    /// treats in-flight requests as activity, so this only has to cover
    /// the quiet gaps between requests.
    last_activity_ns: AtomicU64,
    /// Set by the reader thread on exit; the drain polls it.
    finished: AtomicBool,
}

impl Conn {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn touch(&self) {
        self.last_activity_ns.store(self.now_ns(), Ordering::Release);
    }

    /// Stops intake and severs both socket directions; the reader wakes
    /// with an error and tears the connection down.
    fn sever(&self) {
        self.intake_closed.store(true, Ordering::Release);
        self.stream.shutdown(Shutdown::Both);
    }

    fn in_flight_count(&self) -> u64 {
        *self.in_flight.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn begin_request(&self) {
        *self.in_flight.lock().unwrap_or_else(|e| e.into_inner()) += 1;
    }

    fn end_requests(&self, completed: u64) {
        if completed == 0 {
            return;
        }
        let mut n = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
        *n -= completed;
        if *n == 0 {
            self.drained.notify_all();
        }
    }

    /// Hands one ticket-backed request to the reply pump (counted as in
    /// flight until its reply frame is flushed).
    fn push_reply(&self, entry: PendingReply) {
        self.begin_request();
        let mut q = self.pump.lock().unwrap_or_else(|e| e.into_inner());
        q.entries.push_back(entry);
        if let Some(bell) = q.doorbell.take() {
            bell.complete(());
        }
    }

    /// Tells the pump to drain what is queued and exit (reader is gone; no
    /// more entries can arrive).
    fn close_pump(&self) {
        let mut q = self.pump.lock().unwrap_or_else(|e| e.into_inner());
        q.closed = true;
        if let Some(bell) = q.doorbell.take() {
            bell.complete(());
        }
    }

    /// Blocks until no request is in flight (bounded by `deadline`).
    fn wait_drained(&self, deadline: Instant) {
        let mut n = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
        while *n > 0 {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (guard, _) = self
                .drained
                .wait_timeout(n, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            n = guard;
        }
    }

    fn send_reply(&self, reply: &Reply) {
        // One buffered frame, one write: the peer's reader wakes once with
        // the whole frame instead of once for the header and once for the
        // payload.
        let frame = encode_frame(reply.to_wire_string().as_bytes());
        let ok = {
            let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
            w.write_all(&frame).is_ok()
        };
        if ok {
            self.touch();
        } else {
            // Dead peer, or one that stopped reading long enough to trip
            // the write timeout: sever so the connection tears down
            // instead of queueing more replies it will never take.
            self.sever();
        }
    }
}

/// The per-connection reply pump: drains ticket-backed requests in dispatch
/// order, serializing consecutive completed replies into one buffer and
/// flushing them with a single write. The buffer is flushed before the pump
/// suspends on a still-pending ticket (no completed reply waits behind a
/// pending one) and when it crosses [`PUMP_FLUSH_BYTES`].
///
/// Runs under [`block_on`](psnap_serve::block_on) on a dedicated writer
/// thread, NOT as an executor task: flushes block on the socket, and a
/// peer that pipelines requests and then stops reading would otherwise
/// pin an executor worker (two such peers stall the default 2-worker
/// executor — and with it the service's own drain/scan loops — for every
/// client). On its own thread the stall is confined to this connection,
/// and the socket write timeout severs it.
async fn reply_pump(conn: Arc<Conn>) {
    enum Step {
        Entry(Box<PendingReply>),
        Park(Arc<OpCell<()>>),
        Exit,
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut unflushed = 0u64;
    let flush = |buf: &mut Vec<u8>, unflushed: &mut u64| {
        if *unflushed == 0 {
            return;
        }
        let ok = {
            let mut w = conn.writer.lock().unwrap_or_else(|e| e.into_inner());
            // A dead peer makes this fail; the tickets behind these replies
            // have resolved either way, so the drain accounting proceeds.
            w.write_all(buf).is_ok()
        };
        buf.clear();
        conn.end_requests(*unflushed);
        *unflushed = 0;
        if ok {
            // An outbound flush is activity: the idle watchdog must not
            // sever a peer the moment its last slow reply lands.
            conn.touch();
        } else {
            // Write failed or timed out (peer gone, or it stopped reading
            // its replies): sever so the reader tears the connection down
            // rather than letting more replies pile up behind a socket
            // that will never drain.
            conn.sever();
        }
    };
    loop {
        let step = {
            let mut q = conn.pump.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = q.entries.pop_front() {
                Step::Entry(Box::new(entry))
            } else if q.closed {
                Step::Exit
            } else {
                let bell = OpCell::new();
                q.doorbell = Some(Arc::clone(&bell));
                Step::Park(bell)
            }
        };
        match step {
            Step::Exit => {
                flush(&mut buf, &mut unflushed);
                return;
            }
            Step::Park(bell) => {
                flush(&mut buf, &mut unflushed);
                Ticket::new(bell).await;
            }
            Step::Entry(mut entry) => {
                let body = match TryTicketBody(&mut entry.ticket).await {
                    Some(body) => body,
                    None => {
                        // Genuinely pending: everything serialized so far
                        // goes out before we suspend.
                        flush(&mut buf, &mut unflushed);
                        TicketBody(&mut entry.ticket).await
                    }
                };
                let reply = Reply {
                    id: entry.id,
                    result: Ok(body),
                };
                encode_frame_into(reply.to_wire_string().as_bytes(), &mut buf);
                unflushed += 1;
                drop(entry); // ends the wire span: the request tree is complete
                if buf.len() >= PUMP_FLUSH_BYTES {
                    flush(&mut buf, &mut unflushed);
                }
            }
        }
    }
}

struct ServerShared<S>
where
    S: PartialSnapshot<u64> + 'static,
{
    service: Arc<SnapshotService<u64, S>>,
    config: WireServerConfig,
    handle: Handle,
    epoch: Instant,
    stop: AtomicBool,
    conns: Mutex<Vec<Arc<Conn>>>,
    acceptor_done: Arc<OpCell<()>>,
}

impl<S> ServerShared<S>
where
    S: PartialSnapshot<u64> + 'static,
{
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A listening wire endpoint hosting one [`SnapshotService`]. Dropping the
/// server (or calling [`shutdown`](WireServer::shutdown)) drains in-flight
/// requests before the listener closes. The service itself is shared and
/// stays up — in-process clients and other endpoints are unaffected.
pub struct WireServer<S>
where
    S: PartialSnapshot<u64> + 'static,
{
    shared: Arc<ServerShared<S>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    shut: Mutex<bool>,
}

impl<S> WireServer<S>
where
    S: PartialSnapshot<u64> + 'static,
{
    /// Starts a TCP endpoint on `addr` (use port 0 for an ephemeral port;
    /// the bound address is available via [`local_addr`]).
    ///
    /// [`local_addr`]: WireServer::local_addr
    pub fn serve_tcp(
        service: Arc<SnapshotService<u64, S>>,
        addr: &str,
        config: WireServerConfig,
        executor: &Executor,
    ) -> std::io::Result<WireServer<S>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let tcp_addr = Some(listener.local_addr()?);
        Ok(Self::start(
            service,
            Listener::Tcp(listener),
            tcp_addr,
            None,
            config,
            executor,
        ))
    }

    /// Starts a unix-domain endpoint at `path` (removed first if it is a
    /// stale socket file).
    pub fn serve_unix(
        service: Arc<SnapshotService<u64, S>>,
        path: &Path,
        config: WireServerConfig,
        executor: &Executor,
    ) -> std::io::Result<WireServer<S>> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        Ok(Self::start(
            service,
            Listener::Unix(listener),
            None,
            Some(path.to_path_buf()),
            config,
            executor,
        ))
    }

    fn start(
        service: Arc<SnapshotService<u64, S>>,
        listener: Listener,
        tcp_addr: Option<SocketAddr>,
        unix_path: Option<PathBuf>,
        config: WireServerConfig,
        executor: &Executor,
    ) -> WireServer<S> {
        let shared = Arc::new(ServerShared {
            service,
            config,
            handle: executor.handle(),
            epoch: Instant::now(),
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            acceptor_done: OpCell::new(),
        });
        let accept_shared = Arc::clone(&shared);
        executor.spawn(async move {
            acceptor(accept_shared, listener).await;
        });
        WireServer {
            shared,
            tcp_addr,
            unix_path,
            shut: Mutex::new(false),
        }
    }

    /// The bound TCP address, if this is a TCP endpoint.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Live connections (racy gauge; finished connections are pruned by
    /// the acceptor's next pass and by shutdown).
    pub fn connection_count(&self) -> usize {
        self.shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|c| !c.finished.load(Ordering::Acquire))
            .count()
    }

    /// Graceful drain: stop accepting connections and new requests, let
    /// every in-flight ticket resolve and its reply flush, then close all
    /// sockets and the listener. Bounded by `timeout` per phase; idempotent.
    pub fn shutdown(&self, timeout: Duration) {
        let mut done = self.shut.lock().unwrap_or_else(|e| e.into_inner());
        if *done {
            return;
        }
        *done = true;
        self.shared.stop.store(true, Ordering::Release);
        // Wait for the acceptor to exit: after this no connection can be
        // added behind the drain's back.
        let _ = psnap_serve::block_on_timeout(
            Ticket::new(Arc::clone(&self.shared.acceptor_done)),
            timeout,
        );
        let conns: Vec<Arc<Conn>> = self
            .shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        // Phase 1: stop intake everywhere (later requests answer `closed`).
        for conn in &conns {
            conn.intake_closed.store(true, Ordering::Release);
        }
        // Phase 2: wait for in-flight tickets to resolve and flush.
        let deadline = Instant::now() + timeout;
        for conn in &conns {
            conn.wait_drained(deadline);
        }
        // Phase 3: sever. Readers blocked in `read` wake with an error and
        // finish; the listener (and any socket file) goes away with self.
        for conn in &conns {
            conn.stream.shutdown(Shutdown::Both);
        }
        let deadline = Instant::now() + timeout;
        for conn in &conns {
            while !conn.finished.load(Ordering::Acquire) && Instant::now() < deadline {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        self.shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl<S> Drop for WireServer<S>
where
    S: PartialSnapshot<u64> + 'static,
{
    fn drop(&mut self) {
        self.shutdown(Duration::from_secs(5));
    }
}

/// The acceptor task: polls the non-blocking listener, sleeping on the
/// executor's timer wheel between polls, and spawns a reader thread per
/// accepted connection.
async fn acceptor<S>(shared: Arc<ServerShared<S>>, listener: Listener)
where
    S: PartialSnapshot<u64> + 'static,
{
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(stream) => {
                spawn_connection(&shared, stream);
                // Prune finished connections so a long-lived server with
                // churning clients does not accumulate dead entries.
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .retain(|c| !c.finished.load(Ordering::Acquire));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                shared.handle.sleep(shared.config.accept_poll).await;
            }
            Err(_) => {
                // Transient accept errors (aborted handshakes, fd pressure):
                // back off one poll interval rather than spinning.
                shared.handle.sleep(shared.config.accept_poll).await;
            }
        }
    }
    shared.acceptor_done.complete(());
}

fn spawn_connection<S>(shared: &Arc<ServerShared<S>>, stream: Stream)
where
    S: PartialSnapshot<u64> + 'static,
{
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(Conn {
        stream,
        writer: Mutex::new(writer),
        in_flight: Mutex::new(0),
        drained: Condvar::new(),
        pump: Mutex::new(PumpQueue {
            entries: VecDeque::new(),
            doorbell: None,
            closed: false,
        }),
        intake_closed: AtomicBool::new(false),
        epoch: shared.epoch,
        last_activity_ns: AtomicU64::new(shared.now_ns()),
        finished: AtomicBool::new(false),
    });
    // One socket-level write timeout covers every clone (pump flushes and
    // the reader thread's inline error replies alike): a peer that stops
    // reading can wedge only its own connection, and only this long.
    conn.stream.set_write_timeout(shared.config.write_timeout);
    shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::clone(&conn));
    // The reply pump: one dedicated writer thread for the connection's
    // lifetime (see `reply_pump` — its flushes block on the socket, so it
    // must not occupy an executor worker).
    let conn_pump = Arc::clone(&conn);
    std::thread::spawn(move || psnap_serve::block_on(reply_pump(conn_pump)));
    // Idle watchdog: a far-deadline timer on the executor's wheel (an idle
    // timeout of seconds spans many 256-slot laps at the default
    // granularity). It re-arms after activity — inbound frames, outbound
    // reply flushes, or requests still in flight — and severs a connection
    // only once all three have been absent for the timeout.
    if let Some(idle) = shared.config.idle_timeout {
        let conn_wd = Arc::clone(&conn);
        let handle = shared.handle.clone();
        shared.handle.spawn(async move {
            let idle_ns = idle.as_nanos() as u64;
            loop {
                if conn_wd.finished.load(Ordering::Acquire)
                    || conn_wd.intake_closed.load(Ordering::Acquire)
                {
                    return;
                }
                let age = conn_wd
                    .now_ns()
                    .saturating_sub(conn_wd.last_activity_ns.load(Ordering::Acquire));
                if age < idle_ns {
                    handle.sleep(Duration::from_nanos(idle_ns - age)).await;
                } else if conn_wd.in_flight_count() > 0 {
                    // Quiet wire, but a request is still in flight (a slow
                    // scan, a gated drain): the connection is active, not
                    // idle. Its reply flush will stamp fresh activity; a
                    // peer that never reads that reply is the write
                    // timeout's problem, not ours.
                    handle.sleep(idle).await;
                } else {
                    // Sever both directions: the reader wakes with an error
                    // and tears the connection down.
                    conn_wd.sever();
                    return;
                }
            }
        });
    }
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        run_connection(&shared, &conn, reader);
        // No more dispatches can arrive: let the pump drain and exit.
        conn.close_pump();
        conn.finished.store(true, Ordering::Release);
        conn.drained.notify_all();
    });
}

/// The connection reader: handshake, then the request loop. Runs on its own
/// OS thread (frame reads block); everything it dispatches completes on the
/// executor.
fn run_connection<S>(shared: &Arc<ServerShared<S>>, conn: &Arc<Conn>, mut reader: Stream)
where
    S: PartialSnapshot<u64> + 'static,
{
    // --- Handshake -------------------------------------------------------
    reader.set_read_timeout(Some(shared.config.handshake_timeout));
    let hello = match read_frame(&mut reader, shared.config.max_frame_len) {
        Ok(bytes) => bytes,
        Err(_) => {
            conn.stream.shutdown(Shutdown::Both);
            return;
        }
    };
    let version = std::str::from_utf8(&hello)
        .ok()
        .and_then(|text| Json::parse(text).ok())
        .and_then(|json| parse_hello(&json));
    match version {
        Some(v) if v == PROTOCOL_VERSION => {
            let welcome = welcome_json(shared.service.components(), shared.config.max_frame_len)
                .to_string_compact();
            let frame = encode_frame(welcome.as_bytes());
            let mut w = conn.writer.lock().unwrap_or_else(|e| e.into_inner());
            if w.write_all(&frame).is_err() {
                drop(w);
                conn.stream.shutdown(Shutdown::Both);
                return;
            }
        }
        _ => {
            let reject = reject_json("version_mismatch").to_string_compact();
            let frame = encode_frame(reject.as_bytes());
            let mut w = conn.writer.lock().unwrap_or_else(|e| e.into_inner());
            let _ = w.write_all(&frame);
            drop(w);
            conn.stream.shutdown(Shutdown::Both);
            return;
        }
    }
    reader.set_read_timeout(None);
    conn.touch();

    // --- Request loop ----------------------------------------------------
    // Buffered from here on: a burst of pipelined frames costs one read
    // syscall per buffer fill instead of two per frame (header + payload).
    let mut reader = std::io::BufReader::with_capacity(64 * 1024, reader);
    let client = shared.service.client();
    let components = shared.service.components();
    let mut payload = Vec::new();
    loop {
        match read_frame_into(&mut reader, shared.config.max_frame_len, &mut payload) {
            Ok(()) => {}
            Err(FrameError::Eof) => {
                // Half-close: the peer is done sending. Stop intake, let
                // in-flight replies flush, close our side, done.
                conn.intake_closed.store(true, Ordering::Release);
                conn.wait_drained(Instant::now() + Duration::from_secs(30));
                conn.stream.shutdown(Shutdown::Both);
                return;
            }
            Err(_) => {
                // Died mid-frame (reset, truncation, oversized, idle
                // severance). Accepted submissions are already in the
                // service pipeline and will resolve server-side; nothing
                // can be replied on a broken framing layer.
                conn.intake_closed.store(true, Ordering::Release);
                conn.stream.shutdown(Shutdown::Both);
                return;
            }
        };
        conn.touch();

        // Root the request tree at frame decode: the service's own request
        // root (ingest / scan request) nests beneath this span, so a wire
        // request shows up in the flight recorder as one tree from byte
        // arrival to reply.
        let mut wire_span = Span::root(SpanKind::WireRequest);

        // Fast path first: the canonical document shape parses with a
        // strict scanner; anything else (whitespace, reordered keys,
        // foreign clients) takes the general JSON route.
        let request = std::str::from_utf8(&payload).ok().and_then(|text| {
            Request::parse_wire(text).or_else(|| {
                Json::parse(text)
                    .ok()
                    .and_then(|json| Request::from_json(&json))
            })
        });
        let Some(request) = request else {
            // Undecodable request: answer `bad_request` with id 0 (the id,
            // if any, did not parse) and keep the connection — framing is
            // intact, only this payload was malformed.
            conn.send_reply(&Reply {
                id: 0,
                result: Err(WireErrorKind::BadRequest),
            });
            continue;
        };
        wire_span.set_args(request.body.opcode(), payload.len() as u64);

        if conn.intake_closed.load(Ordering::Acquire) {
            conn.send_reply(&Reply {
                id: request.id,
                result: Err(WireErrorKind::Closed),
            });
            continue;
        }
        dispatch(shared, conn, &client, components, request, wire_span);
    }
}

/// Validates and dispatches one decoded request. Ticket-backed completions
/// for submits and scans go to the connection's reply pump; errors and
/// stats answer inline from the reader thread.
fn dispatch<S>(
    shared: &Arc<ServerShared<S>>,
    conn: &Arc<Conn>,
    client: &ClientHandle<u64, S>,
    components: usize,
    request: Request,
    wire_span: Span,
) where
    S: PartialSnapshot<u64> + 'static,
{
    let id = request.id;
    // The wire span is entered around the service call so the in-process
    // request root parents beneath it; it then travels into the reply pump
    // and ends once the reply frame is serialized — the tree completes when
    // the wire layer is truly done with the request.
    match request.body {
        RequestBody::Submit { writes } => {
            if writes.iter().any(|(c, _)| *c >= components) {
                conn.send_reply(&Reply {
                    id,
                    result: Err(WireErrorKind::BadRequest),
                });
                return;
            }
            let pushed = {
                let _in = span::enter(wire_span.context());
                client.submit_batch(writes)
            };
            match pushed {
                Ok(ticket) => conn.push_reply(PendingReply {
                    id,
                    ticket: PendingTicket::Submit(ticket),
                    _span: wire_span,
                }),
                Err(e) => conn.send_reply(&Reply {
                    id,
                    result: Err(submit_error(e)),
                }),
            }
        }
        RequestBody::Scan {
            components: requested,
            freshness,
        } => {
            if requested.iter().any(|c| *c >= components) {
                conn.send_reply(&Reply {
                    id,
                    result: Err(WireErrorKind::BadRequest),
                });
                return;
            }
            let pushed = {
                let _in = span::enter(wire_span.context());
                client.scan(requested, freshness)
            };
            match pushed {
                Ok(ticket) => conn.push_reply(PendingReply {
                    id,
                    ticket: PendingTicket::Scan(ticket),
                    _span: wire_span,
                }),
                Err(e) => conn.send_reply(&Reply {
                    id,
                    result: Err(submit_error(e)),
                }),
            }
        }
        RequestBody::Stats => {
            let stats = shared.service.obs().to_json();
            conn.send_reply(&Reply {
                id,
                result: Ok(ReplyBody::Stats(stats)),
            });
        }
    }
}

fn submit_error(e: SubmitError) -> WireErrorKind {
    match e {
        SubmitError::Busy => WireErrorKind::Busy,
        SubmitError::Closed => WireErrorKind::Closed,
    }
}
