//! End-to-end wire transport tests over loopback TCP and unix-domain
//! sockets: handshake, submit/scan/stats round-trips, backpressure as an
//! explicit `busy` frame, half-close draining, idle severance, graceful
//! server drain, and connection-kill chaos with server-side accounting
//! intact.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use psnap_core::CasPartialSnapshot;
use psnap_serve::testing::GatedSnapshot;
use psnap_serve::{Executor, Freshness, ServiceConfig, SnapshotService};
use psnap_wire::{
    encode_frame, read_frame, RemoteClientHandle, WireError, WireServer, WireServerConfig,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};

const M: usize = 16;

fn start_service(
    executor: &Executor,
    config: ServiceConfig,
) -> Arc<SnapshotService<u64, CasPartialSnapshot<u64>>> {
    Arc::new(SnapshotService::start(
        CasPartialSnapshot::new(M, 4, 0u64),
        config,
        executor,
    ))
}

fn unique_socket_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "psnap-wire-{}-{tag}-{seq}.sock",
        std::process::id()
    ))
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    cond()
}

#[test]
fn tcp_submit_scan_stats_roundtrip() {
    let executor = Executor::new(2);
    let service = start_service(&executor, ServiceConfig::default());
    let server = WireServer::serve_tcp(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig::default(),
        &executor,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();

    let client = RemoteClientHandle::connect_tcp(addr).unwrap();
    assert_eq!(client.components(), M);

    for c in 0..M {
        client.submit_blocking(c, (c as u64 + 1) * 10).unwrap();
    }
    let values = client
        .scan_blocking((0..M).collect(), Freshness::Fresh)
        .unwrap();
    let expected: Vec<u64> = (0..M as u64).map(|c| (c + 1) * 10).collect();
    assert_eq!(values, expected);

    // A batch applies atomically; a subsequent fresh scan observes it all.
    client
        .submit_batch(vec![(0, 111), (5, 555), (15, 999)])
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        client
            .scan_blocking(vec![0, 5, 15], Freshness::Fresh)
            .unwrap(),
        vec![111, 555, 999]
    );

    // Values above 2^53 survive the JSON wire format exactly.
    let big = (1u64 << 53) + 7;
    client.submit_blocking(2, big).unwrap();
    assert_eq!(
        client.scan_blocking(vec![2], Freshness::Fresh).unwrap(),
        vec![big]
    );

    // Stale reads are permitted wire-side too.
    let stale = client
        .scan_blocking(vec![0], Freshness::AtMostStale(Duration::from_secs(60)))
        .unwrap();
    assert_eq!(stale, vec![111]);

    let stats = client.stats().unwrap();
    let rendered = stats.to_string_compact();
    assert!(
        rendered.contains("submits_ok"),
        "stats missing counters: {rendered}"
    );

    client.close();
    server.shutdown(Duration::from_secs(5));
    service.shutdown();
}

#[test]
fn unix_socket_roundtrip() {
    let executor = Executor::new(2);
    let service = start_service(&executor, ServiceConfig::default());
    let path = unique_socket_path("roundtrip");
    let server = WireServer::serve_unix(
        Arc::clone(&service),
        &path,
        WireServerConfig::default(),
        &executor,
    )
    .unwrap();

    let client = RemoteClientHandle::connect_unix(&path).unwrap();
    assert_eq!(client.components(), M);
    client.submit_blocking(7, 77).unwrap();
    assert_eq!(
        client.scan_blocking(vec![7], Freshness::Fresh).unwrap(),
        vec![77]
    );
    client.close();
    server.shutdown(Duration::from_secs(5));
    assert!(!path.exists(), "socket file not removed on shutdown");
    service.shutdown();
}

#[test]
fn busy_maps_to_an_explicit_wire_error_not_a_dropped_frame() {
    let backing = Arc::new(GatedSnapshot::new(CasPartialSnapshot::new(M, 4, 0u64)));
    let executor = Executor::new(2);
    let service = Arc::new(SnapshotService::start(
        Arc::clone(&backing),
        ServiceConfig {
            ingest_capacity: 2,
            ..ServiceConfig::default()
        },
        &executor,
    ));
    let server = WireServer::serve_tcp(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig::default(),
        &executor,
    )
    .unwrap();
    let client = RemoteClientHandle::connect_tcp(server.local_addr().unwrap()).unwrap();

    // Park the drainer mid-apply behind the update gate, then fill the
    // connection's 2-slot ingestion queue. The frames are processed in
    // order by the connection reader, so acceptance is deterministic.
    backing.update_gate.close();
    let parked = client.submit(0, 1).unwrap();
    assert!(
        wait_until(Duration::from_secs(30), || {
            service.obs().stats.submits_ok == 1 && service.ingest_depth() == 0
        }),
        "drainer never collected the parked submission"
    );
    let fill = [client.submit(1, 1).unwrap(), client.submit(2, 1).unwrap()];

    // The queue is full: the next submit must come back as an explicit
    // `busy` reply while the three accepted ones stay in flight.
    let rejected = client.submit(3, 1).unwrap();
    assert_eq!(rejected.wait(), Err(WireError::Busy));

    // Release the gate: every accepted submission resolves OK.
    backing.update_gate.open();
    parked.wait().unwrap();
    for ticket in fill {
        ticket.wait().unwrap();
    }
    let stats = service.obs().stats;
    assert_eq!(stats.submits_busy, 1);
    assert_eq!(stats.submits_ok, stats.submits_resolved);

    client.close();
    server.shutdown(Duration::from_secs(5));
    service.shutdown();
}

#[test]
fn out_of_range_requests_answer_bad_request_and_the_connection_survives() {
    let executor = Executor::new(2);
    let service = start_service(&executor, ServiceConfig::default());
    let server = WireServer::serve_tcp(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig::default(),
        &executor,
    )
    .unwrap();
    let client = RemoteClientHandle::connect_tcp(server.local_addr().unwrap()).unwrap();

    // Component M is out of range: the server must answer `bad_request`
    // (not panic its reader, not drop the frame).
    assert_eq!(
        client.submit(M, 1).unwrap().wait(),
        Err(WireError::BadRequest)
    );
    assert_eq!(
        client
            .scan(vec![0, M + 3], Freshness::Fresh)
            .unwrap()
            .wait(),
        Err(WireError::BadRequest)
    );

    // The connection is still healthy.
    client.submit_blocking(0, 5).unwrap();
    assert_eq!(
        client.scan_blocking(vec![0], Freshness::Fresh).unwrap(),
        vec![5]
    );

    client.close();
    server.shutdown(Duration::from_secs(5));
    service.shutdown();
}

#[test]
fn half_close_flushes_every_in_flight_reply() {
    let executor = Executor::new(2);
    let service = start_service(&executor, ServiceConfig::default());
    let server = WireServer::serve_tcp(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig::default(),
        &executor,
    )
    .unwrap();
    let client = RemoteClientHandle::connect_tcp(server.local_addr().unwrap()).unwrap();

    let tickets: Vec<_> = (0..32)
        .map(|i| client.submit(i % M, i as u64 + 1).unwrap())
        .collect();
    // Half-close: the client is done sending; the server must resolve and
    // flush every accepted request before closing its side, so all tickets
    // resolve OK rather than ConnectionLost.
    client.close();
    for ticket in tickets {
        ticket.wait().unwrap();
    }

    server.shutdown(Duration::from_secs(5));
    service.shutdown();
}

#[test]
fn version_mismatch_is_rejected_in_the_handshake() {
    let executor = Executor::new(2);
    let service = start_service(&executor, ServiceConfig::default());
    let server = WireServer::serve_tcp(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig::default(),
        &executor,
    )
    .unwrap();

    // Hand-rolled hello with a future protocol version.
    let mut raw = std::net::TcpStream::connect(server.local_addr().unwrap()).unwrap();
    let hello = format!(r#"{{"op":"hello","version":{}}}"#, PROTOCOL_VERSION + 1);
    raw.write_all(&encode_frame(hello.as_bytes())).unwrap();
    let answer = read_frame(&mut raw, MAX_FRAME_LEN).unwrap();
    let text = String::from_utf8(answer).unwrap();
    assert!(
        text.contains("version_mismatch"),
        "expected a reject frame, got {text}"
    );
    // The server closes the connection after rejecting.
    let mut byte = [0u8; 1];
    assert_eq!(raw.read(&mut byte).unwrap_or(0), 0);

    server.shutdown(Duration::from_secs(5));
    service.shutdown();
}

#[test]
fn idle_connections_are_severed_and_tickets_resolve() {
    let executor = Executor::new(2);
    let service = start_service(&executor, ServiceConfig::default());
    let server = WireServer::serve_tcp(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig {
            idle_timeout: Some(Duration::from_millis(100)),
            ..WireServerConfig::default()
        },
        &executor,
    )
    .unwrap();
    let client = RemoteClientHandle::connect_tcp(server.local_addr().unwrap()).unwrap();

    // Activity keeps the connection alive past the timeout.
    for _ in 0..4 {
        std::thread::sleep(Duration::from_millis(40));
        client.submit_blocking(0, 1).unwrap();
    }

    // Silence gets it severed; the client observes a dead connection and
    // later requests fail fast instead of hanging.
    assert!(
        wait_until(Duration::from_secs(10), || client.is_dead()),
        "idle connection was never severed"
    );
    match client.submit(0, 2) {
        Err(WireError::ConnectionLost(_)) => {}
        Ok(ticket) => assert!(matches!(ticket.wait(), Err(WireError::ConnectionLost(_)))),
        Err(other) => panic!("expected ConnectionLost, got {other:?}"),
    }

    server.shutdown(Duration::from_secs(5));
    service.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_tickets_before_severing() {
    let backing = Arc::new(GatedSnapshot::new(CasPartialSnapshot::new(M, 4, 0u64)));
    let executor = Executor::new(2);
    let service = Arc::new(SnapshotService::start(
        Arc::clone(&backing),
        ServiceConfig::default(),
        &executor,
    ));
    let server = WireServer::serve_tcp(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig::default(),
        &executor,
    )
    .unwrap();
    let client = RemoteClientHandle::connect_tcp(server.local_addr().unwrap()).unwrap();

    // Park a submission mid-apply, then shut the server down while it is
    // in flight. The drain must wait for the ticket and flush the reply.
    backing.update_gate.close();
    let parked = client.submit(3, 33).unwrap();
    assert!(
        wait_until(Duration::from_secs(30), || {
            service.obs().stats.submits_ok == 1 && service.ingest_depth() == 0
        }),
        "drainer never collected the parked submission"
    );
    let gate = Arc::clone(&backing);
    let opener = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        gate.update_gate.open();
    });
    server.shutdown(Duration::from_secs(10));
    opener.join().unwrap();

    // The in-flight submit resolved OK across the drain — not lost, not
    // ConnectionLost.
    assert_eq!(parked.wait(), Ok(()));
    let stats = service.obs().stats;
    assert_eq!(stats.submits_ok, stats.submits_resolved);
    service.shutdown();
}

#[test]
fn killed_connections_resolve_tickets_and_server_accounting_holds() {
    let executor = Executor::new(2);
    let service = start_service(&executor, ServiceConfig::default());
    let server = WireServer::serve_tcp(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig::default(),
        &executor,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();

    // Several clients submit storms; half get killed mid-stream. Every
    // ticket must resolve — Ok or ConnectionLost, never a hang — and the
    // server's accepted == resolved invariant must hold afterwards.
    let mut resolved_ok = 0u64;
    let mut resolved_lost = 0u64;
    for round in 0..6 {
        let client = RemoteClientHandle::connect_tcp(addr).unwrap();
        let tickets: Vec<_> = (0..40)
            .filter_map(|i| client.submit(i % M, round * 100 + i as u64).ok())
            .collect();
        if round % 2 == 0 {
            client.kill();
        } else {
            client.close();
        }
        for ticket in tickets {
            match ticket.wait() {
                Ok(()) => resolved_ok += 1,
                Err(WireError::ConnectionLost(_)) => resolved_lost += 1,
                Err(other) => panic!("unexpected ticket error: {other:?}"),
            }
        }
    }
    assert!(resolved_ok > 0, "no request survived at all");
    assert!(resolved_lost > 0, "kills never interrupted a request");

    // Give the service a moment to resolve submissions whose connections
    // died: accepted work still applies and resolves server-side.
    assert!(
        wait_until(Duration::from_secs(30), || {
            let stats = service.obs().stats;
            stats.submits_ok == stats.submits_resolved
        }),
        "server-side accepted != resolved after connection kills"
    );
    assert_eq!(service.obs().ingest_depth, 0);

    server.shutdown(Duration::from_secs(5));
    service.shutdown();
}

#[test]
fn oversized_requests_fail_locally_and_spare_the_connection() {
    let executor = Executor::new(2);
    let service = start_service(&executor, ServiceConfig::default());
    let server = WireServer::serve_tcp(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig {
            // Small enough that a modest batch overflows it, big enough
            // for the handshake and every well-formed reply in this test.
            max_frame_len: 256,
            ..WireServerConfig::default()
        },
        &executor,
    )
    .unwrap();
    let client = RemoteClientHandle::connect_tcp(server.local_addr().unwrap()).unwrap();
    assert_eq!(client.max_frame(), 256);

    // A batch whose encoded frame exceeds the advertised cap must fail as
    // a per-request BadRequest before anything is written: sent as-is it
    // would be a connection-fatal framing error server-side, failing every
    // other in-flight ticket with ConnectionLost.
    let in_flight = client.submit(0, 7).unwrap();
    let oversized: Vec<(usize, u64)> = (0..M).cycle().take(64).map(|c| (c, u64::MAX)).collect();
    assert!(matches!(
        client.submit_batch(oversized.clone()),
        Err(WireError::BadRequest)
    ));
    assert_eq!(in_flight.wait(), Ok(()));
    assert!(!client.is_dead(), "local rejection must not kill the link");

    // Same under cork: the oversized request is refused without poisoning
    // the batch buffer around it.
    client.set_corked(true).unwrap();
    let first = client.submit(1, 11).unwrap();
    assert!(matches!(
        client.submit_batch(oversized),
        Err(WireError::BadRequest)
    ));
    let second = client.submit(2, 22).unwrap();
    client.set_corked(false).unwrap();
    assert_eq!(first.wait(), Ok(()));
    assert_eq!(second.wait(), Ok(()));
    assert_eq!(
        client.scan_blocking(vec![0, 1, 2], Freshness::Fresh).unwrap(),
        vec![7, 11, 22]
    );

    client.close();
    server.shutdown(Duration::from_secs(5));
    service.shutdown();
}

#[test]
fn slow_in_flight_request_survives_the_idle_watchdog() {
    let backing = Arc::new(GatedSnapshot::new(CasPartialSnapshot::new(M, 4, 0u64)));
    let executor = Executor::new(2);
    let service = Arc::new(SnapshotService::start(
        Arc::clone(&backing),
        ServiceConfig::default(),
        &executor,
    ));
    let idle = Duration::from_millis(100);
    let server = WireServer::serve_tcp(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig {
            idle_timeout: Some(idle),
            ..WireServerConfig::default()
        },
        &executor,
    )
    .unwrap();
    let client = RemoteClientHandle::connect_tcp(server.local_addr().unwrap()).unwrap();

    // Park a submission mid-apply and go quiet for several idle periods.
    // The wire is silent but the request is in flight: the watchdog must
    // not sever the connection out from under it.
    backing.update_gate.close();
    let parked = client.submit(4, 44).unwrap();
    assert!(
        wait_until(Duration::from_secs(30), || {
            service.obs().stats.submits_ok == 1 && service.ingest_depth() == 0
        }),
        "drainer never collected the parked submission"
    );
    std::thread::sleep(4 * idle);
    assert!(
        !client.is_dead(),
        "watchdog severed a connection with a request in flight"
    );
    backing.update_gate.open();
    assert_eq!(parked.wait(), Ok(()));

    // With the reply flushed and true silence from here on, the watchdog
    // severs as before — in-flight activity defers it, not forever.
    assert!(
        wait_until(Duration::from_secs(10), || client.is_dead()),
        "idle connection was never severed after its last reply"
    );

    server.shutdown(Duration::from_secs(5));
    service.shutdown();
}

#[test]
fn a_peer_that_stops_reading_stalls_only_its_own_connection() {
    // The reply pump must never occupy an executor worker while blocked on
    // a socket write: two peers that pipeline scans and then stop reading
    // fill their reply buffers and wedge their writers, and with only two
    // executor workers an executor-task pump would deadlock the whole
    // service — acceptor, drain loop and scan loop included — for every
    // client. Healthy traffic must keep flowing while both are wedged.
    // No write timeout here: the wedge must persist for the whole test.
    const BIG_M: usize = 2048;
    let executor = Executor::new(2);
    let service = Arc::new(SnapshotService::start(
        CasPartialSnapshot::new(BIG_M, 4, 0u64),
        ServiceConfig::default(),
        &executor,
    ));
    let path = unique_socket_path("stall");
    let server = WireServer::serve_unix(
        Arc::clone(&service),
        &path,
        WireServerConfig {
            write_timeout: None,
            ..WireServerConfig::default()
        },
        &executor,
    )
    .unwrap();

    // Fat replies wedge the pump within a handful of flushes: ~40 KiB per
    // full scan once every component holds a 19-digit value, against a
    // default unix-socket send buffer of ~200 KiB.
    let seeder = RemoteClientHandle::connect_unix(&path).unwrap();
    let big = u64::MAX - 1;
    for chunk in (0..BIG_M).collect::<Vec<_>>().chunks(256) {
        seeder
            .submit_batch(chunk.iter().map(|&c| (c, big)).collect())
            .unwrap()
            .wait()
            .unwrap();
    }
    seeder.close();

    // Two raw connections: handshake, then pipeline hundreds of full scans
    // and never read a single reply byte. Their writes block once the
    // request direction backs up, so they run on their own threads.
    let all = (0..BIG_M)
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut stalled = Vec::new();
    for _ in 0..2 {
        let mut raw = std::os::unix::net::UnixStream::connect(&path).unwrap();
        let hello = format!(r#"{{"op":"hello","version":{PROTOCOL_VERSION}}}"#);
        raw.write_all(&encode_frame(hello.as_bytes())).unwrap();
        read_frame(&mut raw, MAX_FRAME_LEN).unwrap();
        let mut pipe = raw.try_clone().unwrap();
        let comps = all.clone();
        std::thread::spawn(move || {
            for id in 1..=300u64 {
                let payload = format!(
                    r#"{{"components":[{comps}],"freshness":"fresh","id":{id},"op":"scan"}}"#
                );
                if pipe.write_all(&encode_frame(payload.as_bytes())).is_err() {
                    return;
                }
            }
        });
        stalled.push(raw);
    }

    // Let the wedge form before starting healthy traffic: once a dozen
    // scans have resolved, both pumps have flushed several 40 KiB replies
    // into sockets nobody reads and are (or are about to be) blocked in
    // write with more queued behind them.
    assert!(
        wait_until(Duration::from_secs(30), || service.obs().stats.scans_ok >= 12),
        "wedged connections' scans never started resolving"
    );

    // Meanwhile a healthy client must make steady progress. Run it on a
    // side thread with a deadline so a regression fails fast instead of
    // hanging the test forever.
    let healthy_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let healthy_progress = Arc::new(AtomicU64::new(0));
    let done_flag = Arc::clone(&healthy_done);
    let progress = Arc::clone(&healthy_progress);
    let healthy_path = path.clone();
    std::thread::spawn(move || {
        // `Busy` is legitimate backpressure (the wedged peers' queued scans
        // can transiently exhaust scan capacity), not the starvation under
        // test: back off and retry it. A stalled executor shows up as a
        // hang, which the deadline below catches.
        macro_rules! with_busy_retry {
            ($call:expr) => {
                loop {
                    match $call {
                        Err(WireError::Busy) => std::thread::sleep(Duration::from_millis(10)),
                        other => break other.unwrap(),
                    }
                }
            };
        }
        let client = RemoteClientHandle::connect_unix(&healthy_path).unwrap();
        for op in 1..=50u64 {
            with_busy_retry!(client.submit_blocking(0, op));
            let values = with_busy_retry!(client.scan_blocking(vec![0], Freshness::Fresh));
            assert_eq!(values, vec![op]);
            progress.store(op, Ordering::Release);
        }
        client.close();
        done_flag.store(true, Ordering::Release);
    });
    assert!(
        wait_until(Duration::from_secs(30), || healthy_done
            .load(Ordering::Acquire)),
        "healthy connection starved while two peers stopped reading replies \
         (progress {}/50, {} live connections, stats {:?})",
        healthy_progress.load(Ordering::Acquire),
        server.connection_count(),
        service.obs().stats,
    );

    // Unblock the wedged writers so shutdown's drain is quick.
    for raw in &stalled {
        let _ = raw.shutdown(std::net::Shutdown::Both);
    }
    server.shutdown(Duration::from_secs(10));
    assert!(
        wait_until(Duration::from_secs(30), || {
            let stats = service.obs().stats;
            stats.submits_ok == stats.submits_resolved
        }),
        "server-side accepted != resolved after wedged connections"
    );
    service.shutdown();
}

#[test]
fn write_timeout_severs_a_peer_that_stops_reading() {
    // With a write timeout configured, a peer whose replies cannot make
    // progress is severed instead of holding its writer (and its share of
    // server resources) forever.
    const BIG_M: usize = 2048;
    let executor = Executor::new(2);
    let service = Arc::new(SnapshotService::start(
        CasPartialSnapshot::new(BIG_M, 4, 0u64),
        ServiceConfig::default(),
        &executor,
    ));
    let path = unique_socket_path("sever");
    let server = WireServer::serve_unix(
        Arc::clone(&service),
        &path,
        WireServerConfig {
            write_timeout: Some(Duration::from_millis(300)),
            ..WireServerConfig::default()
        },
        &executor,
    )
    .unwrap();

    let seeder = RemoteClientHandle::connect_unix(&path).unwrap();
    for chunk in (0..BIG_M).collect::<Vec<_>>().chunks(256) {
        seeder
            .submit_batch(chunk.iter().map(|&c| (c, u64::MAX)).collect())
            .unwrap()
            .wait()
            .unwrap();
    }
    seeder.close();
    assert!(
        wait_until(Duration::from_secs(10), || server.connection_count() == 0),
        "seeder connection never finished tearing down"
    );

    // One raw connection pipelines full scans and never reads a reply.
    let all = (0..BIG_M)
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut raw = std::os::unix::net::UnixStream::connect(&path).unwrap();
    let hello = format!(r#"{{"op":"hello","version":{PROTOCOL_VERSION}}}"#);
    raw.write_all(&encode_frame(hello.as_bytes())).unwrap();
    read_frame(&mut raw, MAX_FRAME_LEN).unwrap();
    let mut pipe = raw.try_clone().unwrap();
    std::thread::spawn(move || {
        for id in 1..=100u64 {
            let payload =
                format!(r#"{{"components":[{all}],"freshness":"fresh","id":{id},"op":"scan"}}"#);
            if pipe.write_all(&encode_frame(payload.as_bytes())).is_err() {
                return;
            }
        }
    });

    // The reply buffer fills, the pump's write times out, the connection
    // is severed and fully torn down — without the peer ever reading or
    // closing anything itself.
    assert!(
        wait_until(Duration::from_secs(30), || server.connection_count() == 0),
        "non-reading peer was never severed by the write timeout"
    );
    drop(raw);
    server.shutdown(Duration::from_secs(10));
    assert!(
        wait_until(Duration::from_secs(30), || {
            let stats = service.obs().stats;
            stats.submits_ok == stats.submits_resolved
        }),
        "server-side accepted != resolved after write-timeout severance"
    );
    service.shutdown();
}

#[test]
fn concurrent_connections_multiplex_without_crosstalk() {
    let executor = Executor::new(4);
    let service = start_service(&executor, ServiceConfig::default());
    let server = WireServer::serve_tcp(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig::default(),
        &executor,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();

    std::thread::scope(|scope| {
        for conn in 0..8usize {
            scope.spawn(move || {
                let client = RemoteClientHandle::connect_tcp(addr).unwrap();
                let component = conn % M;
                for op in 0..50u64 {
                    client.submit_blocking(component, op + 1).unwrap();
                    // Interleave scans so replies genuinely arrive out of
                    // submission order across the multiplexed ids.
                    let values = client
                        .scan_blocking(vec![component], Freshness::Fresh)
                        .unwrap();
                    assert_eq!(values.len(), 1);
                    assert!(values[0] > op, "scan went backwards");
                }
                client.close();
            });
        }
    });

    server.shutdown(Duration::from_secs(5));
    service.shutdown();
}
