//! Wire-safety property tests: adversarial bytes and adversarial JSON
//! against the frame codec and the protocol decoder. The invariant under
//! test is uniform — *error, never panic, never over-allocate* — because a
//! wire endpoint feeds these decoders attacker-controlled input.

use std::io::Read;

use proptest::prelude::*;
use psnap_json::Json;
use psnap_wire::{
    encode_frame, read_frame, read_frame_str, FrameError, Reply, Request, MAX_FRAME_LEN,
};

/// A reader that hands out at most `limit` bytes, then EOF — models a peer
/// that dies mid-frame.
struct Cutoff<'a> {
    data: &'a [u8],
    pos: usize,
    limit: usize,
}

impl Read for Cutoff<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let end = self.limit.min(self.data.len());
        let n = buf.len().min(end.saturating_sub(self.pos));
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    /// Any payload round-trips through the codec byte-for-byte.
    #[test]
    fn frames_roundtrip(payload in proptest::collection::vec(0u8..=255, 0..4096)) {
        let buf = encode_frame(&payload);
        let mut r = &buf[..];
        prop_assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap(), payload);
        prop_assert!(matches!(read_frame(&mut r, MAX_FRAME_LEN), Err(FrameError::Eof)));
    }

    /// A stream cut anywhere inside a frame is `Truncated` (or `Eof` when
    /// not a single byte arrived) — never a panic, never a partial frame.
    #[test]
    fn truncation_at_any_offset_is_an_error(
        payload in proptest::collection::vec(0u8..=255, 1..512),
        cut_sel in 0usize..1_000_000,
    ) {
        let buf = encode_frame(&payload);
        let cut = cut_sel % buf.len();
        let mut r = Cutoff { data: &buf, pos: 0, limit: cut };
        match read_frame(&mut r, MAX_FRAME_LEN) {
            Err(FrameError::Eof) => prop_assert_eq!(cut, 0),
            Err(FrameError::Truncated { .. }) => prop_assert!(cut > 0),
            other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
        }
    }

    /// A hostile length prefix above the cap is rejected before any
    /// allocation, whatever the advertised length and cap.
    #[test]
    fn oversized_prefix_never_allocates(
        len in 1u32..=u32::MAX,
        cap in 0usize..100_000,
    ) {
        prop_assume!((len as usize) > cap);
        let mut buf = len.to_be_bytes().to_vec();
        buf.extend_from_slice(b"some bytes that must never be read");
        let mut r = &buf[..];
        match read_frame(&mut r, cap) {
            Err(FrameError::Oversized { len: got, max }) => {
                prop_assert_eq!(got, len as usize);
                prop_assert_eq!(max, cap);
            }
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
    }

    /// Arbitrary bytes as a frame payload: `read_frame_str` either decodes
    /// UTF-8 or errors; it never panics.
    #[test]
    fn arbitrary_payload_bytes_never_panic_the_text_decoder(
        payload in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let buf = encode_frame(&payload);
        let mut r = &buf[..];
        let _ = read_frame_str(&mut r, MAX_FRAME_LEN);
    }

    /// Arbitrary bytes through the JSON parser and the request/reply
    /// decoders: `None`/`Err` on garbage, never a panic.
    #[test]
    fn arbitrary_text_never_panics_the_protocol_decoder(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(json) = Json::parse(&text) {
            let _ = Request::from_json(&json);
            let _ = Reply::from_json(&json);
        }
    }

    /// Requests with arbitrary well-formed contents round-trip exactly —
    /// including ids and values above 2^53, where f64 JSON numbers lose
    /// precision and the codec must fall back to decimal strings.
    #[test]
    fn well_formed_requests_roundtrip_with_full_precision(
        id in 0u64..=u64::MAX,
        writes in proptest::collection::vec((0usize..1024, 0u64..=u64::MAX), 1..64),
    ) {
        let request = Request {
            id,
            body: psnap_wire::RequestBody::Submit { writes: writes.clone() },
        };
        let decoded = Request::from_json(&request.to_json()).expect("self-encoded request");
        prop_assert_eq!(decoded.id, id);
        match decoded.body {
            psnap_wire::RequestBody::Submit { writes: got } => prop_assert_eq!(&got, &writes),
            other => prop_assert!(false, "wrong body {:?}", other.opcode()),
        }
        // The fast-path codec must agree with the general path exactly:
        // byte-identical serialization, identical parse.
        let fast = request.to_wire_string();
        prop_assert_eq!(&fast, &request.to_json().to_string_compact());
        prop_assert_eq!(Request::parse_wire(&fast), Some(request));
    }

    /// Replies with arbitrary values round-trip exactly, same precision
    /// constraint as requests.
    #[test]
    fn well_formed_replies_roundtrip_with_full_precision(
        id in 0u64..=u64::MAX,
        values in proptest::collection::vec(0u64..=u64::MAX, 0..64),
    ) {
        let reply = Reply {
            id,
            result: Ok(psnap_wire::ReplyBody::Values(values.clone())),
        };
        let decoded = Reply::from_json(&reply.to_json()).expect("self-encoded reply");
        prop_assert_eq!(decoded.id, id);
        match decoded.result {
            Ok(psnap_wire::ReplyBody::Values(got)) => prop_assert_eq!(&got, &values),
            other => prop_assert!(false, "wrong result {:?}", other.is_ok()),
        }
        // Fast-path parity, as for requests.
        let fast = reply.to_wire_string();
        prop_assert_eq!(&fast, &reply.to_json().to_string_compact());
        prop_assert_eq!(Reply::parse_wire(&fast), Some(reply));
    }
}

/// Deterministic adversarial corpus — the edge shapes named by the wire
/// contract: huge integers, empty component lists, maximum-length strings,
/// wrong types in every slot.
#[test]
fn adversarial_documents_error_cleanly() {
    let max_len_string = "x".repeat(1 << 16);
    let cases = [
        // Empty submit batches are meaningless on the wire.
        r#"{"id":1,"op":"submit","writes":[]}"#.to_string(),
        // Writes must be [component, value] pairs exactly.
        r#"{"id":1,"op":"submit","writes":[[1]]}"#.to_string(),
        r#"{"id":1,"op":"submit","writes":[[1,2,3]]}"#.to_string(),
        r#"{"id":1,"op":"submit","writes":[1,2]}"#.to_string(),
        // Values beyond u64 (or negative, fractional, overflow strings).
        r#"{"id":1,"op":"submit","writes":[[0,-1]]}"#.to_string(),
        r#"{"id":1,"op":"submit","writes":[[0,1.5]]}"#.to_string(),
        r#"{"id":1,"op":"submit","writes":[[0,"18446744073709551616"]]}"#.to_string(),
        r#"{"id":1,"op":"submit","writes":[[0,"01"]]}"#.to_string(),
        // Scans need a components array and a recognizable freshness.
        r#"{"id":1,"op":"scan","components":"all","freshness":"fresh"}"#.to_string(),
        r#"{"id":1,"op":"scan","components":[0],"freshness":"soon"}"#.to_string(),
        r#"{"id":1,"op":"scan","components":[0],"freshness":{"stale_ns":-5}}"#.to_string(),
        // Unknown ops, missing ids, wrong-typed ids.
        r#"{"id":1,"op":"transmogrify"}"#.to_string(),
        r#"{"op":"submit","writes":[[0,1]]}"#.to_string(),
        r#"{"id":"one","op":"submit","writes":[[0,1]]}"#.to_string(),
        r#"{"id":1.5,"op":"submit","writes":[[0,1]]}"#.to_string(),
        // Maximum-length garbage strings in op position.
        format!(r#"{{"id":1,"op":"{max_len_string}"}}"#),
        // Top-level non-objects.
        "[1,2,3]".to_string(),
        "\"hello\"".to_string(),
        "42".to_string(),
        "null".to_string(),
    ];
    for case in &cases {
        let json = Json::parse(case).expect("adversarial corpus is valid JSON");
        assert!(
            Request::from_json(&json).is_none(),
            "decoder accepted adversarial request: {case:.80}"
        );
    }
}
