//! Runs scenarios through the full wire stack: a [`WireServer`] hosting the
//! service over a real socket, one [`RemoteClientHandle`] per role on its
//! own OS thread.
//!
//! This is the [`service_driver`](crate::service_driver) with the transport
//! inserted: every operation crosses frame encode → socket → frame decode →
//! per-connection ingestion queue → service → reply frame → ticket, and the
//! recorded [`History`] spans the *remote-client-observed* interval. Feeding
//! these histories to the same WGL and monotone checkers proves the wire
//! layer preserves linearizability — the transport adds latency but must not
//! reorder a client's operations or invent/lose acknowledgements.
//!
//! Wire-level backpressure (`busy` replies) is retried just as the
//! in-process driver retries [`SubmitError::Busy`], so histories stay
//! comparable across the two drivers.

use std::sync::Arc;

use psnap_core::PartialSnapshot;
use psnap_lincheck::{History, LogicalClock, OpRecord, OpResult, Operation};
use psnap_serve::{Executor, ExecutorConfig, Freshness, ServiceConfig, SnapshotService};
use psnap_wire::{RemoteClientHandle, WireError, WireServer, WireServerConfig};

use crate::scenario::{Role, Scenario};
use crate::service_driver::ServiceDriverConfig;

/// Which socket family carries the scenario's traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireTransport {
    /// Loopback TCP on an ephemeral port.
    Tcp,
    /// A unix-domain socket in the system temp directory.
    Unix,
}

/// Runs `scenario` against `snapshot` through a wire server on a real
/// socket, one remote client per role, and returns the history of
/// remote-client-observed operations.
///
/// The same preconditions as
/// [`run_scenario_via_service`](crate::run_scenario_via_service) apply.
/// Client-side threads keep the scenario's chaos configuration; the wire
/// hop itself adds genuine scheduling noise on top.
pub fn run_scenario_via_wire<S>(
    snapshot: Arc<S>,
    scenario: &Scenario,
    driver: &ServiceDriverConfig,
    transport: WireTransport,
) -> History
where
    S: PartialSnapshot<u64> + 'static,
{
    scenario
        .validate()
        .expect("scenario must be valid before it is run");
    assert!(
        snapshot.components() >= scenario.components,
        "snapshot object too small for the scenario"
    );
    assert!(
        snapshot.max_processes() > driver.scan_pids.max(1),
        "the service needs a drainer pid plus `scan_pids` scan-server pids \
         on the backing object"
    );

    let executor = Executor::with_config(ExecutorConfig {
        workers: driver.workers.max(1),
        chaos: scenario
            .chaos
            .as_ref()
            .filter(|_| driver.chaos_in_service)
            .map(|c| (c.seed ^ 0x313E_D21E, c.config.clone())),
        ..ExecutorConfig::default()
    });
    let backing = Arc::clone(&snapshot);
    let service = Arc::new(SnapshotService::start(
        snapshot,
        ServiceConfig {
            ingest_capacity: driver.ingest_capacity,
            scan_capacity: driver.scan_capacity,
            coalescing: driver.coalescing,
            scan_pids: driver.scan_pids.max(1),
            scan_slo: driver.scan_slo,
            ..ServiceConfig::default()
        },
        &executor,
    ));

    let unix_path = std::env::temp_dir().join(format!(
        "psnap-sim-wire-{}-{:x}.sock",
        std::process::id(),
        scenario.total_ops() as u64 ^ (scenario.components as u64) << 32
    ));
    let server = match transport {
        WireTransport::Tcp => WireServer::serve_tcp(
            Arc::clone(&service),
            "127.0.0.1:0",
            WireServerConfig::default(),
            &executor,
        ),
        WireTransport::Unix => WireServer::serve_unix(
            Arc::clone(&service),
            &unix_path,
            WireServerConfig::default(),
            &executor,
        ),
    }
    .expect("wire server failed to bind");
    let connect = || -> RemoteClientHandle {
        match transport {
            WireTransport::Tcp => RemoteClientHandle::connect_tcp(
                server.local_addr().expect("tcp server has an address"),
            ),
            WireTransport::Unix => RemoteClientHandle::connect_unix(&unix_path),
        }
        .expect("wire client failed to connect")
    };

    let clock = LogicalClock::new();
    let barrier = Arc::new(std::sync::Barrier::new(scenario.processes()));
    let n = scenario.processes();
    let logs: Vec<Vec<OpRecord>> = std::thread::scope(|scope| {
        let handles: Vec<_> = scenario
            .roles
            .iter()
            .cloned()
            .enumerate()
            .map(|(pid, role)| {
                let client = connect();
                let backing = Arc::clone(&backing);
                let clock = clock.clone();
                let barrier = Arc::clone(&barrier);
                let chaos_cfg = scenario.chaos.clone();
                let freshness = driver.scanner_freshness;
                scope.spawn(move || {
                    let _chaos_guard = chaos_cfg.map(|c| {
                        psnap_shmem::chaos::enable(c.seed.wrapping_add(pid as u64), c.config)
                    });
                    barrier.wait();
                    let log = run_remote_role(&client, &*backing, pid, n, &role, &clock, freshness);
                    client.close();
                    log
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("wire client thread panicked"))
            .collect()
    });
    server.shutdown(std::time::Duration::from_secs(10));
    service.shutdown();
    History::from_logs(scenario.components, scenario.initial, logs)
}

fn run_remote_role<S>(
    client: &RemoteClientHandle,
    backing: &S,
    pid: usize,
    processes: usize,
    role: &Role,
    clock: &LogicalClock,
    freshness: Freshness,
) -> Vec<OpRecord>
where
    S: PartialSnapshot<u64>,
{
    let mut log = Vec::new();
    let pid_tag = psnap_shmem::ProcessId(pid);
    match role {
        Role::Updater { components, ops } => {
            for k in 0..*ops {
                let component = components[k % components.len()];
                let value = (k as u64 + 1) * processes as u64 + pid as u64 + 1;
                let invoked_at = clock.now();
                retry_busy(|| client.submit_blocking(component, value));
                let returned_at = clock.now();
                log.push(OpRecord {
                    pid: pid_tag,
                    op: Operation::Update { component, value },
                    result: OpResult::Ack,
                    invoked_at,
                    returned_at,
                });
            }
        }
        Role::BatchUpdater {
            components,
            ops,
            batch,
        } => {
            let width = (*batch).clamp(1, components.len());
            for k in 0..*ops {
                let value = (k as u64 + 1) * processes as u64 + pid as u64 + 1;
                let writes: Vec<(usize, u64)> = (0..width)
                    .map(|i| (components[(k * width + i) % components.len()], value))
                    .collect();
                let invoked_at = clock.now();
                retry_busy(|| client.submit_batch(writes.clone())?.wait());
                let returned_at = clock.now();
                log.push(OpRecord {
                    pid: pid_tag,
                    op: Operation::BatchUpdate { writes },
                    result: OpResult::Ack,
                    invoked_at,
                    returned_at,
                });
            }
        }
        Role::Scanner { scans } => {
            for components in scans {
                let invoked_at = clock.now();
                let values = retry_busy(|| client.scan_blocking(components.clone(), freshness));
                let returned_at = clock.now();
                log.push(OpRecord {
                    pid: pid_tag,
                    op: Operation::Scan {
                        components: components.clone(),
                    },
                    result: OpResult::Values(values),
                    invoked_at,
                    returned_at,
                });
            }
        }
        Role::Resharder { ops } => {
            // Operator-plane reconfiguration stays a direct handle on the
            // backing object, as in the in-process driver.
            for &op in ops {
                std::thread::yield_now();
                let _ = backing.reshard(op);
                std::thread::yield_now();
            }
        }
    }
    log
}

/// Retries wire-level backpressure; anything else is fatal for the run (a
/// scenario client must never lose an operation silently).
fn retry_busy<T>(mut op: impl FnMut() -> Result<T, WireError>) -> T {
    loop {
        match op() {
            Ok(value) => return value,
            Err(WireError::Busy) => std::thread::yield_now(),
            Err(other) => panic!("wire operation failed under a live scenario: {other}"),
        }
    }
}
