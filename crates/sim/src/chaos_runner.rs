//! Seeded fuzzing of schedules: run many perturbed executions of the same
//! scenario shape and check every resulting history.

use std::sync::Arc;

use psnap_core::PartialSnapshot;
use psnap_lincheck::{check_history, check_monotone_history, History, LinResult, Violation};

use crate::runner::run_scenario;
use crate::scenario::Scenario;

/// The outcome of a fuzzing campaign.
#[derive(Debug)]
pub enum FuzzOutcome {
    /// Every explored schedule produced a linearizable history.
    AllPassed {
        /// Number of schedules (seeds) explored.
        schedules: usize,
        /// Total operations checked across all schedules.
        operations: usize,
    },
    /// Some schedule produced a history the exhaustive checker rejected.
    WglViolation {
        /// Seed of the offending schedule.
        seed: u64,
        /// The offending history (kept for post-mortem debugging).
        history: History,
    },
    /// Some schedule produced a history failing a monotone necessary condition.
    MonotoneViolation {
        /// Seed of the offending schedule.
        seed: u64,
        /// The violation found.
        violation: Violation,
        /// The offending history.
        history: History,
    },
}

impl FuzzOutcome {
    /// True if no violation was found.
    pub fn passed(&self) -> bool {
        matches!(self, FuzzOutcome::AllPassed { .. })
    }
}

/// Runs `seeds` small adversarial schedules (via [`Scenario::random_small`])
/// against fresh objects produced by `factory` and WGL-checks every history.
pub fn fuzz_small_schedules<S, F>(factory: F, seeds: std::ops::Range<u64>) -> FuzzOutcome
where
    S: PartialSnapshot<u64> + ?Sized + 'static,
    F: Fn(&Scenario) -> Arc<S>,
{
    let mut schedules = 0usize;
    let mut operations = 0usize;
    for seed in seeds {
        let scenario = Scenario::random_small(seed);
        let snapshot = factory(&scenario);
        let history = run_scenario(&snapshot, &scenario);
        operations += history.len();
        schedules += 1;
        match check_history(&history) {
            LinResult::Linearizable(_) => {}
            LinResult::NotLinearizable => {
                return FuzzOutcome::WglViolation { seed, history };
            }
        }
    }
    FuzzOutcome::AllPassed {
        schedules,
        operations,
    }
}

/// The shared stress-fuzzing loop: runs one scenario per seed against a
/// fresh object and monotone-checks every history.
fn fuzz_monotone<S, F, G>(factory: F, make_scenario: G, seeds: std::ops::Range<u64>) -> FuzzOutcome
where
    S: PartialSnapshot<u64> + ?Sized + 'static,
    F: Fn(&Scenario) -> Arc<S>,
    G: Fn(u64) -> Scenario,
{
    let mut schedules = 0usize;
    let mut operations = 0usize;
    for seed in seeds {
        let scenario = make_scenario(seed);
        let snapshot = factory(&scenario);
        let history = run_scenario(&snapshot, &scenario);
        operations += history.len();
        schedules += 1;
        if let Err(violation) = check_monotone_history(&history) {
            return FuzzOutcome::MonotoneViolation {
                seed,
                violation,
                history,
            };
        }
    }
    FuzzOutcome::AllPassed {
        schedules,
        operations,
    }
}

/// Runs `seeds` large stress schedules against fresh objects produced by
/// `factory` and applies the scalable monotone checks to every history.
#[allow(clippy::too_many_arguments)]
pub fn fuzz_stress_schedules<S, F>(
    factory: F,
    components: usize,
    updaters: usize,
    scanners: usize,
    ops_per_updater: usize,
    ops_per_scanner: usize,
    r: usize,
    seeds: std::ops::Range<u64>,
) -> FuzzOutcome
where
    S: PartialSnapshot<u64> + ?Sized + 'static,
    F: Fn(&Scenario) -> Arc<S>,
{
    fuzz_monotone(
        factory,
        |seed| {
            Scenario::stress(
                components,
                updaters,
                scanners,
                ops_per_updater,
                ops_per_scanner,
                r,
                seed,
            )
        },
        seeds,
    )
}

/// Like [`fuzz_stress_schedules`] but with batched updaters: each updater op
/// is an atomic `update_many` of `batch` components (see
/// [`Scenario::stress_batched`]).
#[allow(clippy::too_many_arguments)]
pub fn fuzz_batched_stress_schedules<S, F>(
    factory: F,
    components: usize,
    updaters: usize,
    scanners: usize,
    ops_per_updater: usize,
    ops_per_scanner: usize,
    r: usize,
    batch: usize,
    seeds: std::ops::Range<u64>,
) -> FuzzOutcome
where
    S: PartialSnapshot<u64> + ?Sized + 'static,
    F: Fn(&Scenario) -> Arc<S>,
{
    fuzz_monotone(
        factory,
        |seed| {
            Scenario::stress_batched(
                components,
                updaters,
                scanners,
                ops_per_updater,
                ops_per_scanner,
                r,
                batch,
                seed,
            )
        },
        seeds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnap_core::CasPartialSnapshot;

    #[test]
    fn fuzzing_the_cas_snapshot_passes() {
        let outcome = fuzz_small_schedules(
            |s| Arc::new(CasPartialSnapshot::new(s.components, s.processes(), 0u64)),
            0..8,
        );
        assert!(outcome.passed(), "{outcome:?}");
        if let FuzzOutcome::AllPassed {
            schedules,
            operations,
        } = outcome
        {
            assert_eq!(schedules, 8);
            assert!(operations > 0);
        }
    }

    #[test]
    fn stress_fuzzing_the_cas_snapshot_passes() {
        let outcome = fuzz_stress_schedules(
            |s| Arc::new(CasPartialSnapshot::new(s.components, s.processes(), 0u64)),
            16,
            2,
            2,
            200,
            100,
            4,
            0..2,
        );
        assert!(outcome.passed(), "{outcome:?}");
    }
}
