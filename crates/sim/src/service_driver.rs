//! Runs scenarios through the `psnap-serve` frontend instead of calling the
//! snapshot object directly.
//!
//! Every [`Role`] of the scenario becomes a *service client* on its own OS
//! thread: updaters submit through [`psnap_serve::ClientHandle::submit`],
//! batch updaters through `submit_batch`, scanners through `scan` with the
//! configured [`Freshness`] bound ([`Freshness::Fresh`] by default) — each
//! operation awaited to completion before the
//! next, so the per-process histories stay sequential. The recorded
//! [`History`] spans the *client-observed* interval of each operation
//! (enqueue to ticket resolution), which is exactly what linearizability is
//! about for a service: the coalesced `update_many` the drainer issues and
//! the shared backing scan the coalescer issues must both land inside every
//! participating client's interval. Feeding these histories to the WGL and
//! monotone checkers is therefore the conformance proof the ISSUE asks for —
//! a coalesced scan answer must still be a legal linearizable partial scan.
//!
//! Chaos wiring: the scenario's chaos configuration is applied to the client
//! threads *and* (via [`ServiceDriverConfig::chaos_in_service`]) to the
//! executor workers, so the queue seams — drainer parked mid-coalesce, scan
//! server parked mid-union — are exercised by the same adversarial schedules
//! as the in-process runners.

use std::sync::Arc;

use psnap_core::PartialSnapshot;
use psnap_lincheck::{History, LogicalClock, OpRecord, OpResult, Operation};
use psnap_serve::{
    Coalescing, Executor, ExecutorConfig, Freshness, ServiceConfig, SnapshotService, SubmitError,
};
use psnap_shmem::chaos;

use crate::scenario::{Role, Scenario};

/// How the service is set up for a scenario run.
#[derive(Clone, Debug)]
pub struct ServiceDriverConfig {
    /// Scan-merging policy of the service under test.
    pub coalescing: Coalescing,
    /// Executor worker threads.
    pub workers: usize,
    /// Capacity of each client's ingestion queue.
    pub ingest_capacity: usize,
    /// Capacity of the scan-request queue.
    pub scan_capacity: usize,
    /// Scan-server process-id pool size (parallel union execution when
    /// above 1; the backing object needs `1 + scan_pids` processes on top
    /// of the scenario's roles).
    pub scan_pids: usize,
    /// Freshness bound every scanner role requests. The default is
    /// [`Freshness::Fresh`]. `AtMostStale(Duration::ZERO)` routes scans
    /// through the mv fast path (`scan_stale`) on multiversioned backends
    /// while keeping the answers checkable against the client-observed
    /// interval — the cut is taken inside the request's service time, so
    /// the WGL checker applies unchanged.
    pub scanner_freshness: Freshness,
    /// Also enable the scenario's chaos configuration on the executor
    /// workers, so the service pipelines themselves are perturbed.
    pub chaos_in_service: bool,
    /// Scan-latency SLO forwarded to [`ServiceConfig::scan_slo`]: a scan
    /// answered later than this fires the service's latency anomaly
    /// trigger when the flight recorder is armed. `None` (the default)
    /// disables the trigger.
    pub scan_slo: Option<std::time::Duration>,
}

impl Default for ServiceDriverConfig {
    fn default() -> Self {
        ServiceDriverConfig {
            coalescing: Coalescing::Window(std::time::Duration::ZERO),
            workers: 2,
            ingest_capacity: 16,
            scan_capacity: 64,
            scan_pids: 1,
            scanner_freshness: Freshness::Fresh,
            chaos_in_service: true,
            scan_slo: None,
        }
    }
}

/// Runs `scenario` against `snapshot` through a [`SnapshotService`], one OS
/// thread per role, and returns the history of client-observed operations.
///
/// The snapshot object must have at least 2 processes (the service's drainer
/// and scan-server pids) and at least `scenario.components` components. The
/// update values follow the same monotone single-writer discipline as
/// [`crate::runner::run_scenario`], so the same checkers apply.
pub fn run_scenario_via_service<S>(
    snapshot: Arc<S>,
    scenario: &Scenario,
    driver: &ServiceDriverConfig,
) -> History
where
    S: PartialSnapshot<u64> + 'static,
{
    scenario
        .validate()
        .expect("scenario must be valid before it is run");
    assert!(
        snapshot.components() >= scenario.components,
        "snapshot object too small for the scenario"
    );
    assert!(
        snapshot.max_processes() > driver.scan_pids.max(1),
        "the service needs a drainer pid plus `scan_pids` scan-server pids \
         on the backing object"
    );

    let executor = Executor::with_config(ExecutorConfig {
        workers: driver.workers.max(1),
        chaos: scenario
            .chaos
            .as_ref()
            .filter(|_| driver.chaos_in_service)
            .map(|c| (c.seed ^ 0x5E44_1CE0, c.config.clone())),
        ..ExecutorConfig::default()
    });
    // Resharder roles bypass the client API: resharding is operator-plane
    // reconfiguration of the backing object (the serve layer's own driver
    // does the same), so they keep a direct handle.
    let backing = Arc::clone(&snapshot);
    let service = SnapshotService::start(
        snapshot,
        ServiceConfig {
            ingest_capacity: driver.ingest_capacity,
            scan_capacity: driver.scan_capacity,
            coalescing: driver.coalescing,
            scan_pids: driver.scan_pids.max(1),
            scan_slo: driver.scan_slo,
            ..ServiceConfig::default()
        },
        &executor,
    );

    let clock = LogicalClock::new();
    let barrier = Arc::new(std::sync::Barrier::new(scenario.processes()));
    let n = scenario.processes();
    let logs: Vec<Vec<OpRecord>> = std::thread::scope(|scope| {
        let handles: Vec<_> = scenario
            .roles
            .iter()
            .cloned()
            .enumerate()
            .map(|(pid, role)| {
                let client = service.client();
                let backing = Arc::clone(&backing);
                let clock = clock.clone();
                let barrier = Arc::clone(&barrier);
                let chaos_cfg = scenario.chaos.clone();
                let freshness = driver.scanner_freshness;
                scope.spawn(move || {
                    let _chaos_guard =
                        chaos_cfg.map(|c| chaos::enable(c.seed.wrapping_add(pid as u64), c.config));
                    barrier.wait();
                    run_client_role(&client, &backing, pid, n, &role, &clock, freshness)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("service client thread panicked"))
            .collect()
    });
    service.shutdown();
    History::from_logs(scenario.components, scenario.initial, logs)
}

#[allow(clippy::too_many_arguments)]
fn run_client_role<S>(
    client: &psnap_serve::ClientHandle<u64, S>,
    backing: &S,
    pid: usize,
    processes: usize,
    role: &Role,
    clock: &LogicalClock,
    freshness: Freshness,
) -> Vec<OpRecord>
where
    S: PartialSnapshot<u64>,
{
    let mut log = Vec::new();
    let pid_tag = psnap_shmem::ProcessId(pid);
    match role {
        Role::Updater { components, ops } => {
            for k in 0..*ops {
                let component = components[k % components.len()];
                let value = (k as u64 + 1) * processes as u64 + pid as u64 + 1;
                let invoked_at = clock.now();
                submit_retrying(client, component, value);
                let returned_at = clock.now();
                log.push(OpRecord {
                    pid: pid_tag,
                    op: Operation::Update { component, value },
                    result: OpResult::Ack,
                    invoked_at,
                    returned_at,
                });
            }
        }
        Role::BatchUpdater {
            components,
            ops,
            batch,
        } => {
            let width = (*batch).clamp(1, components.len());
            for k in 0..*ops {
                let value = (k as u64 + 1) * processes as u64 + pid as u64 + 1;
                let writes: Vec<(usize, u64)> = (0..width)
                    .map(|i| (components[(k * width + i) % components.len()], value))
                    .collect();
                let invoked_at = clock.now();
                loop {
                    match client.submit_batch(writes.clone()) {
                        Ok(ticket) => {
                            ticket.wait();
                            break;
                        }
                        Err(SubmitError::Busy) => std::thread::yield_now(),
                        Err(SubmitError::Closed) => {
                            panic!("service closed under a live batch updater")
                        }
                    }
                }
                let returned_at = clock.now();
                log.push(OpRecord {
                    pid: pid_tag,
                    op: Operation::BatchUpdate { writes },
                    result: OpResult::Ack,
                    invoked_at,
                    returned_at,
                });
            }
        }
        Role::Scanner { scans } => {
            for components in scans {
                let invoked_at = clock.now();
                let values = client
                    .scan_blocking(components, freshness)
                    .expect("service closed under a live scanner");
                let returned_at = clock.now();
                log.push(OpRecord {
                    pid: pid_tag,
                    op: Operation::Scan {
                        components: components.clone(),
                    },
                    result: OpResult::Values(values),
                    invoked_at,
                    returned_at,
                });
            }
        }
        Role::Resharder { ops } => {
            // Operator-plane reconfiguration against the backing object
            // while the clients keep the service busy; records nothing.
            for &op in ops {
                std::thread::yield_now();
                let _ = backing.reshard(op);
                std::thread::yield_now();
            }
        }
    }
    log
}

fn submit_retrying<S: PartialSnapshot<u64>>(
    client: &psnap_serve::ClientHandle<u64, S>,
    component: usize,
    value: u64,
) {
    loop {
        match client.submit(component, value) {
            Ok(ticket) => {
                ticket.wait();
                return;
            }
            Err(SubmitError::Busy) => std::thread::yield_now(),
            Err(SubmitError::Closed) => panic!("service closed under a live updater"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnap_core::CasPartialSnapshot;
    use psnap_lincheck::{check_history, check_monotone_history};

    #[test]
    fn service_histories_of_small_scenarios_are_linearizable() {
        for seed in 0..8 {
            let scenario = Scenario::random_small(seed);
            let snapshot = Arc::new(CasPartialSnapshot::new(scenario.components, 2, 0u64));
            let history =
                run_scenario_via_service(snapshot, &scenario, &ServiceDriverConfig::default());
            assert_eq!(history.len(), scenario.total_ops());
            history.validate_well_formed().unwrap();
            assert!(
                check_history(&history).is_linearizable(),
                "seed {seed}: coalesced service history not linearizable"
            );
        }
    }

    #[test]
    fn scan_slo_passthrough_fires_latency_dumps_under_chaos() {
        // A zero SLO makes every served scan a violation: the driver's
        // passthrough must reach the service, and each dump must carry the
        // offending request's span tree ending in a ScanRequest root.
        psnap_obs::set_trace_enabled(true);
        psnap_obs::set_span_enabled(true);
        psnap_obs::flight::reset();
        psnap_obs::flight::set_armed(true);
        let scenario = Scenario::random_small(0xF11);
        let snapshot = Arc::new(CasPartialSnapshot::new(scenario.components, 2, 0u64));
        let history = run_scenario_via_service(
            snapshot,
            &scenario,
            &ServiceDriverConfig {
                scan_slo: Some(std::time::Duration::ZERO),
                ..ServiceDriverConfig::default()
            },
        );
        psnap_obs::flight::set_armed(false);
        psnap_obs::set_span_enabled(false);
        psnap_obs::set_trace_enabled(false);
        assert!(check_history(&history).is_linearizable());
        let dumps = psnap_obs::flight::take_dumps();
        // random_small always has at least one scanner, so the zero SLO
        // must have tripped.
        assert!(!dumps.is_empty(), "zero SLO produced no latency dumps");
        assert!(dumps
            .iter()
            .all(|d| d.reason == psnap_obs::AnomalyKind::LatencySlo));
        assert!(dumps.iter().any(|d| {
            d.trees
                .iter()
                .any(|t| t.spans[0].kind == psnap_obs::SpanKind::ScanRequest)
        }));
    }

    #[test]
    fn service_stress_history_passes_monotone_checks() {
        let scenario = Scenario::stress(12, 3, 2, 60, 40, 4, 0xD1);
        let snapshot = Arc::new(CasPartialSnapshot::new(12, 2, 0u64));
        let history =
            run_scenario_via_service(snapshot, &scenario, &ServiceDriverConfig::default());
        assert_eq!(history.len(), scenario.total_ops());
        history.validate_well_formed().unwrap();
        assert_eq!(check_monotone_history(&history), Ok(()));
    }
}
