//! Concurrency scenario runner for the partial snapshot reproduction.
//!
//! This crate turns the abstract adversary of the paper's model into something
//! executable: declarative [`scenario::Scenario`]s describe who updates and
//! who scans what, the [`runner`] executes them on real threads against any
//! [`psnap_core::PartialSnapshot`] implementation (optionally with seeded
//! schedule perturbation from `psnap-shmem`'s chaos layer) and records a
//! [`psnap_lincheck::History`], and the [`chaos_runner`] sweeps many seeds and
//! checks every history with the appropriate checker (exhaustive WGL for small
//! schedules, scalable monotone checks for stress schedules). The
//! [`service_driver`] runs the same scenarios through the `psnap-serve`
//! frontend instead, recording client-observed histories so the coalesced
//! results of the service layer face the same checkers, and the
//! [`wire_driver`] pushes that traffic through a socket-backed
//! `psnap-wire` server so the transport layer faces them too.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos_runner;
pub mod runner;
pub mod scenario;
pub mod service_driver;
pub mod wire_driver;

pub use chaos_runner::{
    fuzz_batched_stress_schedules, fuzz_small_schedules, fuzz_stress_schedules, FuzzOutcome,
};
pub use runner::run_scenario;
pub use scenario::{Role, Scenario, ScenarioChaos};
pub use service_driver::{run_scenario_via_service, ServiceDriverConfig};
pub use wire_driver::{run_scenario_via_wire, WireTransport};
