//! Executes scenarios against snapshot implementations and records histories.

use std::sync::Arc;

use psnap_core::PartialSnapshot;
use psnap_lincheck::{History, LogicalClock, OpRecord, OpResult, Operation};
use psnap_shmem::{chaos, process, ProcessId};

use crate::scenario::{Role, Scenario};

/// Runs `scenario` against `snapshot`, one OS thread per process, and returns
/// the recorded history of all completed operations.
///
/// The update values written by updater roles follow the monotone
/// single-writer discipline: process `p`'s `k`-th update writes value
/// `k * processes + p + 1`, which is strictly increasing per component (each
/// component is owned by one process) and never equal to the initial value.
pub fn run_scenario<S>(snapshot: &Arc<S>, scenario: &Scenario) -> History
where
    S: PartialSnapshot<u64> + ?Sized + 'static,
{
    scenario
        .validate()
        .expect("scenario must be valid before it is run");
    assert!(
        snapshot.components() >= scenario.components,
        "snapshot object too small for the scenario"
    );
    assert!(
        snapshot.max_processes() >= scenario.processes(),
        "snapshot object configured for fewer processes than the scenario needs"
    );

    let clock = LogicalClock::new();
    let barrier = Arc::new(std::sync::Barrier::new(scenario.processes()));
    let n = scenario.processes();

    let handles: Vec<_> = scenario
        .roles
        .iter()
        .cloned()
        .enumerate()
        .map(|(pid, role)| {
            let snapshot = Arc::clone(snapshot);
            let clock = clock.clone();
            let barrier = Arc::clone(&barrier);
            let chaos_cfg = scenario.chaos.clone();
            std::thread::spawn(move || {
                let _id = process::register(ProcessId(pid));
                let _chaos_guard =
                    chaos_cfg.map(|c| chaos::enable(c.seed.wrapping_add(pid as u64), c.config));
                barrier.wait();
                run_role(&*snapshot, pid, n, &role, &clock)
            })
        })
        .collect();

    let logs: Vec<Vec<OpRecord>> = handles
        .into_iter()
        .map(|h| h.join().expect("scenario worker panicked"))
        .collect();
    History::from_logs(scenario.components, scenario.initial, logs)
}

fn run_role<S: PartialSnapshot<u64> + ?Sized>(
    snapshot: &S,
    pid: usize,
    processes: usize,
    role: &Role,
    clock: &LogicalClock,
) -> Vec<OpRecord> {
    let mut log = Vec::new();
    match role {
        Role::Updater { components, ops } => {
            for k in 0..*ops {
                let component = components[k % components.len()];
                let value = (k as u64 + 1) * processes as u64 + pid as u64 + 1;
                let invoked_at = clock.now();
                snapshot.update(ProcessId(pid), component, value);
                let returned_at = clock.now();
                log.push(OpRecord {
                    pid: ProcessId(pid),
                    op: Operation::Update { component, value },
                    result: OpResult::Ack,
                    invoked_at,
                    returned_at,
                });
            }
        }
        Role::BatchUpdater {
            components,
            ops,
            batch,
        } => {
            let width = (*batch).clamp(1, components.len());
            for k in 0..*ops {
                // Rotate a window of `width` owned components; all writes of
                // round k carry the round's value, which is strictly
                // increasing per component under single ownership.
                let value = (k as u64 + 1) * processes as u64 + pid as u64 + 1;
                let writes: Vec<(usize, u64)> = (0..width)
                    .map(|i| (components[(k * width + i) % components.len()], value))
                    .collect();
                let invoked_at = clock.now();
                snapshot.update_many(ProcessId(pid), &writes);
                let returned_at = clock.now();
                log.push(OpRecord {
                    pid: ProcessId(pid),
                    op: Operation::BatchUpdate { writes },
                    result: OpResult::Ack,
                    invoked_at,
                    returned_at,
                });
            }
        }
        Role::Scanner { scans } => {
            for components in scans {
                let invoked_at = clock.now();
                let values = snapshot.scan(ProcessId(pid), components);
                let returned_at = clock.now();
                log.push(OpRecord {
                    pid: ProcessId(pid),
                    op: Operation::Scan {
                        components: components.clone(),
                    },
                    result: OpResult::Values(values),
                    invoked_at,
                    returned_at,
                });
            }
        }
        Role::Resharder { ops } => {
            // Environment reconfiguration: migrate the layout under the
            // other roles' feet and record nothing — any tear it causes is
            // charged to the operations that observed it. Yielding between
            // ops lets real traffic interleave with each migration.
            for &op in ops {
                std::thread::yield_now();
                let _ = snapshot.reshard(op);
                std::thread::yield_now();
            }
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnap_core::{CasPartialSnapshot, RegisterPartialSnapshot};
    use psnap_lincheck::{check_history, check_monotone_history};

    #[test]
    fn stress_scenario_produces_well_formed_history() {
        let scenario = Scenario::stress(8, 2, 2, 50, 30, 3, 7);
        let snapshot = Arc::new(CasPartialSnapshot::new(8, scenario.processes(), 0u64));
        let history = run_scenario(&snapshot, &scenario);
        assert_eq!(history.len(), scenario.total_ops());
        history.validate_well_formed().unwrap();
        assert_eq!(check_monotone_history(&history), Ok(()));
    }

    #[test]
    fn small_scenarios_are_wgl_checkable() {
        for seed in 0..5 {
            let scenario = Scenario::random_small(seed);
            let snapshot = Arc::new(RegisterPartialSnapshot::new(
                scenario.components,
                scenario.processes(),
                0u64,
            ));
            let history = run_scenario(&snapshot, &scenario);
            assert!(
                check_history(&history).is_linearizable(),
                "seed {seed} produced a non-linearizable history"
            );
        }
    }

    #[test]
    fn batched_roles_record_batch_operations() {
        use psnap_lincheck::Operation;
        let scenario = Scenario::stress_batched(8, 2, 1, 30, 10, 3, 2, 3);
        let snapshot = Arc::new(CasPartialSnapshot::new(8, scenario.processes(), 0u64));
        let history = run_scenario(&snapshot, &scenario);
        assert_eq!(history.len(), scenario.total_ops());
        let batches = history
            .ops
            .iter()
            .filter(|o| matches!(o.op, Operation::BatchUpdate { .. }))
            .count();
        assert_eq!(batches, 60, "every updater op must be a batch");
        history.validate_well_formed().unwrap();
        assert_eq!(check_monotone_history(&history), Ok(()));
    }

    #[test]
    fn resharder_roles_record_nothing_and_preserve_the_checkers() {
        use psnap_core::ReshardOp;
        use psnap_shard::{MvShardedSnapshot, ShardConfig};
        let mut scenario = Scenario::stress(16, 2, 2, 60, 30, 5, 11);
        scenario.roles.push(Role::Resharder {
            ops: vec![
                ReshardOp::Split { shard: 0 },
                ReshardOp::Split { shard: 1 },
                ReshardOp::Merge { from: 2, into: 0 },
            ],
        });
        let snapshot = Arc::new(MvShardedSnapshot::new(
            16,
            scenario.processes(),
            0u64,
            ShardConfig::multiversioned(2),
        ));
        let history = run_scenario(&snapshot, &scenario);
        assert_eq!(
            history.len(),
            scenario.total_ops(),
            "reshard ops must not appear in the history"
        );
        history.validate_well_formed().unwrap();
        assert_eq!(check_monotone_history(&history), Ok(()));
        assert!(
            snapshot.reshards() >= 1,
            "at least the first split must be accepted"
        );
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn mismatched_object_size_is_rejected() {
        let scenario = Scenario::stress(8, 2, 1, 5, 5, 2, 0);
        let snapshot = Arc::new(CasPartialSnapshot::new(4, 8, 0u64));
        let _ = run_scenario(&snapshot, &scenario);
    }

    #[test]
    #[should_panic(expected = "fewer processes")]
    fn mismatched_process_count_is_rejected() {
        let scenario = Scenario::stress(8, 4, 4, 5, 5, 2, 0);
        let snapshot = Arc::new(CasPartialSnapshot::new(8, 2, 0u64));
        let _ = run_scenario(&snapshot, &scenario);
    }
}
