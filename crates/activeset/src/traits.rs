//! The active-set specification as a trait.

use psnap_shmem::ProcessId;

/// Opaque token returned by [`ActiveSet::join`] and consumed by the matching
/// [`ActiveSet::leave`].
///
/// In Figure 2 of the paper this is the local variable `l`: the slot index in
/// the unbounded array `I[1..]` handed out by the fetch&increment object. The
/// register-based implementation ignores it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinTicket {
    pub(crate) slot: u64,
}

impl JoinTicket {
    /// The slot index underlying this ticket (0 for implementations that do
    /// not use slots). Exposed for diagnostics and experiments only.
    pub fn slot(&self) -> u64 {
        self.slot
    }
}

/// A wait-free solution to the active set problem.
///
/// Callers must obey the protocol of the problem statement: for each process
/// id, calls to `join` and `leave` strictly alternate starting with `join`,
/// and the ticket passed to `leave` is the one returned by the immediately
/// preceding `join` of the same process.
pub trait ActiveSet: Send + Sync {
    /// Adds the calling process to the set. Returns a ticket that must be
    /// passed to the matching [`leave`](ActiveSet::leave).
    fn join(&self, pid: ProcessId) -> JoinTicket;

    /// Removes the calling process from the set.
    fn leave(&self, pid: ProcessId, ticket: JoinTicket);

    /// Returns the ids of the current members.
    ///
    /// The result contains every process that was active when the call
    /// started, no process that was inactive for the whole call, and possibly
    /// some processes that were joining or leaving concurrently. The returned
    /// vector is sorted and duplicate-free.
    fn get_set(&self) -> Vec<ProcessId>;

    /// A short human-readable name used in experiment tables.
    fn name(&self) -> &'static str;
}

impl<A: ActiveSet + ?Sized> ActiveSet for std::sync::Arc<A> {
    fn join(&self, pid: ProcessId) -> JoinTicket {
        (**self).join(pid)
    }
    fn leave(&self, pid: ProcessId, ticket: JoinTicket) {
        (**self).leave(pid, ticket)
    }
    fn get_set(&self) -> Vec<ProcessId> {
        (**self).get_set()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_exposes_slot() {
        let t = JoinTicket { slot: 17 };
        assert_eq!(t.slot(), 17);
        assert_eq!(t, JoinTicket { slot: 17 });
    }
}
