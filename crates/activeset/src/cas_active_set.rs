//! The paper's new active set algorithm (Figure 2).
//!
//! ```text
//! join                          leave                getSet
//!   l ← fetch&increment(H)        I[l] ← 0             oldC ← C;  h ← H;  newC ← oldC;  result ← {}
//!   I[l] ← id                                          for j ← 1..h
//! end join                                                 if j not in an interval of oldC
//!                                                              entry ← I[j]
//!                                                              if entry = 0 then add j to newC
//!                                                              else result ← result ∪ {entry}
//!                                                      compare&swap(oldC, newC) on C
//!                                                      return result
//! ```
//!
//! * `H` is a fetch&increment object holding the highest index of `I` that has
//!   been handed out.
//! * `I[1..]` is an unbounded array of registers, each holding the id of one
//!   active process (or 0 if the slot is vacant or vacated).
//! * `C` is a compare&swap object holding a sorted, coalesced list of
//!   intervals of indices known to be permanently vacated — slots that future
//!   `getSet`s may skip.
//!
//! The correctness invariant (quoted from the paper) is: *an index appears in
//! an interval stored in `C` only after the corresponding entry of `I` is set
//! to 0, and that entry never changes thereafter*. A slot index is handed out
//! by `H` to exactly one `join`, the joiner is the only process that ever
//! writes its id there, and after the matching `leave` the slot is dead
//! forever (the next `join` of the same process gets a fresh slot).
//!
//! # Deviation from the paper's pseudocode (documented erratum)
//!
//! As written in Figure 2, `leave` writes the same value 0 that a slot holds
//! before its joiner has written its id. A `getSet` that runs between a
//! joiner's `fetch&increment(H)` and its write of `I[l]` therefore reads 0 in
//! slot `l` and may add `l` to `C` — after which the invariant is violated
//! (the entry changes after appearing in `C`) and the now-active joiner is
//! invisible to every later `getSet`, breaking the active-set specification
//! (and, downstream, the partial snapshot's helping argument). The schedule
//! fuzzer in this repository finds that interleaving readily. The fix used
//! here keeps the algorithm's structure and costs: `leave` writes a dedicated
//! *tombstone* value distinct from the initial 0, and `getSet` only adds
//! tombstoned slots to `C`; a slot still holding the initial 0 (a join in
//! flight) is simply not reported and not skipped. See DESIGN.md.
//!
//! Complexity (Theorem 2): `join` and `leave` take O(1) steps; in any
//! execution the amortized cost is O(1) per `join`, O(Ċ) per `leave` and O(C)
//! per `getSet`, where contention counts active processes as well as processes
//! with pending operations.

use psnap_shmem::{FetchIncrement, ProcessId, SegmentedArray, VersionedCell, WordRegister};

use crate::interval_set::IntervalSet;
use crate::traits::{ActiveSet, JoinTicket};

/// The value a `leave` writes into its slot: "vacated forever".
/// Distinct from the initial 0 ("not yet written by its joiner").
const TOMBSTONE: u64 = u64::MAX;

/// The Figure 2 active set: O(1) `join`/`leave`, amortized-efficient `getSet`.
pub struct CasActiveSet {
    /// `I[1..]` — slot `j` holds `pid + 1` while the joiner with ticket `j` is
    /// active, [`TOMBSTONE`] after the matching `leave`, and 0 before the
    /// joiner's write. Slot 0 is never used (the paper indexes from 1).
    slots: SegmentedArray<WordRegister>,
    /// `H` — highest slot index handed out so far.
    highest: FetchIncrement,
    /// `C` — intervals of slot indices known to be permanently vacated.
    skip: VersionedCell<IntervalSet>,
}

impl CasActiveSet {
    /// Creates an empty active set.
    pub fn new() -> Self {
        CasActiveSet {
            slots: SegmentedArray::new(),
            highest: FetchIncrement::new(0),
            skip: VersionedCell::new(IntervalSet::new()),
        }
    }

    /// Number of maximal intervals currently stored in `C` (diagnostics for
    /// the space discussion in Section 4.1).
    pub fn skip_interval_count(&self) -> usize {
        self.skip.load().value().interval_count()
    }

    /// Highest slot index handed out so far (diagnostics; equals the total
    /// number of `join` operations started).
    pub fn slots_allocated(&self) -> u64 {
        self.highest.read()
    }
}

impl Default for CasActiveSet {
    fn default() -> Self {
        Self::new()
    }
}

impl ActiveSet for CasActiveSet {
    fn join(&self, pid: ProcessId) -> JoinTicket {
        // l ← fetch&increment(H); I[l] ← id
        let slot = self.highest.fetch_increment();
        self.slots.get(slot as usize).write(pid.index() as u64 + 1);
        JoinTicket { slot }
    }

    fn leave(&self, _pid: ProcessId, ticket: JoinTicket) {
        // I[l] ← tombstone ("0" in the paper; see the erratum note above).
        self.slots.get(ticket.slot as usize).write(TOMBSTONE);
    }

    fn get_set(&self) -> Vec<ProcessId> {
        // oldC ← C; h ← H; newC ← oldC; result ← {}
        let old_skip = self.skip.load();
        let h = self.highest.read();
        let mut new_skip: IntervalSet = old_skip.value().clone();
        let mut result: Vec<ProcessId> = Vec::new();

        // for j ← 1..h, skipping intervals of oldC
        for j in old_skip.value().uncovered_up_to(h) {
            let entry = self.slots.get(j as usize).read();
            if entry == TOMBSTONE {
                // Vacated by a leave: safe to skip forever.
                new_skip.insert(j);
            } else if entry == 0 {
                // Slot handed out but not yet written: the owning join is in
                // flight, so the process may legally be omitted from the
                // result, but the slot must NOT be skipped in the future.
            } else {
                result.push(ProcessId((entry - 1) as usize));
            }
        }

        // compare&swap(oldC, newC) on C — failure is fine: some other getSet
        // installed its own (at least as useful) skip list in the meantime.
        let _ = self.skip.compare_and_swap(&old_skip, new_skip);

        // A process that left and re-joined during our collect can appear
        // under two slots; the abstraction returns a set of ids.
        result.sort_unstable();
        result.dedup();
        result
    }

    fn name(&self) -> &'static str {
        "cas-active-set (Figure 2)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnap_shmem::StepScope;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn empty_set_returns_nothing() {
        let set = CasActiveSet::new();
        assert!(set.get_set().is_empty());
        assert_eq!(set.slots_allocated(), 0);
    }

    #[test]
    fn sequential_join_getset_leave() {
        let set = CasActiveSet::new();
        let t1 = set.join(ProcessId(1));
        let t2 = set.join(ProcessId(2));
        assert_eq!(set.get_set(), vec![ProcessId(1), ProcessId(2)]);
        set.leave(ProcessId(1), t1);
        assert_eq!(set.get_set(), vec![ProcessId(2)]);
        set.leave(ProcessId(2), t2);
        assert!(set.get_set().is_empty());
    }

    #[test]
    fn rejoin_gets_fresh_slot() {
        let set = CasActiveSet::new();
        let t1 = set.join(ProcessId(5));
        set.leave(ProcessId(5), t1);
        let t2 = set.join(ProcessId(5));
        assert_ne!(t1.slot(), t2.slot());
        assert_eq!(set.get_set(), vec![ProcessId(5)]);
        set.leave(ProcessId(5), t2);
        assert!(set.get_set().is_empty());
    }

    #[test]
    fn join_and_leave_take_constant_steps() {
        // Theorem 2: join and leave take O(1) steps — concretely, join is one
        // fetch&increment plus one write, leave is one write, regardless of
        // how many operations happened before.
        let set = CasActiveSet::new();
        for round in 0..100 {
            let scope = StepScope::start();
            let ticket = set.join(ProcessId(round));
            let join_steps = scope.finish();
            assert_eq!(join_steps.total(), 2, "join must take exactly 2 steps");
            assert_eq!(join_steps.fetch_incs, 1);
            assert_eq!(join_steps.writes, 1);

            let scope = StepScope::start();
            set.leave(ProcessId(round), ticket);
            let leave_steps = scope.finish();
            assert_eq!(leave_steps.total(), 1, "leave must take exactly 1 step");
            assert_eq!(leave_steps.writes, 1);
        }
    }

    #[test]
    fn getset_skips_vacated_slots_after_a_previous_getset() {
        // k joins and leaves with no getSet force the next getSet to read all
        // k slots, but the getSet after that skips them via the interval list.
        let set = CasActiveSet::new();
        const K: usize = 500;
        for i in 0..K {
            let t = set.join(ProcessId(i));
            set.leave(ProcessId(i), t);
        }
        let scope = StepScope::start();
        assert!(set.get_set().is_empty());
        let first = scope.finish();
        assert!(
            first.reads >= K as u64,
            "first getSet must read through all {K} vacated slots, read {}",
            first.reads
        );

        let scope = StepScope::start();
        assert!(set.get_set().is_empty());
        let second = scope.finish();
        assert!(
            second.total() <= 8,
            "second getSet must skip the coalesced interval, took {}",
            second.total()
        );
        assert_eq!(
            set.skip_interval_count(),
            1,
            "all slots coalesce into one interval"
        );
    }

    #[test]
    fn active_member_is_never_skipped() {
        let set = CasActiveSet::new();
        let keep = set.join(ProcessId(9));
        for i in 0..50 {
            let t = set.join(ProcessId(i));
            set.leave(ProcessId(i), t);
        }
        // Warm up the skip list.
        assert_eq!(set.get_set(), vec![ProcessId(9)]);
        assert_eq!(set.get_set(), vec![ProcessId(9)]);
        set.leave(ProcessId(9), keep);
        assert!(set.get_set().is_empty());
    }

    #[test]
    fn concurrent_members_are_reported() {
        // Threads join, signal that they are active, and wait until the main
        // thread has verified the membership before leaving.
        const N: usize = 8;
        let set = Arc::new(CasActiveSet::new());
        let ready = Arc::new(std::sync::Barrier::new(N + 1));
        let release = Arc::new(std::sync::Barrier::new(N + 1));
        let mut handles = Vec::new();
        for pid in 0..N {
            let set = Arc::clone(&set);
            let ready = Arc::clone(&ready);
            let release = Arc::clone(&release);
            handles.push(thread::spawn(move || {
                let ticket = set.join(ProcessId(pid));
                ready.wait();
                release.wait();
                set.leave(ProcessId(pid), ticket);
            }));
        }
        ready.wait();
        let members = set.get_set();
        assert_eq!(members, (0..N).map(ProcessId).collect::<Vec<_>>());
        release.wait();
        for h in handles {
            h.join().unwrap();
        }
        assert!(set.get_set().is_empty());
    }

    #[test]
    fn stress_never_reports_inactive_and_never_misses_active() {
        // Ground truth per process: a logical-time interval during which it is
        // guaranteed active. A getSet must contain every process whose join
        // completed before it started and whose leave had not started when it
        // finished; it must not contain a process that was inactive throughout.
        use std::sync::atomic::AtomicU64;
        const WORKERS: usize = 6;
        let set = Arc::new(CasActiveSet::new());
        let clock = Arc::new(AtomicU64::new(0));
        // state[p] = (joined_at, left_at): joined_at > left_at means currently active.
        let state: Arc<Vec<(AtomicU64, AtomicU64)>> = Arc::new(
            (0..WORKERS)
                .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
                .collect(),
        );
        let stop = Arc::new(AtomicBool::new(false));

        let mut handles = Vec::new();
        for pid in 0..WORKERS {
            let set = Arc::clone(&set);
            let clock = Arc::clone(&clock);
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            handles.push(thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let ticket = set.join(ProcessId(pid));
                    // Record "active since" only after join completes.
                    state[pid]
                        .0
                        .store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
                    for _ in 0..20 {
                        std::hint::spin_loop();
                    }
                    // Record "leaving at" before starting the leave.
                    state[pid]
                        .1
                        .store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
                    set.leave(ProcessId(pid), ticket);
                }
            }));
        }

        for _ in 0..2000 {
            // Capture a pre-getSet view of each worker's (joined_at, left_at).
            let start_ts = clock.fetch_add(1, Ordering::SeqCst) + 1;
            let before: Vec<(u64, u64)> = (0..WORKERS)
                .map(|p| {
                    (
                        state[p].0.load(Ordering::SeqCst),
                        state[p].1.load(Ordering::SeqCst),
                    )
                })
                .collect();
            let members = set.get_set();
            let after: Vec<(u64, u64)> = (0..WORKERS)
                .map(|p| {
                    (
                        state[p].0.load(Ordering::SeqCst),
                        state[p].1.load(Ordering::SeqCst),
                    )
                })
                .collect();
            for p in 0..WORKERS {
                // If the worker's state did not change at all across the
                // getSet and it had completed a join (and not begun a leave)
                // strictly before the getSet started, then it was active for
                // the whole getSet interval and the spec requires it to be
                // reported.
                let (joined, left) = before[p];
                if before[p] == after[p] && joined > left && joined < start_ts {
                    assert!(
                        members.contains(&ProcessId(p)),
                        "active process p{p} missing from getSet"
                    );
                }
            }
            for m in &members {
                // A reported process must have joined at least once by now.
                assert!(
                    state[m.index()].0.load(Ordering::SeqCst) > 0,
                    "getSet reported a process that never joined"
                );
            }
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn joins_racing_with_getset_are_never_permanently_lost() {
        // Regression test for the documented erratum: a getSet running between
        // a joiner's fetch&increment and its slot write must not cause that
        // process to be skipped forever. Aggressive chaos on the joiners makes
        // the in-flight-join window wide; a concurrent thread spams getSet to
        // hit it; afterwards, with everything quiescent, every process that is
        // still active must be reported.
        use psnap_shmem::chaos::{self, ChaosConfig};
        const JOINERS: usize = 4;
        const ROUNDS: usize = 200;
        let set = Arc::new(CasActiveSet::new());
        let stop = Arc::new(AtomicBool::new(false));
        let spammer = {
            let set = Arc::clone(&set);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = set.get_set();
                }
            })
        };
        let joiners: Vec<_> = (0..JOINERS)
            .map(|pid| {
                let set = Arc::clone(&set);
                thread::spawn(move || {
                    let _chaos = chaos::enable(pid as u64 * 17 + 1, ChaosConfig::aggressive());
                    let mut last_ticket = None;
                    for _ in 0..ROUNDS {
                        if let Some(t) = last_ticket.take() {
                            set.leave(ProcessId(pid), t);
                        }
                        last_ticket = Some(set.join(ProcessId(pid)));
                    }
                    // Stay joined at the end.
                    last_ticket.expect("ended active")
                })
            })
            .collect();
        let tickets: Vec<_> = joiners.into_iter().map(|h| h.join().unwrap()).collect();
        stop.store(true, Ordering::Relaxed);
        spammer.join().unwrap();
        // Quiescent check: every process is still active and must be visible.
        let members = set.get_set();
        assert_eq!(
            members,
            (0..JOINERS).map(ProcessId).collect::<Vec<_>>(),
            "an active process was permanently hidden by the skip list"
        );
        for (pid, t) in tickets.into_iter().enumerate() {
            set.leave(ProcessId(pid), t);
        }
        assert!(set.get_set().is_empty());
    }

    #[test]
    fn skip_list_bounds_amortized_getset_cost() {
        // After a burst of joins/leaves and one expensive getSet, subsequent
        // getSets under low churn stay cheap: amortized O(C) per Theorem 2.
        let set = CasActiveSet::new();
        for i in 0..1000 {
            let t = set.join(ProcessId(i % 16));
            set.leave(ProcessId(i % 16), t);
        }
        let _ = set.get_set();
        let mut total = 0u64;
        const QUERIES: u64 = 100;
        for i in 0..QUERIES {
            let t = set.join(ProcessId(3));
            let scope = StepScope::start();
            let members = set.get_set();
            total += scope.finish().total();
            assert_eq!(members, vec![ProcessId(3)]);
            set.leave(ProcessId(3), t);
            let _ = i;
        }
        let avg = total / QUERIES;
        assert!(
            avg <= 32,
            "amortized getSet cost should be small and contention-bounded, got {avg}"
        );
    }
}
